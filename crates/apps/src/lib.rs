//! # lucid-apps
//!
//! The ten data-plane applications of the paper's Figure 9, written in
//! Lucid (sources in `programs/*.lucid`), plus per-app harnesses that run
//! them in the interpreter and compile them with the backend. The
//! [`all`] registry carries the metadata the evaluation binaries print
//! (Figures 9, 15) and the `sfw` module hosts the Figure 17 installation-
//! time benchmark.

#![forbid(unsafe_code)]

pub mod rerouter;
pub mod sfw;

use lucid_check::CheckedProgram;

/// Figure 15's recirculation-use classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecircUse {
    /// Timed loops walking data structures: `O(entries / scan interval)`.
    Maintenance,
    /// New flows trigger recirculation: `E[O(flow rate)]`.
    FlowSetup,
    /// State updates recirculate through multiple switches:
    /// `O(update rate)`.
    StateSync,
}

impl RecircUse {
    pub fn label(self) -> &'static str {
        match self {
            RecircUse::Maintenance => "Data struct. maintenance",
            RecircUse::FlowSetup => "Flow setup",
            RecircUse::StateSync => "State synchronization",
        }
    }

    pub fn rate(self) -> &'static str {
        match self {
            RecircUse::Maintenance => "O(num. entries / scan interval)",
            RecircUse::FlowSetup => "E[O(flow rate)]",
            RecircUse::StateSync => "O(update rate)",
        }
    }
}

/// Static description of one Figure 9 application.
#[derive(Debug, Clone)]
pub struct AppInfo {
    /// Short key used by the CLI and bench binaries.
    pub key: &'static str,
    /// Figure 9 display name.
    pub name: &'static str,
    pub description: &'static str,
    /// The bolded "role of control events" from Figure 9.
    pub control_role: &'static str,
    /// Figure 15 classification.
    pub recirc_uses: &'static [RecircUse],
    /// Lucid source text.
    pub source: &'static str,
}

impl AppInfo {
    /// Non-blank, non-comment lines of Lucid source (the Figure 9 metric).
    pub fn lucid_loc(&self) -> usize {
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }

    /// Parse and check the program, panicking with rendered diagnostics on
    /// failure (the sources in this crate must always check).
    pub fn checked(&self) -> CheckedProgram {
        match lucid_check::parse_and_check(self.source) {
            Ok(p) => p,
            Err(ds) => {
                let sm = lucid_frontend::SourceMap::new(self.key, self.source);
                panic!("{} does not check:\n{}", self.name, ds.render(&sm));
            }
        }
    }
}

use RecircUse::*;

/// The Figure 9 suite, in the paper's row order.
pub fn all() -> Vec<AppInfo> {
    vec![
        AppInfo {
            key: "sfw",
            name: "Stateful Firewall (SFW)",
            description: "Blocks connections not initiated by trusted hosts.",
            control_role: "Control events update a Cuckoo hash table.",
            recirc_uses: &[Maintenance, FlowSetup],
            source: include_str!("../programs/stateful_firewall.lucid"),
        },
        AppInfo {
            key: "rr",
            name: "Fast Rerouter (RR)",
            description: "Forwards packets, identifies failures, and routes.",
            control_role: "Control events perform fault detection and routing.",
            recirc_uses: &[Maintenance, FlowSetup],
            source: include_str!("../programs/fast_rerouter.lucid"),
        },
        AppInfo {
            key: "dns",
            name: "Closed-loop DNS Defense (DNS)",
            description: "Detects/blocks DNS reflection attacks with sketches & Bloom filters.",
            control_role: "Control events age data structures.",
            recirc_uses: &[Maintenance],
            source: include_str!("../programs/dns_defense.lucid"),
        },
        AppInfo {
            key: "starflow",
            name: "*Flow",
            description: "Batches packet tuples by flow to accelerate analytics.",
            control_role: "Control events allocate memory.",
            recirc_uses: &[FlowSetup],
            source: include_str!("../programs/starflow.lucid"),
        },
        AppInfo {
            key: "sro",
            name: "Consistent Shared State (SRO)",
            description: "Strongly consistent distributed arrays.",
            control_role: "Control events synchronize writes.",
            recirc_uses: &[StateSync],
            source: include_str!("../programs/shared_state.lucid"),
        },
        AppInfo {
            key: "dfw",
            name: "Distributed Prob. Firewall (DFW)",
            description: "Distributed Bloom filter firewall.",
            control_role: "Control events sync. updates.",
            recirc_uses: &[StateSync],
            source: include_str!("../programs/dist_firewall.lucid"),
        },
        AppInfo {
            key: "dfw_aging",
            name: "DFW + Aging (DFW(a))",
            description: "Distributed Bloom filter firewall with rotating generations.",
            control_role: "Adds control events for aging.",
            recirc_uses: &[Maintenance, StateSync],
            source: include_str!("../programs/dist_firewall_aging.lucid"),
        },
        AppInfo {
            key: "rip",
            name: "Single-dest. RIP",
            description: "Routing with the classic Route Information Protocol.",
            control_role: "Control events distribute routes.",
            recirc_uses: &[Maintenance],
            source: include_str!("../programs/rip_router.lucid"),
        },
        AppInfo {
            key: "nat",
            name: "Simple NAT",
            description: "Basic network address translation.",
            control_role: "Control events buffer packets and install entries.",
            recirc_uses: &[FlowSetup],
            source: include_str!("../programs/nat.lucid"),
        },
        AppInfo {
            key: "cm",
            name: "Historical Prob. Queries (CM)",
            description: "Measures flows with sketches for historical queries.",
            control_role: "Control events age and export state periodically.",
            recirc_uses: &[Maintenance],
            source: include_str!("../programs/historical_sketch.lucid"),
        },
    ]
}

/// Look up one app by key.
pub fn by_key(key: &str) -> Option<AppInfo> {
    all().into_iter().find(|a| a.key == key)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn ten_apps_like_figure9() {
        assert_eq!(all().len(), 10);
    }

    #[test]
    fn every_app_parses_and_checks() {
        for app in all() {
            let _ = app.checked();
        }
    }

    #[test]
    fn every_app_compiles_to_the_tofino_model() {
        for app in all() {
            let prog = app.checked();
            let compiled = lucid_backend::compile(&prog)
                .unwrap_or_else(|e| panic!("{} failed to compile:\n{e}", app.name));
            assert!(
                compiled.layout.total_stages <= 12,
                "{} needs {} stages",
                app.name,
                compiled.layout.total_stages
            );
        }
    }

    #[test]
    fn lucid_loc_in_figure9_ballpark() {
        // Figure 9 reports 41–215 Lucid lines per app.
        for app in all() {
            let loc = app.lucid_loc();
            assert!(
                (20..=260).contains(&loc),
                "{}: {loc} lines is far outside the paper's range",
                app.name
            );
        }
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<_> = all().iter().map(|a| a.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn figure15_classes_match_paper_rows() {
        let find = |k: &str| by_key(k).unwrap();
        assert!(find("sfw").recirc_uses.contains(&RecircUse::Maintenance));
        assert!(find("sfw").recirc_uses.contains(&RecircUse::FlowSetup));
        assert!(find("sro").recirc_uses.contains(&RecircUse::StateSync));
        assert!(find("nat").recirc_uses.contains(&RecircUse::FlowSetup));
        assert!(find("cm").recirc_uses.contains(&RecircUse::Maintenance));
    }
}
