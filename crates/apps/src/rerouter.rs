//! Fast-rerouter harness: measures **failover time** — §2.1's motivating
//! quantity. Detecting and routing around a failed link takes two rounds
//! of messages; with control in the data plane each message costs ~1 µs
//! of wire time, while the same logic on the switch's management CPU pays
//! ~100 µs of OS socket latency per message plus PCIe crossings (§2.1
//! cites ~400 µs of OS-added latency alone).

use lucid_check::CheckedProgram;
use lucid_interp::{Interp, NetConfig};

/// Checked RR program.
pub fn program() -> CheckedProgram {
    crate::by_key("rr").expect("registered").checked()
}

/// Result of one failover measurement.
#[derive(Debug, Clone, Copy)]
pub struct FailoverReport {
    /// When the next hop died, ns (simulation time).
    pub failed_at_ns: u64,
    /// When a packet first observed the link as stale, ns.
    pub detected_at_ns: u64,
    /// When the route pointed at the surviving neighbor again, ns.
    pub restored_at_ns: u64,
    /// Reroute latency: staleness detection → restored route, ns.
    pub reroute_ns: u64,
}

/// §2.1's model of the same control loop run on the switch CPU: two
/// message rounds, each crossing the OS socket path (~100 µs one-way,
/// per the StackMap numbers the paper cites).
pub const REMOTE_FAILOVER_ESTIMATE_NS: u64 = 4 * 100_000;

/// Run the §2 scenario: forward via neighbor 2, kill it, measure how long
/// the data plane takes to re-point the route at neighbor 3 once a packet
/// hits the stale link. `stale_us` is the link-staleness threshold baked
/// into the program (500 µs).
pub fn failover_benchmark() -> FailoverReport {
    let prog = program();
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    const DST: u64 = 5;
    sim.schedule(1, 0, "init_route", &[DST, 2, 2])
        .expect("init");
    sim.schedule(2, 0, "init_route", &[DST, 1, 9])
        .expect("init");
    sim.schedule(3, 0, "init_route", &[DST, 1, 9])
        .expect("init");
    for s in [1, 2, 3] {
        sim.schedule(s, 1_000, "ping_all", &[]).expect("pings");
    }
    sim.run(400_000, 1_000_000).expect("warm-up");

    let failed_at_ns = sim.now_ns;
    sim.fail_switch(2);

    // Probe with packets every 50 µs until one detects the stale link
    // (observed as a `no_route`/`check_route`) and then until delivery
    // resumes via switch 3.
    let mut detected_at_ns = 0;
    let mut restored_at_ns = 0;
    let mut t = failed_at_ns + 50_000;
    for _ in 0..200 {
        sim.clear_trace();
        sim.schedule(1, t, "pkt", &[DST]).expect("probe");
        sim.run(400_000, t + 45_000).expect("probe round");
        if detected_at_ns == 0 {
            if let Some(h) = sim.trace.iter().find(|h| &*h.event == "check_route") {
                detected_at_ns = h.time_ns;
            }
        }
        if let Some(h) = sim
            .trace
            .iter()
            .find(|h| &*h.event == "deliver" && h.switch == 1 && h.args[1] == 3)
        {
            restored_at_ns = h.time_ns;
            break;
        }
        t += 50_000;
    }
    assert!(
        detected_at_ns > 0 && restored_at_ns > 0,
        "failover did not complete"
    );
    FailoverReport {
        failed_at_ns,
        detected_at_ns,
        restored_at_ns,
        reroute_ns: restored_at_ns - detected_at_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_completes_and_is_fast() {
        let r = failover_benchmark();
        // Detection is bounded by the 500 µs staleness threshold plus the
        // probe cadence; the *reroute* itself (query + reply + next packet
        // round) is the §2.1 quantity and must be tens of microseconds.
        assert!(r.detected_at_ns > r.failed_at_ns);
        assert!(r.restored_at_ns > r.detected_at_ns);
        assert!(
            r.reroute_ns < 120_000,
            "reroute took {} ns — should be a few message rounds",
            r.reroute_ns
        );
    }

    #[test]
    fn data_plane_beats_the_os_path_estimate() {
        let r = failover_benchmark();
        assert!(
            r.reroute_ns < REMOTE_FAILOVER_ESTIMATE_NS,
            "data-plane reroute {} ns vs OS-path estimate {} ns",
            r.reroute_ns,
            REMOTE_FAILOVER_ESTIMATE_NS
        );
    }

    #[test]
    fn failover_is_deterministic() {
        let a = failover_benchmark();
        let b = failover_benchmark();
        assert_eq!(a.reroute_ns, b.reroute_ns);
        assert_eq!(a.restored_at_ns, b.restored_at_ns);
    }
}
