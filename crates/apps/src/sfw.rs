//! Stateful-firewall harness: drives `stateful_firewall.lucid` in the
//! interpreter and measures **flow installation time** — the Figure 17
//! metric (time from a flow's first outbound packet to the completion of
//! its installation in the Cuckoo table).
//!
//! Installation completes either inline (a free slot during the first
//! packet's own pipeline pass — "an effective flow installation time of
//! 0 ns") or after a chain of `install_1`/`install_2` recirculations,
//! each costing one ~600 ns loop.

use lucid_check::CheckedProgram;
use lucid_interp::{Interp, NetConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checked SFW program.
pub fn program() -> CheckedProgram {
    crate::by_key("sfw").expect("registered").checked()
}

/// Result of one [`install_benchmark`] run.
#[derive(Debug, Clone)]
pub struct InstallBench {
    /// Per-trial installation time in nanoseconds (0 = inline install).
    /// This is the Figure 17 metric: the flow's own entry is written on
    /// the *first* install pass; any further passes re-home the displaced
    /// victim while the flow is already live (covered by the stash).
    pub times_ns: Vec<f64>,
    /// Per-trial time until the whole displacement chain settled and the
    /// stash emptied (an upper bound on any transient state).
    pub settle_ns: Vec<f64>,
    /// Trials whose install chain gave up (`install_failed`).
    pub failures: usize,
    /// Fraction of trials that installed inline (0 recirculations).
    pub frac_inline: f64,
    /// Total recirculations consumed by install chains.
    pub chain_recircs: u64,
}

/// The Figure 17 workload: preload the 2×1024-slot table to `load_factor`,
/// then measure installation time for `trials` fresh flows, spaced far
/// enough apart that chains never overlap.
pub fn install_benchmark(trials: usize, load_factor: f64, seed: u64) -> InstallBench {
    let prog = program();
    let mut sim = Interp::new(&prog, NetConfig::single());
    let mut rng = StdRng::seed_from_u64(seed);

    // Preload: distinct flows up to the requested load factor of the
    // 2048-slot table. (The paper uses 0.3125 ⇒ 640 resident flows.)
    let preload = (2048.0 * load_factor) as usize;
    // Start the clock away from zero: timestamp 0 doubles as the "empty"
    // sentinel in the timeout scanner.
    let mut t = 1_000_000u64;
    for _ in 0..preload {
        let src: u32 = rng.gen_range(1..u32::MAX);
        let dst: u32 = rng.gen_range(1..u32::MAX);
        sim.schedule(1, t, "pkt_out", &[src as u64, dst as u64])
            .expect("scheduled");
        t += 5_000; // 5 µs apart: chains settle between arrivals
    }
    sim.run_to_quiescence().expect("preload runs");
    sim.clear_trace();

    // Measurement trials. After each trial the freshly installed flow is
    // removed again, so every trial observes the table at exactly the
    // requested load factor (the paper's 1000 trials are i.i.d. at load
    // 0.3125, not a table filling up to 0.8).
    let gap = 100_000u64; // 100 µs between flows: chains never overlap
    let mut start = t + gap;
    let mut starts = Vec::with_capacity(trials);
    for _ in 0..trials {
        let src: u32 = rng.gen_range(1..u32::MAX);
        let dst: u32 = rng.gen_range(1..u32::MAX);
        sim.schedule(1, start, "pkt_out", &[src as u64, dst as u64])
            .expect("scheduled");
        starts.push(start);
        sim.run_to_quiescence().expect("trial runs");
        remove_flow(&mut sim, src as u64, dst as u64);
        start += gap;
    }

    let mut times = Vec::with_capacity(trials);
    let mut settle = Vec::with_capacity(trials);
    let mut failures = 0usize;
    let mut chain_recircs = 0u64;
    for (i, &t0) in starts.iter().enumerate() {
        let t1 = starts.get(i + 1).copied().unwrap_or(u64::MAX);
        // All install activity between this arrival and the next belongs
        // to this trial's chain.
        let mut first_step: Option<u64> = None;
        let mut last_step: Option<u64> = None;
        let mut failed = false;
        for h in sim
            .trace
            .iter()
            .filter(|h| h.time_ns >= t0 && h.time_ns < t1)
        {
            match &*h.event {
                "install_1" | "install_2" => {
                    first_step.get_or_insert(h.time_ns);
                    last_step = Some(h.time_ns);
                    chain_recircs += 1;
                }
                "install_failed" => failed = true,
                _ => {}
            }
        }
        if failed {
            failures += 1;
        }
        times.push(first_step.map_or(0.0, |ts| (ts - t0) as f64));
        settle.push(last_step.map_or(0.0, |ts| (ts - t0) as f64));
    }
    let inline = times.iter().filter(|&&x| x == 0.0).count();
    InstallBench {
        frac_inline: inline as f64 / times.len().max(1) as f64,
        times_ns: times,
        settle_ns: settle,
        failures,
        chain_recircs,
    }
}

/// Remove `src→dst`'s entry (and anything parked in the stash) so the
/// table returns to its pre-trial load. Mirrors the hash path of the
/// Lucid program.
fn remove_flow(sim: &mut Interp, src: u64, dst: u64) {
    let key = lucid_interp::lucid_hash(32, 101, &[src, dst]);
    let h1 = lucid_interp::lucid_hash(10, 1, &[key]) as usize;
    let h2 = lucid_interp::lucid_hash(10, 2, &[key]) as usize;
    if sim.array(1, "key1")[h1] == key {
        sim.poke(1, "key1", h1, 0);
        sim.poke(1, "ts1", h1, 0);
    }
    if sim.array(1, "key2")[h2] == key {
        sim.poke(1, "key2", h2, 0);
        sim.poke(1, "ts2", h2, 0);
    }
    if sim.array(1, "stash")[0] == key {
        sim.poke(1, "stash", 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with(prog: &CheckedProgram) -> Interp {
        Interp::new(prog, NetConfig::single())
    }

    #[test]
    fn outbound_flow_admits_return_traffic() {
        let prog = program();
        let mut sim = sim_with(&prog);
        sim.schedule(1, 0, "pkt_out", &[10, 20]).unwrap();
        // Return packet: endpoints swapped.
        sim.schedule(1, 10_000, "pkt_in", &[20, 10]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.array(1, "allowed")[0], 1);
        assert_eq!(sim.array(1, "dropped")[0], 0);
        assert!(sim.trace.iter().any(|h| &*h.event == "fwd"));
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let prog = program();
        let mut sim = sim_with(&prog);
        sim.schedule(1, 0, "pkt_in", &[99, 10]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.array(1, "allowed")[0], 0);
        assert_eq!(sim.array(1, "dropped")[0], 1);
    }

    #[test]
    fn most_installs_are_inline_at_paper_load_factor() {
        // Figure 17: "For over 90% of flows, installation completed during
        // the processing of the flow's first packet".
        let b = install_benchmark(300, 0.3125, 42);
        assert!(
            b.frac_inline > 0.85,
            "only {:.1}% inline",
            b.frac_inline * 100.0
        );
        // §7.4: the load factor is kept low "to keep the probability of
        // flow installation failure low" — low, not zero.
        assert!(
            (b.failures as f64) < 0.05 * b.times_ns.len() as f64,
            "{} failures in {} trials",
            b.failures,
            b.times_ns.len()
        );
    }

    #[test]
    fn chains_cost_recirculation_loops() {
        let b = install_benchmark(300, 0.3125, 7);
        for &t in &b.times_ns {
            // Every non-inline install is a whole number of 600 ns loops,
            // bounded by the retry limit (MAX_RETRIES bounces through both
            // tables, plus the initial insert attempt).
            assert!(t == 0.0 || (t % 600.0 == 0.0 && t <= 9.0 * 600.0), "{t}");
        }
    }

    #[test]
    fn average_install_time_matches_figure17_scale() {
        // Paper: "Average flow installation time ... was only 49 ns".
        let b = install_benchmark(500, 0.3125, 3);
        let mean = b.times_ns.iter().sum::<f64>() / b.times_ns.len() as f64;
        assert!(
            mean < 300.0,
            "mean {mean} ns is far above the paper's scale"
        );
    }

    #[test]
    fn high_load_factor_causes_failures() {
        // Past ~0.9 load the bounded Cuckoo chain starts giving up, which
        // is why §7.4 keeps the load factor low.
        let b = install_benchmark(300, 0.95, 11);
        assert!(b.failures > 0, "expected some install failures at 95% load");
    }

    #[test]
    fn stash_admits_in_flight_flow() {
        let prog = program();
        let mut sim = sim_with(&prog);
        // Manually park a flow key in the stash and check its return
        // packet is admitted while "re-installation" is in flight.
        let key = lucid_interp::lucid_hash(32, 101, &[10, 20]);
        sim.poke(1, "stash", 0, key);
        sim.schedule(1, 0, "pkt_in", &[20, 10]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.array(1, "allowed")[0], 1);
    }

    #[test]
    fn timeout_scan_evicts_idle_flows() {
        let prog = program();
        let mut sim = sim_with(&prog);
        // Away from t=0: timestamp 0 means "empty slot" to the scanner.
        sim.schedule(1, 1_000_000, "pkt_out", &[10, 20]).unwrap();
        sim.run_to_quiescence().unwrap();
        let occupied: u64 = sim
            .array(1, "key1")
            .iter()
            .chain(sim.array(1, "key2"))
            .filter(|&&k| k != 0)
            .count() as u64;
        assert!(occupied >= 1);
        // Start the scan thread and run past the 1 s timeout plus a full
        // table sweep (1024 slots × 100 µs).
        sim.schedule(1, 1_001_000, "scan", &[0]).unwrap();
        sim.run(8_000_000, 1_400_000_000).unwrap();
        let remaining: u64 = sim
            .array(1, "key1")
            .iter()
            .chain(sim.array(1, "key2"))
            .filter(|&&k| k != 0)
            .count() as u64;
        assert_eq!(remaining, 0, "idle flow should have been scanned out");
        // And its return traffic is now dropped. (Bounded run: the scan
        // thread recurses forever by design, so quiescence never comes.)
        let drops_before = sim.array(1, "dropped")[0];
        sim.schedule(1, sim.now_ns + 1_000, "pkt_in", &[20, 10])
            .unwrap();
        sim.run(200_000, sim.now_ns + 10_000_000).unwrap();
        assert_eq!(sim.array(1, "dropped")[0], drops_before + 1);
    }

    #[test]
    fn refreshed_flows_survive_the_scan() {
        let prog = program();
        let mut sim = sim_with(&prog);
        sim.schedule(1, 1_000_000, "pkt_out", &[10, 20]).unwrap();
        // Keep the flow warm: a packet every 200 ms, well under the 1 s
        // timeout, while the scanner sweeps continuously.
        for i in 1..10u64 {
            sim.schedule(1, 1_000_000 + i * 200_000_000, "pkt_out", &[10, 20])
                .unwrap();
        }
        sim.schedule(1, 1_001_000, "scan", &[0]).unwrap();
        sim.run(40_000_000, 1_900_000_000).unwrap();
        let occupied: u64 = sim
            .array(1, "key1")
            .iter()
            .chain(sim.array(1, "key2"))
            .filter(|&&k| k != 0)
            .count() as u64;
        assert!(occupied >= 1, "active flow must not be evicted");
    }
}
