//! Scenario-driven simulation: JSON-specified traffic traces, topology,
//! fault schedules, and expected outcomes, mirroring the paper artifact's
//! "interpreter specification" files that let Lucid programs be tested
//! against event traces without the Tofino toolchain.
//!
//! A scenario file (`*.sim.json`) holds:
//!
//! * `net` — the topology and timing ([`NetConfig`]): a switch list (or a
//!   mesh size) plus wire/recirculation latencies;
//! * `engine` — which driver runs it (`"sequential"` or `"sharded"`);
//! * `limits` — event budget and virtual-time horizon;
//! * `init` — initial array state, applied with [`Interp::poke`];
//! * `events` — timed external injections;
//! * `failures` — a switch fail/recover schedule;
//! * `expect` — final array cells/contents and event-count expectations.
//!
//! [`Scenario::from_json`] parses and shape-checks the file;
//! [`Scenario::validate`] resolves it against a checked program (unknown
//! events, bad arity, out-of-range switches and indices all become
//! structured [`ScenarioError`]s); [`run_scenario`] executes it and
//! returns a [`SimReport`] whose [`Mismatch`] list is empty exactly when
//! every expectation held.

use crate::bytecode::{ExecMode, OptLevel};
use crate::machine::{Engine, Interp, InterpError, NetConfig, Stats};
use crate::metrics::{MetricSel, Metrics};
use crate::workload::{ArgDist, GenSpec, Phase};
use lucid_check::{mask, CheckedProgram};
use std::fmt;

// ----------------------------------------------------------------- errors

/// A structured scenario failure: where in the file (JSON position or
/// field path) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The file is not well-formed JSON.
    Json {
        line: usize,
        col: usize,
        msg: String,
    },
    /// The JSON is well-formed but does not fit the scenario schema.
    Schema { path: String, msg: String },
    /// The scenario does not fit the program or topology (unknown event,
    /// wrong arity, out-of-range switch id or array index, ...).
    Validate { path: String, msg: String },
}

impl ScenarioError {
    pub(crate) fn schema(path: &str, msg: impl Into<String>) -> Self {
        ScenarioError::Schema {
            path: path.to_string(),
            msg: msg.into(),
        }
    }

    pub(crate) fn validate(path: &str, msg: impl Into<String>) -> Self {
        ScenarioError::Validate {
            path: path.to_string(),
            msg: msg.into(),
        }
    }

    /// One-line JSON rendering (for `lucidc sim --json`).
    pub fn to_json(&self) -> String {
        match self {
            ScenarioError::Json { line, col, msg } => format!(
                "{{\"kind\":\"json\",\"line\":{line},\"col\":{col},\"msg\":\"{}\"}}",
                json_escape(msg)
            ),
            ScenarioError::Schema { path, msg } => format!(
                "{{\"kind\":\"schema\",\"path\":\"{}\",\"msg\":\"{}\"}}",
                json_escape(path),
                json_escape(msg)
            ),
            ScenarioError::Validate { path, msg } => format!(
                "{{\"kind\":\"validate\",\"path\":\"{}\",\"msg\":\"{}\"}}",
                json_escape(path),
                json_escape(msg)
            ),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json { line, col, msg } => {
                write!(
                    f,
                    "scenario is not valid JSON (line {line}, col {col}): {msg}"
                )
            }
            ScenarioError::Schema { path, msg } => {
                write!(f, "scenario schema error at `{path}`: {msg}")
            }
            ScenarioError::Validate { path, msg } => {
                write!(f, "scenario does not fit the program at `{path}`: {msg}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Why a scenario run failed outright (as opposed to finishing with
/// expectation mismatches, which land in [`SimReport::mismatches`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimRunError {
    Scenario(ScenarioError),
    Runtime(InterpError),
    /// A world snapshot could not be taken, or a restore was refused
    /// (corrupted bytes, or a snapshot from a different program,
    /// scenario, or topology).
    Snapshot(String),
    /// A hot-swap was rejected (the session keeps running its current
    /// program).
    Swap(String),
}

impl fmt::Display for SimRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimRunError::Scenario(e) => write!(f, "{e}"),
            SimRunError::Runtime(e) => write!(f, "runtime fault: {e}"),
            SimRunError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            SimRunError::Swap(msg) => write!(f, "swap rejected: {msg}"),
        }
    }
}

impl std::error::Error for SimRunError {}

impl From<ScenarioError> for SimRunError {
    fn from(e: ScenarioError) -> Self {
        SimRunError::Scenario(e)
    }
}

impl From<InterpError> for SimRunError {
    fn from(e: InterpError) -> Self {
        SimRunError::Runtime(e)
    }
}

// ------------------------------------------------------------ the schema

/// One initial-state write: `arrays[array][index] = value` on `switch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poke {
    pub switch: u64,
    pub array: String,
    pub index: u64,
    pub value: u64,
}

/// One timed external event injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    pub time_ns: u64,
    pub switch: u64,
    pub event: String,
    pub args: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    Fail,
    Recover,
}

/// One scheduled fault action, applied when the virtual clock reaches
/// `time_ns` (before any event at or after that instant runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureAction {
    pub time_ns: u64,
    pub switch: u64,
    pub kind: FailureKind,
}

/// One expected final array cell (or whole-array contents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayExpect {
    pub switch: u64,
    pub array: String,
    /// `Some((index, value))` for a single cell; `None` when `values`
    /// pins the whole array.
    pub cell: Option<(u64, u64)>,
    pub values: Option<Vec<u64>>,
}

/// Expected outcomes checked after the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Expectations {
    pub arrays: Vec<ArrayExpect>,
    pub handled: Option<u64>,
    pub dropped: Option<u64>,
    pub exported: Option<u64>,
    pub per_event: Vec<(String, u64)>,
}

/// Comparison operator of one `$.metrics.expect` assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Parse a scenario `op` field.
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            _ => return None,
        })
    }

    pub fn label(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    pub fn holds(self, got: u64, want: u64) -> bool {
        match self {
            CmpOp::Lt => got < want,
            CmpOp::Le => got <= want,
            CmpOp::Gt => got > want,
            CmpOp::Ge => got >= want,
            CmpOp::Eq => got == want,
            CmpOp::Ne => got != want,
        }
    }
}

/// One statistical assertion from the scenario's `metrics` block, e.g.
/// "the p99 dispatch latency of `pkt` on switch 1 is below 5 µs":
/// `{"event":"pkt","switch":1,"metric":"latency_p99_ns","op":"<","value":5000}`.
/// Without `switch` the assertion reads the event's histograms merged
/// across every switch. Metrics are deterministic, so exact assertions
/// (`==`) are as reproducible as bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricExpect {
    pub event: String,
    /// Pin one event class; `None` aggregates the event over all switches.
    pub switch: Option<u64>,
    pub metric: MetricSel,
    pub op: CmpOp,
    pub value: u64,
}

/// A parsed scenario file. (`Eq` stops at `PartialEq`: zipf exponents in
/// generator specs are floats.)
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub description: String,
    pub switches: Vec<u64>,
    pub link_latency_ns: u64,
    pub recirc_latency_ns: u64,
    pub engine: Engine,
    pub exec: ExecMode,
    /// Bytecode optimization level (`"opt"`; default 2, the full
    /// pipeline). `lucidc sim --opt` overrides it.
    pub opt: OptLevel,
    pub max_events: u64,
    pub max_time_ns: u64,
    /// Base seed mixed into every generator's stream (`lucidc sim
    /// --seed` overrides it).
    pub seed: u64,
    pub init: Vec<Poke>,
    pub events: Vec<Injection>,
    /// Streaming workload generators, drained lazily alongside `events`.
    pub generators: Vec<GenSpec>,
    pub failures: Vec<FailureAction>,
    pub expect: Expectations,
    /// Statistical assertions over the run's latency metrics
    /// (`$.metrics.expect`), checked alongside `expect`.
    pub metrics: Vec<MetricExpect>,
}

impl Scenario {
    /// The [`NetConfig`] this scenario describes, with optional engine,
    /// executor, and opt-level overrides (e.g. from `lucidc sim
    /// --engine=...` / `--exec=...` / `--opt=...`).
    pub fn net_config(
        &self,
        engine_override: Option<Engine>,
        exec_override: Option<ExecMode>,
        opt_override: Option<OptLevel>,
    ) -> NetConfig {
        NetConfig {
            switches: self.switches.clone(),
            link_latency_ns: self.link_latency_ns,
            recirc_latency_ns: self.recirc_latency_ns,
            engine: engine_override.unwrap_or(self.engine),
            exec: exec_override.unwrap_or(self.exec),
            opt: opt_override.unwrap_or(self.opt),
        }
    }

    /// Parse a `*.sim.json` document. Shape errors carry the offending
    /// field path; syntax errors carry line/column.
    pub fn from_json(src: &str) -> Result<Scenario, ScenarioError> {
        let doc = json::parse(src)?;
        let fields = obj(&doc, "$")?;
        check_keys(
            fields,
            &[
                "name",
                "description",
                "net",
                "engine",
                "exec",
                "opt",
                "limits",
                "seed",
                "init",
                "events",
                "generators",
                "failures",
                "expect",
                "metrics",
            ],
            "$",
        )?;

        let name = match get(fields, "name") {
            Some(j) => str_of(j, "$.name")?.to_string(),
            None => "unnamed".to_string(),
        };
        let description = match get(fields, "description") {
            Some(j) => str_of(j, "$.description")?.to_string(),
            None => String::new(),
        };

        let mut switches: Vec<u64> = vec![1];
        let mut link_latency_ns = 1_000;
        let mut recirc_latency_ns = 600;
        if let Some(net) = get(fields, "net") {
            let nf = obj(net, "$.net")?;
            check_keys(
                nf,
                &["switches", "link_latency_ns", "recirc_latency_ns"],
                "$.net",
            )?;
            if let Some(sw) = get(nf, "switches") {
                switches = match sw {
                    json::Json::Num(_) => {
                        let n = u64_of(sw, "$.net.switches")?;
                        if n == 0 {
                            return Err(ScenarioError::schema(
                                "$.net.switches",
                                "a mesh needs at least one switch",
                            ));
                        }
                        (1..=n).collect()
                    }
                    json::Json::Arr(items) => {
                        let mut ids = Vec::with_capacity(items.len());
                        for (i, item) in items.iter().enumerate() {
                            ids.push(u64_of(item, &format!("$.net.switches[{i}]"))?);
                        }
                        if ids.is_empty() {
                            return Err(ScenarioError::schema(
                                "$.net.switches",
                                "topology needs at least one switch",
                            ));
                        }
                        let mut sorted = ids.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        if sorted.len() != ids.len() {
                            return Err(ScenarioError::schema(
                                "$.net.switches",
                                "duplicate switch id",
                            ));
                        }
                        ids
                    }
                    _ => {
                        return Err(ScenarioError::schema(
                            "$.net.switches",
                            "expected a switch-id array or a mesh size",
                        ))
                    }
                };
            }
            if let Some(j) = get(nf, "link_latency_ns") {
                link_latency_ns = u64_of(j, "$.net.link_latency_ns")?;
            }
            if let Some(j) = get(nf, "recirc_latency_ns") {
                recirc_latency_ns = u64_of(j, "$.net.recirc_latency_ns")?;
            }
        }

        let engine = match get(fields, "engine") {
            None => Engine::Sequential,
            Some(json::Json::Str(s)) => Engine::parse(s).ok_or_else(|| {
                ScenarioError::schema(
                    "$.engine",
                    format!("unknown engine `{s}` (expected `sequential` or `sharded`)"),
                )
            })?,
            Some(j @ json::Json::Obj(_)) => {
                let ef = obj(j, "$.engine")?;
                check_keys(ef, &["kind", "workers", "epoch_ns"], "$.engine")?;
                let kind = str_of(req(ef, "kind", "$.engine")?, "$.engine.kind")?;
                match Engine::parse(kind) {
                    Some(Engine::Sequential) => Engine::Sequential,
                    Some(Engine::Sharded { .. }) => Engine::Sharded {
                        workers: get(ef, "workers")
                            .map(|j| u64_of(j, "$.engine.workers"))
                            .transpose()?
                            .unwrap_or(0) as usize,
                        epoch_ns: get(ef, "epoch_ns")
                            .map(|j| u64_of(j, "$.engine.epoch_ns"))
                            .transpose()?
                            .unwrap_or(0),
                    },
                    None => {
                        return Err(ScenarioError::schema(
                            "$.engine.kind",
                            format!("unknown engine `{kind}`"),
                        ))
                    }
                }
            }
            Some(_) => {
                return Err(ScenarioError::schema(
                    "$.engine",
                    "expected an engine name or {kind, workers, epoch_ns}",
                ))
            }
        };

        let exec = match get(fields, "exec") {
            None => ExecMode::Ast,
            Some(json::Json::Str(s)) => ExecMode::parse(s).ok_or_else(|| {
                ScenarioError::schema(
                    "$.exec",
                    format!("unknown exec mode `{s}` (expected `ast` or `bytecode`)"),
                )
            })?,
            Some(_) => {
                return Err(ScenarioError::schema(
                    "$.exec",
                    "expected an exec-mode name (`ast` or `bytecode`)",
                ))
            }
        };

        let opt = match get(fields, "opt") {
            None => OptLevel::default(),
            Some(j @ json::Json::Num(_)) => match u64_of(j, "$.opt")? {
                0 => OptLevel::O0,
                1 => OptLevel::O1,
                2 => OptLevel::O2,
                n => {
                    return Err(ScenarioError::schema(
                        "$.opt",
                        format!("unknown opt level `{n}` (expected 0, 1, or 2)"),
                    ))
                }
            },
            Some(_) => {
                return Err(ScenarioError::schema(
                    "$.opt",
                    "expected an optimization level (0, 1, or 2)",
                ))
            }
        };

        let mut max_events = 1_000_000;
        let mut max_time_ns = u64::MAX;
        if let Some(limits) = get(fields, "limits") {
            let lf = obj(limits, "$.limits")?;
            check_keys(lf, &["max_events", "max_time_ns"], "$.limits")?;
            if let Some(j) = get(lf, "max_events") {
                max_events = u64_of(j, "$.limits.max_events")?;
            }
            if let Some(j) = get(lf, "max_time_ns") {
                max_time_ns = u64_of(j, "$.limits.max_time_ns")?;
            }
        }

        let seed = match get(fields, "seed") {
            Some(j) => u64_of(j, "$.seed")?,
            None => 0,
        };

        let generators = match get(fields, "generators") {
            Some(j) => generators_of(j, "$.generators")?,
            None => Vec::new(),
        };

        let mut init = Vec::new();
        if let Some(items) = get(fields, "init") {
            for (i, item) in arr(items, "$.init")?.iter().enumerate() {
                let path = format!("$.init[{i}]");
                let pf = obj(item, &path)?;
                check_keys(pf, &["switch", "array", "index", "value"], &path)?;
                init.push(Poke {
                    switch: u64_of(req(pf, "switch", &path)?, &format!("{path}.switch"))?,
                    array: str_of(req(pf, "array", &path)?, &format!("{path}.array"))?.to_string(),
                    index: u64_of(req(pf, "index", &path)?, &format!("{path}.index"))?,
                    value: u64_of(req(pf, "value", &path)?, &format!("{path}.value"))?,
                });
            }
        }

        let events = match get(fields, "events") {
            Some(items) => injections_of(items, "$.events")?,
            None => Vec::new(),
        };

        let mut failures = Vec::new();
        if let Some(items) = get(fields, "failures") {
            for (i, item) in arr(items, "$.failures")?.iter().enumerate() {
                let path = format!("$.failures[{i}]");
                let ff = obj(item, &path)?;
                check_keys(ff, &["time_ns", "switch", "action"], &path)?;
                let action = str_of(req(ff, "action", &path)?, &format!("{path}.action"))?;
                let kind = match action {
                    "fail" => FailureKind::Fail,
                    "recover" => FailureKind::Recover,
                    other => {
                        return Err(ScenarioError::schema(
                            &format!("{path}.action"),
                            format!("unknown action `{other}` (expected `fail` or `recover`)"),
                        ))
                    }
                };
                let time_ns = u64_of(req(ff, "time_ns", &path)?, &format!("{path}.time_ns"))?;
                if time_ns == 0 {
                    return Err(ScenarioError::schema(
                        &format!("{path}.time_ns"),
                        "failure actions must be scheduled at time >= 1 ns \
                         (use `init` for time-zero state)",
                    ));
                }
                failures.push(FailureAction {
                    time_ns,
                    switch: u64_of(req(ff, "switch", &path)?, &format!("{path}.switch"))?,
                    kind,
                });
            }
        }

        let mut expect = Expectations::default();
        if let Some(exp) = get(fields, "expect") {
            let xf = obj(exp, "$.expect")?;
            check_keys(
                xf,
                &["arrays", "handled", "dropped", "exported", "per_event"],
                "$.expect",
            )?;
            if let Some(j) = get(xf, "handled") {
                expect.handled = Some(u64_of(j, "$.expect.handled")?);
            }
            if let Some(j) = get(xf, "dropped") {
                expect.dropped = Some(u64_of(j, "$.expect.dropped")?);
            }
            if let Some(j) = get(xf, "exported") {
                expect.exported = Some(u64_of(j, "$.expect.exported")?);
            }
            if let Some(pe) = get(xf, "per_event") {
                for (name, j) in obj(pe, "$.expect.per_event")? {
                    expect.per_event.push((
                        name.clone(),
                        u64_of(j, &format!("$.expect.per_event.{name}"))?,
                    ));
                }
            }
            if let Some(items) = get(xf, "arrays") {
                for (i, item) in arr(items, "$.expect.arrays")?.iter().enumerate() {
                    let path = format!("$.expect.arrays[{i}]");
                    let af = obj(item, &path)?;
                    check_keys(af, &["switch", "array", "index", "value", "values"], &path)?;
                    let switch = u64_of(req(af, "switch", &path)?, &format!("{path}.switch"))?;
                    let array =
                        str_of(req(af, "array", &path)?, &format!("{path}.array"))?.to_string();
                    let cell = match (get(af, "index"), get(af, "value")) {
                        (Some(i_), Some(v)) => Some((
                            u64_of(i_, &format!("{path}.index"))?,
                            u64_of(v, &format!("{path}.value"))?,
                        )),
                        (None, None) => None,
                        _ => {
                            return Err(ScenarioError::schema(
                                &path,
                                "`index` and `value` must be given together",
                            ))
                        }
                    };
                    let values = match get(af, "values") {
                        Some(list) => {
                            let mut vs = Vec::new();
                            for (k, v) in arr(list, &format!("{path}.values"))?.iter().enumerate() {
                                vs.push(u64_of(v, &format!("{path}.values[{k}]"))?);
                            }
                            Some(vs)
                        }
                        None => None,
                    };
                    if cell.is_none() && values.is_none() {
                        return Err(ScenarioError::schema(
                            &path,
                            "expected either `index`+`value` or `values`",
                        ));
                    }
                    expect.arrays.push(ArrayExpect {
                        switch,
                        array,
                        cell,
                        values,
                    });
                }
            }
        }

        let mut metrics = Vec::new();
        if let Some(m) = get(fields, "metrics") {
            let mf = obj(m, "$.metrics")?;
            check_keys(mf, &["expect"], "$.metrics")?;
            if let Some(items) = get(mf, "expect") {
                for (i, item) in arr(items, "$.metrics.expect")?.iter().enumerate() {
                    let path = format!("$.metrics.expect[{i}]");
                    let xf = obj(item, &path)?;
                    check_keys(xf, &["event", "switch", "metric", "op", "value"], &path)?;
                    let event = str_of(req(xf, "event", &path)?, &format!("{path}.event"))?;
                    let switch = match get(xf, "switch") {
                        Some(j) => Some(u64_of(j, &format!("{path}.switch"))?),
                        None => None,
                    };
                    let sel = str_of(req(xf, "metric", &path)?, &format!("{path}.metric"))?;
                    let Some(metric) = MetricSel::parse(sel) else {
                        return Err(ScenarioError::schema(
                            &format!("{path}.metric"),
                            format!(
                                "unknown metric `{sel}` (expected one of {})",
                                MetricSel::all_labels().join(", ")
                            ),
                        ));
                    };
                    let op_s = str_of(req(xf, "op", &path)?, &format!("{path}.op"))?;
                    let Some(op) = CmpOp::parse(op_s) else {
                        return Err(ScenarioError::schema(
                            &format!("{path}.op"),
                            format!("unknown operator `{op_s}` (expected <, <=, >, >=, ==, !=)"),
                        ));
                    };
                    metrics.push(MetricExpect {
                        event: event.to_string(),
                        switch,
                        metric,
                        op,
                        value: u64_of(req(xf, "value", &path)?, &format!("{path}.value"))?,
                    });
                }
            }
        }

        Ok(Scenario {
            name,
            description,
            switches,
            link_latency_ns,
            recirc_latency_ns,
            engine,
            exec,
            opt,
            max_events,
            max_time_ns,
            seed,
            init,
            events,
            generators,
            failures,
            expect,
            metrics,
        })
    }

    /// Parse a standalone generator-spec document (`lucidc sim --gen`):
    /// either one generator object or an array of them, using the same
    /// schema as the scenario's `generators` section.
    pub fn parse_generators(src: &str) -> Result<Vec<GenSpec>, ScenarioError> {
        let doc = json::parse(src)?;
        match &doc {
            json::Json::Arr(_) => generators_of(&doc, "$"),
            json::Json::Obj(_) => Ok(vec![generator_of(&doc, "$", 0)?]),
            other => Err(ScenarioError::schema(
                "$",
                format!(
                    "expected a generator object or an array of them, found {}",
                    other.kind()
                ),
            )),
        }
    }

    /// Resolve the scenario against a checked program: every event name,
    /// arity, array name, switch id, array index, and initial cell value
    /// must fit.
    pub fn validate(&self, prog: &CheckedProgram) -> Result<(), ScenarioError> {
        let known_switch = |s: u64| self.switches.contains(&s);
        let array_len = |name: &str| -> Option<u64> {
            prog.info
                .globals_by_name
                .get(name)
                .map(|gid| prog.info.globals[gid.0].len)
        };

        for (i, p) in self.init.iter().enumerate() {
            let path = format!("$.init[{i}]");
            if !known_switch(p.switch) {
                return Err(ScenarioError::validate(
                    &format!("{path}.switch"),
                    format!("switch {} is not in the topology", p.switch),
                ));
            }
            let Some(len) = array_len(&p.array) else {
                return Err(ScenarioError::validate(
                    &format!("{path}.array"),
                    format!("no global array named `{}`", p.array),
                ));
            };
            if p.index >= len {
                return Err(ScenarioError::validate(
                    &format!("{path}.index"),
                    format!(
                        "index {} out of range for `{}` (len {len})",
                        p.index, p.array
                    ),
                ));
            }
            // An oversized value used to be masked silently on write,
            // leaving the author none the wiser that their initial state
            // was not what they asked for.
            let width = prog.info.globals[prog.info.globals_by_name[&p.array].0].cell_width;
            if mask(p.value, width) != p.value {
                return Err(ScenarioError::validate(
                    &format!("{path}.value"),
                    format!(
                        "value {} does not fit `{}`'s {width}-bit cells \
                         (max {})",
                        p.value,
                        p.array,
                        mask(u64::MAX, width)
                    ),
                ));
            }
        }

        for (i, g) in self.generators.iter().enumerate() {
            let path = format!("$.generators[{i}]");
            let Some(ev) = prog.info.event(&g.event) else {
                return Err(ScenarioError::validate(
                    &format!("{path}.event"),
                    format!("no event named `{}`", g.event),
                ));
            };
            if ev.params.len() != g.args.len() {
                return Err(ScenarioError::validate(
                    &format!("{path}.args"),
                    format!(
                        "event `{}` wants {} args, got {}",
                        g.event,
                        ev.params.len(),
                        g.args.len()
                    ),
                ));
            }
            for (k, s) in g.switches.iter().enumerate() {
                if !known_switch(*s) {
                    let field = if g.switches.len() == 1 {
                        format!("{path}.switch")
                    } else {
                        format!("{path}.switches[{k}]")
                    };
                    return Err(ScenarioError::validate(
                        &field,
                        format!("switch {s} is not in the topology"),
                    ));
                }
            }
        }

        for (i, inj) in self.events.iter().enumerate() {
            let path = format!("$.events[{i}]");
            if !known_switch(inj.switch) {
                return Err(ScenarioError::validate(
                    &format!("{path}.switch"),
                    format!("switch {} is not in the topology", inj.switch),
                ));
            }
            let Some(ev) = prog.info.event(&inj.event) else {
                return Err(ScenarioError::validate(
                    &format!("{path}.event"),
                    format!("no event named `{}`", inj.event),
                ));
            };
            if ev.params.len() != inj.args.len() {
                return Err(ScenarioError::validate(
                    &format!("{path}.args"),
                    format!(
                        "event `{}` wants {} args, got {}",
                        inj.event,
                        ev.params.len(),
                        inj.args.len()
                    ),
                ));
            }
        }

        for (i, f) in self.failures.iter().enumerate() {
            if !known_switch(f.switch) {
                return Err(ScenarioError::validate(
                    &format!("$.failures[{i}].switch"),
                    format!("switch {} is not in the topology", f.switch),
                ));
            }
        }

        for (i, x) in self.expect.arrays.iter().enumerate() {
            let path = format!("$.expect.arrays[{i}]");
            if !known_switch(x.switch) {
                return Err(ScenarioError::validate(
                    &format!("{path}.switch"),
                    format!("switch {} is not in the topology", x.switch),
                ));
            }
            let Some(len) = array_len(&x.array) else {
                return Err(ScenarioError::validate(
                    &format!("{path}.array"),
                    format!("no global array named `{}`", x.array),
                ));
            };
            if let Some((idx, _)) = x.cell {
                if idx >= len {
                    return Err(ScenarioError::validate(
                        &format!("{path}.index"),
                        format!("index {idx} out of range for `{}` (len {len})", x.array),
                    ));
                }
            }
            if let Some(vs) = &x.values {
                if vs.len() as u64 != len {
                    return Err(ScenarioError::validate(
                        &format!("{path}.values"),
                        format!(
                            "`{}` has {len} cells but {} values were given",
                            x.array,
                            vs.len()
                        ),
                    ));
                }
            }
        }

        for (name, _) in &self.expect.per_event {
            if prog.info.event(name).is_none() {
                return Err(ScenarioError::validate(
                    &format!("$.expect.per_event.{name}"),
                    format!("no event named `{name}`"),
                ));
            }
        }

        for (i, m) in self.metrics.iter().enumerate() {
            let path = format!("$.metrics.expect[{i}]");
            if prog.info.event(&m.event).is_none() {
                return Err(ScenarioError::validate(
                    &format!("{path}.event"),
                    format!("no event named `{}`", m.event),
                ));
            }
            if let Some(s) = m.switch {
                if !known_switch(s) {
                    return Err(ScenarioError::validate(
                        &format!("{path}.switch"),
                        format!("switch {s} is not in the topology"),
                    ));
                }
            }
        }

        Ok(())
    }
}

// ----------------------------------------------------------------- report

/// One failed expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// A final array cell differed.
    Array {
        switch: u64,
        array: String,
        index: u64,
        want: u64,
        got: u64,
    },
    /// An expected array sits on a switch that ended the run failed.
    FailedSwitch { switch: u64, array: String },
    /// An event-count expectation differed (`what` is `handled`,
    /// `dropped`, `exported`, or `event:<name>`).
    Count { what: String, want: u64, got: u64 },
    /// A `$.metrics.expect` assertion failed. `class` is `event@switch`
    /// or just `event` for all-switch aggregates; `metric` is the
    /// selector's canonical name; `op`/`want` restate the assertion.
    Metric {
        class: String,
        metric: &'static str,
        op: &'static str,
        want: u64,
        got: u64,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Array {
                switch,
                array,
                index,
                want,
                got,
            } => write!(
                f,
                "switch {switch} `{array}[{index}]`: expected {want}, got {got}"
            ),
            Mismatch::FailedSwitch { switch, array } => write!(
                f,
                "switch {switch} `{array}`: switch ended the run failed; its arrays are gone"
            ),
            Mismatch::Count { what, want, got } => {
                write!(f, "{what}: expected {want}, got {got}")
            }
            Mismatch::Metric {
                class,
                metric,
                op,
                want,
                got,
            } => write!(
                f,
                "metrics `{class}` {metric}: expected {op} {want}, got {got}"
            ),
        }
    }
}

impl Mismatch {
    pub fn to_json(&self) -> String {
        match self {
            Mismatch::Array {
                switch,
                array,
                index,
                want,
                got,
            } => format!(
                "{{\"kind\":\"array\",\"switch\":{switch},\"array\":\"{}\",\
                 \"index\":{index},\"want\":{want},\"got\":{got}}}",
                json_escape(array)
            ),
            Mismatch::FailedSwitch { switch, array } => format!(
                "{{\"kind\":\"failed_switch\",\"switch\":{switch},\"array\":\"{}\"}}",
                json_escape(array)
            ),
            Mismatch::Count { what, want, got } => format!(
                "{{\"kind\":\"count\",\"what\":\"{}\",\"want\":{want},\"got\":{got}}}",
                json_escape(what)
            ),
            Mismatch::Metric {
                class,
                metric,
                op,
                want,
                got,
            } => format!(
                "{{\"kind\":\"metric\",\"class\":\"{}\",\"metric\":\"{metric}\",\
                 \"op\":\"{}\",\"want\":{want},\"got\":{got}}}",
                json_escape(class),
                json_escape(op)
            ),
        }
    }
}

/// The outcome of one scenario run: statistics, timings, and every failed
/// expectation.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub scenario: String,
    pub engine: &'static str,
    /// Which executor ran handler bodies (`ast` or `bytecode`).
    pub exec: &'static str,
    /// The bytecode optimization level the run used (`"0"`/`"1"`/`"2"`;
    /// reported even under the AST walker, which ignores it).
    pub opt: &'static str,
    pub switches: usize,
    pub stats: Stats,
    /// Final virtual clock, nanoseconds.
    pub sim_ns: u64,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: f64,
    /// Processed events per wall-clock second.
    pub events_per_sec: f64,
    /// FNV-1a digest of every switch's final array state, in switch and
    /// declaration order (failed switches hash as a marker). Two runs of
    /// one scenario agree on this exactly when their final states are
    /// byte-identical — the cheap cross-engine determinism check.
    pub state_digest: u64,
    /// Per-generator injection counts, in declaration order (empty when
    /// the scenario has no `generators` section).
    pub gens: Vec<(String, u64)>,
    /// Per-event-class latency metrics (dispatch latency and queue
    /// residency histograms with tail percentiles). Deterministic and
    /// engine-independent like `state_digest`.
    pub metrics: Metrics,
    pub mismatches: Vec<Mismatch>,
}

impl SimReport {
    /// True when every expectation held.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The machine-readable form `lucidc sim --json` prints.
    pub fn to_json(&self) -> String {
        let mm: Vec<String> = self.mismatches.iter().map(Mismatch::to_json).collect();
        let gens: Vec<String> = self
            .gens
            .iter()
            .map(|(name, n)| format!("{{\"name\":\"{}\",\"injected\":{n}}}", json_escape(name)))
            .collect();
        format!(
            "{{\"scenario\":\"{}\",\"engine\":\"{}\",\"exec\":\"{}\",\"opt\":{},\"switches\":{},\
             \"events_processed\":{},\"events_handled\":{},\"recirculated\":{},\
             \"sent_remote\":{},\"exported\":{},\"dropped\":{},\
             \"sim_ns\":{},\"wall_ms\":{:.3},\"events_per_sec\":{:.0},\
             \"state_digest\":\"{:016x}\",\"metrics\":{},\"generators\":[{}],\
             \"ok\":{},\"mismatches\":[{}]}}",
            json_escape(&self.scenario),
            self.engine,
            self.exec,
            self.opt,
            self.switches,
            self.stats.processed,
            self.stats.handled,
            self.stats.recirculated,
            self.stats.sent_remote,
            self.stats.exported,
            self.stats.dropped,
            self.sim_ns,
            self.wall_ms,
            self.events_per_sec,
            self.state_digest,
            self.metrics.to_json(),
            gens.join(","),
            self.passed(),
            mm.join(",")
        )
    }

    /// Human-readable summary (the default `lucidc sim` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "scenario `{}`: {} switches, {} engine, {} exec (opt {})\n\
             events: {} processed ({} handled, {} recirculated, {} remote, \
             {} exported, {} dropped)\n\
             time:   {} sim-ns in {:.3} wall-ms ({:.0} events/sec)\n",
            self.scenario,
            self.switches,
            self.engine,
            self.exec,
            self.opt,
            self.stats.processed,
            self.stats.handled,
            self.stats.recirculated,
            self.stats.sent_remote,
            self.stats.exported,
            self.stats.dropped,
            self.sim_ns,
            self.wall_ms,
            self.events_per_sec,
        );
        if !self.gens.is_empty() {
            let parts: Vec<String> = self
                .gens
                .iter()
                .map(|(name, n)| format!("{name}={n}"))
                .collect();
            out.push_str(&format!("generators: {}\n", parts.join(", ")));
        }
        if self.passed() {
            out.push_str("expectations: all met\n");
        } else {
            out.push_str(&format!("expectations: {} FAILED\n", self.mismatches.len()));
            for m in &self.mismatches {
                out.push_str(&format!("  mismatch: {m}\n"));
            }
        }
        out
    }
}

// ----------------------------------------------------------------- runner

/// Run-time knobs layered over a scenario's own choices (`lucidc sim
/// --engine/--exec/--opt/--workers/--seed/--events/--no-trace`).
/// [`Default`] overrides nothing; the builder methods set one knob each
/// and chain:
///
/// ```
/// use lucid_interp::{Engine, SimOptions};
/// let opts = SimOptions::new().engine(Engine::Sequential).seed(7).record_trace(false);
/// assert_eq!(opts.seed, Some(7));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    pub engine: Option<Engine>,
    pub exec: Option<ExecMode>,
    /// Replaces the scenario's bytecode optimization level (`--opt`;
    /// a no-op under the AST walker).
    pub opt: Option<OptLevel>,
    /// Forces the sharded engine with this worker count (`0`: one per
    /// core), whatever engine the scenario or the `engine` override
    /// picked. The epoch length is kept when the resolved engine was
    /// already sharded, adaptive otherwise.
    pub workers: Option<usize>,
    /// Replaces the scenario's top-level `seed` (reshuffles every
    /// generator stream).
    pub seed: Option<u64>,
    /// Sets the total number of generator-sourced injections. Below the
    /// authored total the merged stream just stops early; above it,
    /// per-generator `count` caps scale up proportionally so the stream
    /// can reach the target. The event budget is raised to at least 4x
    /// the target so scaling past the authored `limits.max_events` does
    /// not trip the fuel limit.
    ///
    /// Either workload override (`seed` or `events`) invalidates the
    /// scenario's authored expectations — the run reports its statistics
    /// and digest but skips the `expect` checks.
    pub events: Option<u64>,
    /// `Some(false)` disables trace retention for the run: handled and
    /// exported events are not logged (stats, per-event counts, metrics,
    /// `printf` output, and the state digest are unchanged). Benchmarks
    /// use it so wall-clock rows don't pay for a log nobody reads; the
    /// report drops the trace regardless.
    pub record_trace: Option<bool>,
}

impl SimOptions {
    /// Options that override nothing (same as [`Default`]).
    pub fn new() -> SimOptions {
        SimOptions::default()
    }

    pub fn engine(mut self, engine: Engine) -> SimOptions {
        self.engine = Some(engine);
        self
    }

    pub fn exec(mut self, exec: ExecMode) -> SimOptions {
        self.exec = Some(exec);
        self
    }

    pub fn opt(mut self, opt: OptLevel) -> SimOptions {
        self.opt = Some(opt);
        self
    }

    pub fn workers(mut self, workers: usize) -> SimOptions {
        self.workers = Some(workers);
        self
    }

    pub fn seed(mut self, seed: u64) -> SimOptions {
        self.seed = Some(seed);
        self
    }

    pub fn events(mut self, events: u64) -> SimOptions {
        self.events = Some(events);
        self
    }

    pub fn record_trace(mut self, on: bool) -> SimOptions {
        self.record_trace = Some(on);
        self
    }

    /// Resolve the effective network configuration for `sc`: the
    /// scenario's choices, overridden knob by knob, with `workers`
    /// folded into the engine last.
    pub(crate) fn resolve(&self, sc: &Scenario) -> NetConfig {
        let mut cfg = sc.net_config(self.engine, self.exec, self.opt);
        if let Some(w) = self.workers {
            cfg.engine = match cfg.engine {
                Engine::Sharded { epoch_ns, .. } => Engine::Sharded {
                    workers: w,
                    epoch_ns,
                },
                Engine::Sequential => Engine::Sharded {
                    workers: w,
                    epoch_ns: 0,
                },
            };
        }
        cfg
    }
}

/// The pre-redesign name of [`SimOptions`].
#[deprecated(note = "renamed to SimOptions")]
pub type SimOverrides = SimOptions;

/// Validate and execute a scenario against a checked program. The engine
/// and executor can be overridden (CLI `--engine` / `--exec`); otherwise
/// the scenario's own choices run. Expectation failures are *not* errors
/// — they come back in [`SimReport::mismatches`] so the caller can render
/// all of them.
pub fn run_scenario(
    prog: &CheckedProgram,
    sc: &Scenario,
    engine_override: Option<Engine>,
    exec_override: Option<ExecMode>,
) -> Result<SimReport, SimRunError> {
    run_scenario_with(
        prog,
        sc,
        &SimOptions {
            engine: engine_override,
            exec: exec_override,
            ..SimOptions::default()
        },
    )
}

/// [`run_scenario`] with the full option set, including the workload
/// knobs (`--seed`, `--events`). One-shot runs are a served session
/// opened and drained in one breath — [`crate::session::SimSession`] is
/// the single execution path, which is what makes a served world
/// bit-identical to this function by construction.
pub fn run_scenario_with(
    prog: &CheckedProgram,
    sc: &Scenario,
    ov: &SimOptions,
) -> Result<SimReport, SimRunError> {
    let mut session = crate::session::SimSession::open(prog, sc, ov)?;
    session.drain()
}

/// FNV-1a over every configured switch's final arrays. Sorted switch
/// order and declaration order make it engine-independent.
pub(crate) fn digest_state(prog: &CheckedProgram, sim: &Interp, switches: &[u64]) -> u64 {
    let mut sorted = switches.to_vec();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for i in 0..8 {
            h ^= (x >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for s in sorted {
        mix(s);
        if !sim.alive(s) {
            mix(u64::MAX); // failed switch marker
            continue;
        }
        for g in &prog.info.globals {
            for &cell in sim.try_array(s, &g.name).expect("alive switch") {
                mix(cell);
            }
        }
    }
    h
}

pub(crate) fn check_expectations(sim: &Interp, expect: &Expectations, out: &mut Vec<Mismatch>) {
    for x in &expect.arrays {
        let Some(actual) = sim.try_array(x.switch, &x.array) else {
            out.push(Mismatch::FailedSwitch {
                switch: x.switch,
                array: x.array.clone(),
            });
            continue;
        };
        if let Some((idx, want)) = x.cell {
            let got = actual[idx as usize];
            if got != want {
                out.push(Mismatch::Array {
                    switch: x.switch,
                    array: x.array.clone(),
                    index: idx,
                    want,
                    got,
                });
            }
        }
        if let Some(want_all) = &x.values {
            for (idx, (&want, &got)) in want_all.iter().zip(actual.iter()).enumerate() {
                if want != got {
                    out.push(Mismatch::Array {
                        switch: x.switch,
                        array: x.array.clone(),
                        index: idx as u64,
                        want,
                        got,
                    });
                }
            }
        }
    }
    let mut count = |what: &str, want: Option<u64>, got: u64| {
        if let Some(want) = want {
            if want != got {
                out.push(Mismatch::Count {
                    what: what.to_string(),
                    want,
                    got,
                });
            }
        }
    };
    count("handled", expect.handled, sim.stats.handled);
    count("dropped", expect.dropped, sim.stats.dropped);
    count("exported", expect.exported, sim.stats.exported);
    for (name, want) in &expect.per_event {
        let got = sim.stats.per_event.get(name).copied().unwrap_or(0);
        count(&format!("event:{name}"), Some(*want), got);
    }
}

/// Evaluate every `$.metrics.expect` assertion against the run's merged
/// metrics. A class that never dispatched reads as an empty histogram
/// pair (count 0, every percentile 0), so "count >= N" naturally fails
/// and "latency < K" trivially holds on silence — assert `count` too
/// when silence would be a bug.
pub(crate) fn check_metric_expectations(
    metrics: &Metrics,
    expect: &[MetricExpect],
    out: &mut Vec<Mismatch>,
) {
    for m in expect {
        let hists = match m.switch {
            Some(s) => metrics.class(s, &m.event).map(|c| c.hists.clone()),
            None => metrics.aggregate_event(&m.event),
        }
        .unwrap_or_default();
        let got = m.metric.read(&hists);
        if !m.op.holds(got, m.value) {
            let class = match m.switch {
                Some(s) => format!("{}@{s}", m.event),
                None => m.event.clone(),
            };
            out.push(Mismatch::Metric {
                class,
                metric: m.metric.label(),
                op: m.op.label(),
                want: m.value,
                got,
            });
        }
    }
}

/// Escape a string's content for embedding inside a JSON string literal
/// (surrounding quotes not included). The workspace builds offline with
/// no serde, so every hand-built JSON emitter shares this one table.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ------------------------------------------------------ generator schema

/// Parse a scenario `events` array (shared with the serve `ingest` verb,
/// whose batches use the same shape).
pub(crate) fn injections_of(j: &json::Json, path: &str) -> Result<Vec<Injection>, ScenarioError> {
    let mut events = Vec::new();
    for (i, item) in arr(j, path)?.iter().enumerate() {
        let path = format!("{path}[{i}]");
        let ef = obj(item, &path)?;
        check_keys(ef, &["time_ns", "switch", "event", "args"], &path)?;
        let mut args = Vec::new();
        if let Some(list) = get(ef, "args") {
            for (k, a) in arr(list, &format!("{path}.args"))?.iter().enumerate() {
                args.push(u64_of(a, &format!("{path}.args[{k}]"))?);
            }
        }
        events.push(Injection {
            time_ns: u64_of(req(ef, "time_ns", &path)?, &format!("{path}.time_ns"))?,
            switch: u64_of(req(ef, "switch", &path)?, &format!("{path}.switch"))?,
            event: str_of(req(ef, "event", &path)?, &format!("{path}.event"))?.to_string(),
            args,
        });
    }
    Ok(events)
}

pub(crate) fn generators_of(j: &json::Json, path: &str) -> Result<Vec<GenSpec>, ScenarioError> {
    let items = arr(j, path)?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        out.push(generator_of(item, &format!("{path}[{i}]"), i)?);
    }
    // Names key the per-generator report rows; duplicates would merge.
    for (i, g) in out.iter().enumerate() {
        if out[..i].iter().any(|h| h.name == g.name) {
            return Err(ScenarioError::schema(
                &format!("{path}[{i}].name"),
                format!("duplicate generator name `{}`", g.name),
            ));
        }
    }
    Ok(out)
}

/// A required rate expressed either way: `rate_eps` (events per virtual
/// second) or a raw `interval_ns` gap.
fn interval_of(fields: &[(String, json::Json)], path: &str) -> Result<u64, ScenarioError> {
    match (get(fields, "rate_eps"), get(fields, "interval_ns")) {
        (Some(_), Some(_)) => Err(ScenarioError::schema(
            path,
            "give either `rate_eps` or `interval_ns`, not both",
        )),
        (Some(r), None) => {
            let rate = u64_of(r, &format!("{path}.rate_eps"))?;
            if rate == 0 {
                return Err(ScenarioError::schema(
                    &format!("{path}.rate_eps"),
                    "rate must be at least 1 event per second",
                ));
            }
            Ok((1_000_000_000 / rate).max(1))
        }
        (None, Some(iv)) => {
            let iv = u64_of(iv, &format!("{path}.interval_ns"))?;
            if iv == 0 {
                return Err(ScenarioError::schema(
                    &format!("{path}.interval_ns"),
                    "the inter-arrival interval must be at least 1 ns",
                ));
            }
            Ok(iv)
        }
        (None, None) => Err(ScenarioError::schema(
            path,
            "missing rate: give `rate_eps` or `interval_ns`",
        )),
    }
}

fn generator_of(j: &json::Json, path: &str, index: usize) -> Result<GenSpec, ScenarioError> {
    let gf = obj(j, path)?;
    check_keys(
        gf,
        &[
            "name",
            "event",
            "switch",
            "switches",
            "rate_eps",
            "interval_ns",
            "jitter_ns",
            "start_ns",
            "stop_ns",
            "count",
            "seed",
            "args",
            "phases",
        ],
        path,
    )?;
    let name = match get(gf, "name") {
        Some(n) => str_of(n, &format!("{path}.name"))?.to_string(),
        None => format!("gen{index}"),
    };
    let event = str_of(req(gf, "event", path)?, &format!("{path}.event"))?.to_string();
    let switches = match (get(gf, "switch"), get(gf, "switches")) {
        (Some(_), Some(_)) => {
            return Err(ScenarioError::schema(
                path,
                "give either `switch` or `switches`, not both",
            ))
        }
        (Some(s), None) => vec![u64_of(s, &format!("{path}.switch"))?],
        (None, Some(list)) => {
            let spath = format!("{path}.switches");
            let items = arr(list, &spath)?;
            if items.is_empty() {
                return Err(ScenarioError::schema(&spath, "needs at least one switch"));
            }
            let mut ids = Vec::with_capacity(items.len());
            for (k, s) in items.iter().enumerate() {
                ids.push(u64_of(s, &format!("{spath}[{k}]"))?);
            }
            ids
        }
        (None, None) => vec![1],
    };
    let interval_ns = interval_of(gf, path)?;
    let jitter_ns = match get(gf, "jitter_ns") {
        Some(v) => u64_of(v, &format!("{path}.jitter_ns"))?,
        None => 0,
    };
    let start_ns = match get(gf, "start_ns") {
        Some(v) => u64_of(v, &format!("{path}.start_ns"))?,
        None => 0,
    };
    let stop_ns = get(gf, "stop_ns")
        .map(|v| u64_of(v, &format!("{path}.stop_ns")))
        .transpose()?;
    let count = get(gf, "count")
        .map(|v| u64_of(v, &format!("{path}.count")))
        .transpose()?;
    if stop_ns.is_none() && count.is_none() {
        return Err(ScenarioError::schema(
            path,
            "the generator is unbounded: give `count`, `stop_ns`, or both",
        ));
    }
    if let Some(stop) = stop_ns {
        if stop < start_ns {
            return Err(ScenarioError::schema(
                &format!("{path}.stop_ns"),
                format!("stop ({stop}) precedes start ({start_ns})"),
            ));
        }
    }
    let seed = match get(gf, "seed") {
        Some(v) => u64_of(v, &format!("{path}.seed"))?,
        None => index as u64,
    };
    let mut args = Vec::new();
    if let Some(list) = get(gf, "args") {
        for (k, a) in arr(list, &format!("{path}.args"))?.iter().enumerate() {
            args.push(arg_dist_of(a, &format!("{path}.args[{k}]"))?);
        }
    }
    let mut phases = Vec::new();
    if let Some(list) = get(gf, "phases") {
        for (k, p) in arr(list, &format!("{path}.phases"))?.iter().enumerate() {
            let ppath = format!("{path}.phases[{k}]");
            let pf = obj(p, &ppath)?;
            check_keys(pf, &["at_ns", "rate_eps", "interval_ns"], &ppath)?;
            let at_ns = u64_of(req(pf, "at_ns", &ppath)?, &format!("{ppath}.at_ns"))?;
            let interval_ns = interval_of(pf, &ppath)?;
            phases.push(Phase { at_ns, interval_ns });
        }
        for w in phases.windows(2) {
            if w[1].at_ns <= w[0].at_ns {
                return Err(ScenarioError::schema(
                    &format!("{path}.phases"),
                    "phases must be strictly increasing in `at_ns`",
                ));
            }
        }
    }
    Ok(GenSpec {
        name,
        event,
        switches,
        interval_ns,
        jitter_ns,
        start_ns,
        stop_ns,
        count,
        seed,
        args,
        phases,
    })
}

fn arg_dist_of(j: &json::Json, path: &str) -> Result<ArgDist, ScenarioError> {
    match j {
        json::Json::Num(_) => Ok(ArgDist::Const(u64_of(j, path)?)),
        json::Json::Obj(fields) => {
            check_keys(fields, &["const", "uniform", "zipf", "seq"], path)?;
            if fields.len() != 1 {
                return Err(ScenarioError::schema(
                    path,
                    "an argument distribution is exactly one of \
                     `const`, `uniform`, `zipf`, or `seq`",
                ));
            }
            let (kind, body) = &fields[0];
            match kind.as_str() {
                "const" => Ok(ArgDist::Const(u64_of(body, &format!("{path}.const"))?)),
                "uniform" => {
                    let upath = format!("{path}.uniform");
                    let (lo, hi) = match body {
                        // Compact form: "uniform": [lo, hi].
                        json::Json::Arr(items) if items.len() == 2 => (
                            u64_of(&items[0], &format!("{upath}[0]"))?,
                            u64_of(&items[1], &format!("{upath}[1]"))?,
                        ),
                        json::Json::Obj(uf) => {
                            check_keys(uf, &["lo", "hi"], &upath)?;
                            (
                                u64_of(req(uf, "lo", &upath)?, &format!("{upath}.lo"))?,
                                u64_of(req(uf, "hi", &upath)?, &format!("{upath}.hi"))?,
                            )
                        }
                        _ => {
                            return Err(ScenarioError::schema(
                                &upath,
                                "expected {lo, hi} or a two-element array",
                            ))
                        }
                    };
                    if lo > hi {
                        return Err(ScenarioError::schema(
                            &upath,
                            format!("empty range: lo ({lo}) > hi ({hi})"),
                        ));
                    }
                    Ok(ArgDist::Uniform { lo, hi })
                }
                "zipf" => {
                    let zpath = format!("{path}.zipf");
                    let zf = obj(body, &zpath)?;
                    check_keys(zf, &["n", "s"], &zpath)?;
                    let n = u64_of(req(zf, "n", &zpath)?, &format!("{zpath}.n"))?;
                    if n == 0 {
                        return Err(ScenarioError::schema(
                            &format!("{zpath}.n"),
                            "zipf needs at least one key",
                        ));
                    }
                    let s = match get(zf, "s") {
                        Some(v) => f64_of(v, &format!("{zpath}.s"))?,
                        None => 1.0,
                    };
                    if !(s > 0.0 && s.is_finite()) {
                        return Err(ScenarioError::schema(
                            &format!("{zpath}.s"),
                            format!("the exponent must be positive and finite, got {s}"),
                        ));
                    }
                    Ok(ArgDist::Zipf { n, s })
                }
                "seq" => {
                    let n = u64_of(body, &format!("{path}.seq"))?;
                    if n == 0 {
                        return Err(ScenarioError::schema(
                            &format!("{path}.seq"),
                            "seq needs a nonzero modulus",
                        ));
                    }
                    Ok(ArgDist::Seq { n })
                }
                _ => unreachable!("check_keys filtered"),
            }
        }
        other => Err(ScenarioError::schema(
            path,
            format!(
                "expected a constant or a distribution object, found {}",
                other.kind()
            ),
        )),
    }
}

// -------------------------------------------------------- JSON accessors

pub(crate) fn obj<'a>(
    j: &'a json::Json,
    path: &str,
) -> Result<&'a [(String, json::Json)], ScenarioError> {
    match j {
        json::Json::Obj(fields) => Ok(fields),
        other => Err(ScenarioError::schema(
            path,
            format!("expected an object, found {}", other.kind()),
        )),
    }
}

pub(crate) fn arr<'a>(j: &'a json::Json, path: &str) -> Result<&'a [json::Json], ScenarioError> {
    match j {
        json::Json::Arr(items) => Ok(items),
        other => Err(ScenarioError::schema(
            path,
            format!("expected an array, found {}", other.kind()),
        )),
    }
}

pub(crate) fn get<'a>(fields: &'a [(String, json::Json)], key: &str) -> Option<&'a json::Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

pub(crate) fn req<'a>(
    fields: &'a [(String, json::Json)],
    key: &str,
    path: &str,
) -> Result<&'a json::Json, ScenarioError> {
    get(fields, key)
        .ok_or_else(|| ScenarioError::schema(path, format!("missing required field `{key}`")))
}

pub(crate) fn str_of<'a>(j: &'a json::Json, path: &str) -> Result<&'a str, ScenarioError> {
    match j {
        json::Json::Str(s) => Ok(s),
        other => Err(ScenarioError::schema(
            path,
            format!("expected a string, found {}", other.kind()),
        )),
    }
}

pub(crate) fn u64_of(j: &json::Json, path: &str) -> Result<u64, ScenarioError> {
    match j {
        json::Json::Num(n) => {
            if *n < 0.0 || n.fract() != 0.0 || *n > 9_007_199_254_740_992.0 {
                Err(ScenarioError::schema(
                    path,
                    format!("expected a non-negative integer, found {n}"),
                ))
            } else {
                Ok(*n as u64)
            }
        }
        other => Err(ScenarioError::schema(
            path,
            format!("expected a number, found {}", other.kind()),
        )),
    }
}

fn f64_of(j: &json::Json, path: &str) -> Result<f64, ScenarioError> {
    match j {
        json::Json::Num(n) => Ok(*n),
        other => Err(ScenarioError::schema(
            path,
            format!("expected a number, found {}", other.kind()),
        )),
    }
}

pub(crate) fn check_keys(
    fields: &[(String, json::Json)],
    allowed: &[&str],
    path: &str,
) -> Result<(), ScenarioError> {
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(ScenarioError::schema(
                path,
                format!(
                    "unknown field `{k}` (expected one of: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------------------- mini-JSON

/// A minimal JSON reader. The workspace builds offline (no serde), and
/// scenarios only need objects/arrays/strings/numbers/bools, so a small
/// recursive-descent parser with line/column errors is all it takes.
pub mod json {
    use super::ScenarioError;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        /// Field order is preserved (useful for error paths).
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn kind(&self) -> &'static str {
            match self {
                Json::Null => "null",
                Json::Bool(_) => "a bool",
                Json::Num(_) => "a number",
                Json::Str(_) => "a string",
                Json::Arr(_) => "an array",
                Json::Obj(_) => "an object",
            }
        }
    }

    pub fn parse(src: &str) -> Result<Json, ScenarioError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: impl Into<String>) -> ScenarioError {
            let mut line = 1;
            let mut col = 1;
            for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
                if b == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            ScenarioError::Json {
                line,
                col,
                msg: msg.into(),
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ScenarioError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(format!("expected `{}`", b as char)))
            }
        }

        fn value(&mut self) -> Result<Json, ScenarioError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
                None => Err(self.err("unexpected end of input")),
            }
        }

        fn literal(&mut self, word: &str, v: Json) -> Result<Json, ScenarioError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err(format!("expected `{word}`")))
            }
        }

        fn object(&mut self) -> Result<Json, ScenarioError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(self.err("expected `,` or `}` in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, ScenarioError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(self.err("expected `,` or `]` in array")),
                }
            }
        }

        fn string(&mut self) -> Result<String, ScenarioError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.pos + 5 > self.bytes.len() {
                                    return Err(self.err("truncated \\u escape"));
                                }
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .ok()
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or_else(|| self.err("bad \\u escape"))?;
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(self.err("bad escape sequence")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is &str, so
                        // boundaries are valid).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("peeked");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, ScenarioError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    const COUNTER: &str = r#"
        global cts = new Array<<32>>(8);
        memop plus(int m, int x) { return m + x; }
        event pkt(int idx);
        event done();
        handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
    "#;

    fn prog() -> CheckedProgram {
        parse_and_check(COUNTER).expect("counter checks")
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let j = json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\n\"y\""}, "d": true}"#).unwrap();
        let json::Json::Obj(fields) = &j else {
            panic!()
        };
        assert_eq!(fields.len(), 3);
        let json::Json::Arr(items) = &fields[0].1 else {
            panic!()
        };
        assert_eq!(items[1], json::Json::Num(2.5));
    }

    #[test]
    fn malformed_json_reports_position() {
        let err = Scenario::from_json("{\n  \"name\": \"x\",\n  oops\n}").unwrap_err();
        let ScenarioError::Json { line, col, .. } = err else {
            panic!("want Json error, got {err:?}")
        };
        assert_eq!(line, 3);
        assert!(col >= 3, "col {col}");
    }

    #[test]
    fn unknown_field_is_a_schema_error_with_path() {
        let err = Scenario::from_json(r#"{"net": {"switchez": 3}}"#).unwrap_err();
        let ScenarioError::Schema { path, msg } = err else {
            panic!()
        };
        assert_eq!(path, "$.net");
        assert!(msg.contains("switchez"), "{msg}");
    }

    #[test]
    fn minimal_scenario_defaults() {
        let sc = Scenario::from_json(r#"{"name": "t"}"#).unwrap();
        assert_eq!(sc.switches, vec![1]);
        assert_eq!(sc.link_latency_ns, 1_000);
        assert_eq!(sc.engine, Engine::Sequential);
        assert_eq!(sc.max_events, 1_000_000);
        assert_eq!(sc.max_time_ns, u64::MAX);
    }

    #[test]
    fn mesh_shorthand_and_engine_object() {
        let sc = Scenario::from_json(
            r#"{"net": {"switches": 4},
                "engine": {"kind": "sharded", "workers": 2, "epoch_ns": 500}}"#,
        )
        .unwrap();
        assert_eq!(sc.switches, vec![1, 2, 3, 4]);
        assert_eq!(
            sc.engine,
            Engine::Sharded {
                workers: 2,
                epoch_ns: 500
            }
        );
    }

    #[test]
    fn unknown_event_name_is_structured() {
        let sc = Scenario::from_json(
            r#"{"events": [{"time_ns": 0, "switch": 1, "event": "nope", "args": []}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        let ScenarioError::Validate { path, msg } = err else {
            panic!()
        };
        assert_eq!(path, "$.events[0].event");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn out_of_range_switch_id_is_structured() {
        let sc = Scenario::from_json(
            r#"{"net": {"switches": 2},
                "events": [{"time_ns": 0, "switch": 7, "event": "pkt", "args": [1]}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == "$.events[0].switch"),
            "{err:?}"
        );
    }

    #[test]
    fn bad_arity_and_bad_index_are_structured() {
        let sc = Scenario::from_json(
            r#"{"events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1, 2]}]}"#,
        )
        .unwrap();
        assert!(matches!(
            sc.validate(&prog()).unwrap_err(),
            ScenarioError::Validate { .. }
        ));
        let sc = Scenario::from_json(
            r#"{"init": [{"switch": 1, "array": "cts", "index": 99, "value": 1}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == "$.init[0].index"),
            "{err:?}"
        );
    }

    #[test]
    fn run_reports_structured_mismatches() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "count",
                "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [3]},
                           {"time_ns": 100, "switch": 1, "event": "pkt", "args": [3]}],
                "expect": {"handled": 2,
                           "per_event": {"done": 1},
                           "arrays": [{"switch": 1, "array": "cts", "index": 3, "value": 9}]}}"#,
        )
        .unwrap();
        let report = run_scenario(&p, &sc, None, None).unwrap();
        assert!(!report.passed());
        assert_eq!(report.mismatches.len(), 2, "{:?}", report.mismatches);
        assert!(report.mismatches.contains(&Mismatch::Array {
            switch: 1,
            array: "cts".into(),
            index: 3,
            want: 9,
            got: 2
        }));
        assert!(report.mismatches.contains(&Mismatch::Count {
            what: "event:done".into(),
            want: 1,
            got: 0
        }));
        let j = report.to_json();
        assert!(j.contains("\"ok\":false"), "{j}");
        assert!(j.contains("\"kind\":\"array\""), "{j}");
    }

    #[test]
    fn passing_scenario_has_empty_mismatches() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "count",
                "init": [{"switch": 1, "array": "cts", "index": 0, "value": 5}],
                "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [3]}],
                "expect": {"handled": 1,
                           "arrays": [{"switch": 1, "array": "cts", "values": [5,0,0,1,0,0,0,0]}]}}"#,
        )
        .unwrap();
        let report = run_scenario(&p, &sc, None, None).unwrap();
        assert!(report.passed(), "{:?}", report.mismatches);
        assert!(report.to_json().contains("\"ok\":true"));
    }

    #[test]
    fn failure_schedule_drops_and_recovers() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "fail",
                "net": {"switches": 2},
                "events": [{"time_ns": 0,    "switch": 2, "event": "pkt", "args": [1]},
                           {"time_ns": 2000, "switch": 2, "event": "pkt", "args": [1]},
                           {"time_ns": 9000, "switch": 2, "event": "pkt", "args": [2]}],
                "failures": [{"time_ns": 1000, "switch": 2, "action": "fail"},
                             {"time_ns": 5000, "switch": 2, "action": "recover"}],
                "expect": {"handled": 2, "dropped": 1,
                           "arrays": [{"switch": 2, "array": "cts", "index": 1, "value": 0},
                                      {"switch": 2, "array": "cts", "index": 2, "value": 1}]}}"#,
        )
        .unwrap();
        let report = run_scenario(&p, &sc, None, None).unwrap();
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn engine_override_wins_and_matches() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "x", "net": {"switches": 3},
                "events": [{"time_ns": 0, "switch": 2, "event": "pkt", "args": [1]}]}"#,
        )
        .unwrap();
        let seq = run_scenario(&p, &sc, None, None).unwrap();
        let sh = run_scenario(
            &p,
            &sc,
            Some(Engine::Sharded {
                workers: 2,
                epoch_ns: 0,
            }),
            None,
        )
        .unwrap();
        assert_eq!(seq.engine, "sequential");
        assert_eq!(sh.engine, "sharded");
        assert_eq!(seq.stats, sh.stats);
    }

    #[test]
    fn exec_override_and_field_select_bytecode() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "bc", "exec": "bytecode",
                "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [3]}],
                "expect": {"arrays": [{"switch": 1, "array": "cts", "index": 3, "value": 1}]}}"#,
        )
        .unwrap();
        assert_eq!(sc.exec, ExecMode::Bytecode);
        let bc = run_scenario(&p, &sc, None, None).unwrap();
        assert_eq!(bc.exec, "bytecode");
        assert!(bc.passed(), "{:?}", bc.mismatches);
        assert!(bc.to_json().contains("\"exec\":\"bytecode\""));
        let ast = run_scenario(&p, &sc, None, Some(ExecMode::Ast)).unwrap();
        assert_eq!(ast.exec, "ast");
        assert_eq!(ast.state_digest, bc.state_digest);
        assert_eq!(ast.stats, bc.stats);

        let err = Scenario::from_json(r#"{"exec": "jit"}"#).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Schema { path, .. } if path == "$.exec"),
            "{err:?}"
        );
    }

    #[test]
    fn opt_field_and_override_select_the_level() {
        // Unspecified: the full pipeline.
        let sc = Scenario::from_json(r#"{"name": "d"}"#).unwrap();
        assert_eq!(sc.opt, OptLevel::O2);
        // Authored level flows into the config and the report.
        let sc = Scenario::from_json(
            r#"{"name": "o1", "exec": "bytecode", "opt": 1,
                "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [3]}]}"#,
        )
        .unwrap();
        assert_eq!(sc.opt, OptLevel::O1);
        assert_eq!(sc.net_config(None, None, None).opt, OptLevel::O1);
        let report = run_scenario(&prog(), &sc, None, None).unwrap();
        assert_eq!(report.opt, "1");
        assert!(
            report.to_json().contains("\"opt\":1"),
            "{}",
            report.to_json()
        );
        // The CLI override wins.
        let report = run_scenario_with(
            &prog(),
            &sc,
            &SimOptions {
                opt: Some(OptLevel::O0),
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.opt, "0");
        // Out-of-range and non-numeric levels are schema errors at $.opt.
        for bad in [r#"{"opt": 3}"#, r#"{"opt": "two"}"#] {
            let err = Scenario::from_json(bad).unwrap_err();
            assert!(
                matches!(&err, ScenarioError::Schema { path, .. } if path == "$.opt"),
                "{err:?}"
            );
        }
    }

    #[test]
    fn oversized_init_value_is_a_structured_error() {
        // Silent masking used to hide this; now the loader points at the
        // exact field.
        let sc = Scenario::from_json(
            r#"{"init": [{"switch": 1, "array": "cts", "index": 0, "value": 4294967296}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        let ScenarioError::Validate { path, msg } = &err else {
            panic!("want Validate, got {err:?}")
        };
        assert_eq!(path, "$.init[0].value");
        assert!(msg.contains("32-bit"), "{msg}");
        // The maximum representable value is still fine.
        let sc = Scenario::from_json(
            r#"{"init": [{"switch": 1, "array": "cts", "index": 0, "value": 4294967295}]}"#,
        )
        .unwrap();
        sc.validate(&prog()).unwrap();
    }

    #[test]
    fn generator_schema_errors_carry_paths() {
        for (body, want_path, want_msg) in [
            (
                r#"{"generators": [{"event": "pkt", "count": 5}]}"#,
                "$.generators[0]",
                "rate",
            ),
            (
                r#"{"generators": [{"event": "pkt", "rate_eps": 100}]}"#,
                "$.generators[0]",
                "unbounded",
            ),
            (
                r#"{"generators": [{"event": "pkt", "rate_eps": 100, "interval_ns": 5, "count": 1}]}"#,
                "$.generators[0]",
                "not both",
            ),
            (
                r#"{"generators": [{"event": "pkt", "rate_eps": 100, "count": 1,
                    "args": [{"uniform": [9, 2]}]}]}"#,
                "$.generators[0].args[0].uniform",
                "empty range",
            ),
            (
                r#"{"generators": [{"event": "pkt", "rate_eps": 100, "count": 1,
                    "args": [{"zipf": {"n": 0}}]}]}"#,
                "$.generators[0].args[0].zipf.n",
                "at least one",
            ),
            (
                r#"{"generators": [{"name": "a", "event": "pkt", "rate_eps": 1, "count": 1},
                                   {"name": "a", "event": "pkt", "rate_eps": 1, "count": 1}]}"#,
                "$.generators[1].name",
                "duplicate",
            ),
            (
                r#"{"generators": [{"event": "pkt", "rate_eps": 100, "count": 1,
                    "phases": [{"at_ns": 5, "rate_eps": 1}, {"at_ns": 5, "rate_eps": 2}]}]}"#,
                "$.generators[0].phases",
                "strictly increasing",
            ),
        ] {
            let err = Scenario::from_json(body).unwrap_err();
            let ScenarioError::Schema { path, msg } = &err else {
                panic!("{body}: want Schema, got {err:?}")
            };
            assert_eq!(path, want_path, "{body}: {msg}");
            assert!(msg.contains(want_msg), "{body}: {msg}");
        }
    }

    #[test]
    fn generator_validation_resolves_against_the_program() {
        // Unknown event.
        let sc = Scenario::from_json(
            r#"{"generators": [{"event": "nope", "rate_eps": 10, "count": 1}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == "$.generators[0].event"),
            "{err:?}"
        );
        // Wrong arity.
        let sc = Scenario::from_json(
            r#"{"generators": [{"event": "pkt", "rate_eps": 10, "count": 1, "args": [1, 2]}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == "$.generators[0].args"),
            "{err:?}"
        );
        // Switch outside the topology.
        let sc = Scenario::from_json(
            r#"{"generators": [{"event": "pkt", "switch": 9, "rate_eps": 10,
                                "count": 1, "args": [1]}]}"#,
        )
        .unwrap();
        let err = sc.validate(&prog()).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == "$.generators[0].switch"),
            "{err:?}"
        );
    }

    #[test]
    fn generator_scenario_runs_and_reports_per_source_counts() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "gen",
                "seed": 3,
                "generators": [
                  {"name": "hot", "event": "pkt", "rate_eps": 1000000, "count": 120,
                   "args": [{"zipf": {"n": 8, "s": 1.3}}]},
                  {"name": "sweep", "event": "pkt", "rate_eps": 500000, "count": 80,
                   "args": [{"seq": 8}]}],
                "expect": {"handled": 200, "per_event": {"pkt": 200}}}"#,
        )
        .unwrap();
        let report = run_scenario(&p, &sc, None, None).unwrap();
        assert!(report.passed(), "{:?}", report.mismatches);
        assert_eq!(
            report.gens,
            vec![("hot".to_string(), 120), ("sweep".to_string(), 80)]
        );
        let j = report.to_json();
        assert!(j.contains("\"name\":\"hot\",\"injected\":120"), "{j}");
        assert!(report.render().contains("generators: hot=120, sweep=80"));
        // Injections arrived exactly once each through the lazy path.
        let injected: u64 = report.gens.iter().map(|(_, n)| n).sum();
        assert_eq!(injected, report.stats.processed);
    }

    #[test]
    fn workload_overrides_scale_reseed_and_skip_expectations() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "gen",
                "generators": [
                  {"name": "a", "event": "pkt", "rate_eps": 1000000, "count": 30,
                   "args": [{"uniform": [0, 7]}]},
                  {"name": "b", "event": "pkt", "rate_eps": 1000000, "count": 10,
                   "args": [{"uniform": [0, 7]}]}],
                "expect": {"handled": 40}}"#,
        )
        .unwrap();
        // --events below the authored total: the stream stops early.
        let capped = run_scenario_with(
            &p,
            &sc,
            &SimOptions {
                events: Some(12),
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(capped.stats.handled, 12);
        assert!(
            capped.passed(),
            "expectations must be skipped under --events: {:?}",
            capped.mismatches
        );
        // --events above it: counts scale proportionally (3:1 ratio kept).
        let scaled = run_scenario_with(
            &p,
            &sc,
            &SimOptions {
                events: Some(400),
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(scaled.stats.handled, 400);
        assert_eq!(scaled.gens[0].1, 300, "{:?}", scaled.gens);
        assert_eq!(scaled.gens[1].1, 100, "{:?}", scaled.gens);
        // --seed changes the stream but not the volume; expectations are
        // skipped there too.
        let reseeded = run_scenario_with(
            &p,
            &sc,
            &SimOptions {
                seed: Some(99),
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(reseeded.stats.handled, 40);
        assert!(reseeded.passed());
        let baseline = run_scenario(&p, &sc, None, None).unwrap();
        assert_ne!(
            baseline.state_digest, reseeded.state_digest,
            "a different seed must spread keys differently"
        );
    }

    #[test]
    fn events_scaling_skips_window_bounded_generators_but_still_hits_target() {
        // `a` is count-bounded and scales; `b` is stop_ns-bounded and
        // keeps its window. The total cap still lands exactly on target.
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"generators": [
                  {"name": "a", "event": "pkt", "interval_ns": 100, "count": 50,
                   "args": [{"uniform": [0, 7]}]},
                  {"name": "b", "event": "pkt", "interval_ns": 100, "stop_ns": 100000,
                   "args": [{"uniform": [0, 7]}]}]}"#,
        )
        .unwrap();
        let report = run_scenario_with(
            &p,
            &sc,
            &SimOptions {
                events: Some(800),
                ..SimOptions::default()
            },
        )
        .unwrap();
        let injected: u64 = report.gens.iter().map(|(_, n)| n).sum();
        assert_eq!(injected, 800, "{:?}", report.gens);
        assert!(
            report.gens[0].1 > 50,
            "counted gen must scale: {:?}",
            report.gens
        );
    }

    #[test]
    fn events_target_unreachable_through_windows_is_a_loud_error() {
        // Every generator is window-bounded, so scaling cannot stretch
        // the stream to the target; the run must fail, not silently
        // deliver a smaller workload.
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"generators": [{"event": "pkt", "interval_ns": 100, "stop_ns": 1000,
                                "args": [{"uniform": [0, 7]}]}]}"#,
        )
        .unwrap();
        let err = run_scenario_with(
            &p,
            &sc,
            &SimOptions {
                events: Some(500),
                ..SimOptions::default()
            },
        )
        .unwrap_err();
        let SimRunError::Scenario(ScenarioError::Validate { path, msg }) = &err else {
            panic!("want a Validate error, got {err:?}")
        };
        assert_eq!(path, "$.generators");
        assert!(msg.contains("supplied only"), "{msg}");
    }

    #[test]
    fn workload_overrides_without_generators_are_rejected() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]}]}"#,
        )
        .unwrap();
        for ov in [
            SimOptions {
                events: Some(10),
                ..SimOptions::default()
            },
            SimOptions {
                seed: Some(1),
                ..SimOptions::default()
            },
        ] {
            let err = run_scenario_with(&p, &sc, &ov).unwrap_err();
            assert!(
                matches!(
                    &err,
                    SimRunError::Scenario(ScenarioError::Validate { path, .. })
                        if path == "$.generators"
                ),
                "{err:?}"
            );
        }
    }

    #[test]
    fn standalone_generator_spec_parses_for_cli_gen_flag() {
        let one = Scenario::parse_generators(
            r#"{"event": "pkt", "rate_eps": 10, "count": 3, "args": [1]}"#,
        )
        .unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name, "gen0");
        let many = Scenario::parse_generators(
            r#"[{"event": "pkt", "rate_eps": 10, "count": 3, "args": [1]},
                {"name": "x", "event": "pkt", "interval_ns": 5, "stop_ns": 100, "args": [2]}]"#,
        )
        .unwrap();
        assert_eq!(many.len(), 2);
        assert_eq!(many[1].name, "x");
        assert!(Scenario::parse_generators("42").is_err());
    }

    #[test]
    fn runtime_fault_names_the_offending_injection() {
        let p = prog();
        let sc = Scenario::from_json(
            r#"{"name": "oob",
                "events": [{"time_ns": 40, "switch": 1, "event": "pkt", "args": [99]}]}"#,
        )
        .unwrap();
        let err = run_scenario(&p, &sc, None, None).unwrap_err();
        let SimRunError::Runtime(e) = err else {
            panic!("want runtime fault, got {err:?}")
        };
        let at = e.at.as_ref().expect("fault location");
        assert_eq!((at.time_ns, at.switch, at.event.as_str()), (40, 1, "pkt"));
        assert_eq!(at.origin, None, "an injected event has no origin switch");
        let msg = e.to_string();
        assert!(msg.contains("`pkt` on switch 1 at 40ns"), "{msg}");
        assert!(e.to_json().contains("\"time_ns\":40"), "{}", e.to_json());
    }
}
