//! A resumable simulation session: the one-shot scenario runner carved
//! into open / ingest / advance / query / snapshot / restore / swap /
//! drain steps, so a long-lived service ([`crate::serve`]) can own a
//! world across many requests.
//!
//! `run_scenario_with` is implemented as `SimSession::open` + `drain`,
//! which makes the core invariant hold by construction: a served session
//! that advances in any number of steps — with a `snapshot`/`restore`
//! round-trip anywhere in between — produces state, stats, trace, and
//! metrics digests bit-identical to the equivalent one-shot run, under
//! both engines. The engines already pause exactly at a time horizon
//! (events beyond it stay queued, keys are materialization-independent),
//! so segmentation is free; sessions just expose it.

use crate::machine::{Interp, SwapStats};
use crate::metrics::Metrics;
use crate::scenario::{
    check_expectations, check_metric_expectations, digest_state, FailureAction, FailureKind,
    Injection, Scenario, ScenarioError, SimOptions, SimReport, SimRunError,
};
use crate::snap;
use crate::workload::{GenSpec, Workload};
use lucid_check::CheckedProgram;
use std::sync::Arc;
use std::time::Instant;

/// Snapshot container magic: wraps the world bytes with the session
/// cursor and the program/scenario fingerprints a restore must match.
const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"LUCSNAP\x01");

/// FNV-1a over a byte stream (the same construction as the state digest).
fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of a program's simulation-relevant interface: event names
/// and arities plus global geometry, in declaration order. Two programs
/// with the same fingerprint produce interchangeable snapshots.
fn program_fingerprint(prog: &CheckedProgram) -> u64 {
    let mut bytes = Vec::new();
    for e in &prog.info.events {
        bytes.extend_from_slice(e.name.as_bytes());
        bytes.push(0);
        bytes.push(e.params.len() as u8);
    }
    bytes.push(1);
    for g in &prog.info.globals {
        bytes.extend_from_slice(g.name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&g.cell_width.to_le_bytes());
        bytes.extend_from_slice(&g.len.to_le_bytes());
    }
    fnv(bytes)
}

/// Fingerprint of the scenario shape a session was opened from: name,
/// topology, limits, seed, and the sizes of its authored sections.
fn scenario_fingerprint(sc: &Scenario) -> u64 {
    let mut w = snap::Writer::new();
    w.str(&sc.name);
    w.u64s(&sc.switches);
    w.u64(sc.link_latency_ns);
    w.u64(sc.recirc_latency_ns);
    w.u64(sc.max_events);
    w.u64(sc.max_time_ns);
    w.u64(sc.seed);
    w.u64(sc.init.len() as u64);
    w.u64(sc.events.len() as u64);
    w.u64(sc.generators.len() as u64);
    w.u64(sc.failures.len() as u64);
    fnv(w.buf)
}

/// A cheap, deterministic view of a live session (the serve `query`
/// verb): where the clock is, what has been processed, and the two
/// digests the bit-identity gates compare.
#[derive(Debug, Clone)]
pub struct SessionStatus {
    /// Virtual clock, nanoseconds.
    pub now_ns: u64,
    /// Events still queued in the world.
    pub pending: usize,
    /// Whether the attached workload still has events to emit.
    pub source_pending: bool,
    /// Events processed so far.
    pub processed: u64,
    pub handled: u64,
    pub dropped: u64,
    /// FNV-1a digest of every switch's current array state.
    pub state_digest: u64,
    /// Digest of the per-class latency metrics accumulated so far.
    pub metrics_digest: u64,
}

/// A long-lived simulation world: a compiled program, a scenario's
/// topology and workload, and an [`Interp`] that advances on demand
/// instead of draining in one breath.
pub struct SimSession {
    prog: Arc<CheckedProgram>,
    sc: Scenario,
    opts: SimOptions,
    sim: Interp,
    /// Fuel ceiling (raised by an `events` override, like the one-shot
    /// runner).
    max_events: u64,
    /// The authored fault schedule, sorted by time; `applied` is the
    /// cursor of actions already executed (or skipped past the horizon).
    actions: Vec<FailureAction>,
    applied: usize,
    /// Per-source report names, in slot order (grows on generator attach).
    gen_names: Vec<String>,
    /// Whether the authored `expect`/`metrics` blocks still describe this
    /// run. Overriding the workload (seed/events), ingesting extra
    /// events, attaching generators, or swapping the program all void
    /// them; the report then carries stats and digests only.
    check_expect: bool,
    /// Busy wall-clock seconds accumulated across `advance` calls.
    wall_s: f64,
    engine: &'static str,
    exec: &'static str,
    opt: &'static str,
}

impl SimSession {
    /// Validate `sc` against `prog` and build the world: resolve the
    /// engine/exec/opt/workers configuration, compile the generator
    /// workload, apply `init` pokes, and schedule the authored events.
    /// Nothing runs until [`SimSession::advance`] or
    /// [`SimSession::drain`].
    pub fn open(
        prog: &CheckedProgram,
        sc: &Scenario,
        opts: &SimOptions,
    ) -> Result<SimSession, SimRunError> {
        SimSession::open_arc(Arc::new(prog.clone()), sc, opts)
    }

    /// [`SimSession::open`] without cloning an already-shared program.
    pub fn open_arc(
        prog: Arc<CheckedProgram>,
        sc: &Scenario,
        opts: &SimOptions,
    ) -> Result<SimSession, SimRunError> {
        let t0 = Instant::now();
        sc.validate(&prog)?;
        let cfg = opts.resolve(sc);
        let engine = cfg.engine.label();
        let exec = cfg.exec.label();
        let opt = cfg.opt.label();
        let mut sim = Interp::from_arc(Arc::clone(&prog), cfg);
        sim.set_record_trace(opts.record_trace.unwrap_or(true));

        let gen_names: Vec<String> = sc.generators.iter().map(|g| g.name.clone()).collect();
        if sc.generators.is_empty() {
            // Workload overrides against a generator-less scenario would
            // be silent no-ops; surface the mismatch instead.
            if opts.events.is_some() || opts.seed.is_some() {
                return Err(ScenarioError::validate(
                    "$.generators",
                    "--seed/--events override the generator workload, \
                     but this scenario has no `generators` section",
                )
                .into());
            }
        } else {
            let seed = opts.seed.unwrap_or(sc.seed);
            let mut specs = sc.generators.clone();
            if let Some(target) = opts.events {
                // Scaling up: stretch authored `count` caps proportionally
                // so the stream can actually reach the target. Generators
                // bounded only by `stop_ns` keep their windows and are left
                // out of the proportion (the total cap still trims the
                // stream at exactly `target`).
                let total: u64 = specs.iter().filter_map(|g| g.count).sum();
                if total > 0 && target > total {
                    for g in &mut specs {
                        if let Some(c) = g.count {
                            let scaled = (c as u128 * target as u128).div_ceil(total as u128);
                            g.count = Some(scaled as u64);
                        }
                    }
                }
            }
            let gens = specs
                .iter()
                .enumerate()
                .map(|(i, g)| g.compile(&prog, seed, i))
                .collect();
            sim.set_source(Box::new(Workload::new(gens, opts.events)));
        }
        let max_events = match opts.events {
            Some(n) => sc.max_events.max(n.saturating_mul(4)),
            None => sc.max_events,
        };

        for p in &sc.init {
            sim.poke(p.switch, &p.array, p.index as usize, p.value);
        }
        for inj in &sc.events {
            sim.schedule(inj.switch, inj.time_ns, &inj.event, &inj.args)?;
        }

        let mut actions = sc.failures.clone();
        actions.sort_by_key(|a| a.time_ns);
        let check_expect =
            sc.generators.is_empty() || (opts.seed.is_none() && opts.events.is_none());
        Ok(SimSession {
            prog,
            sc: sc.clone(),
            opts: *opts,
            sim,
            max_events,
            actions,
            applied: 0,
            gen_names,
            check_expect,
            wall_s: t0.elapsed().as_secs_f64(),
            engine,
            exec,
            opt,
        })
    }

    /// The program currently installed (changes across [`SimSession::swap`]).
    pub fn program(&self) -> &Arc<CheckedProgram> {
        &self.prog
    }

    /// The scenario this session was opened from.
    pub fn scenario(&self) -> &Scenario {
        &self.sc
    }

    /// The resolved `(engine, exec, opt)` labels this session runs with.
    pub fn labels(&self) -> (&'static str, &'static str, &'static str) {
        (self.engine, self.exec, self.opt)
    }

    /// Direct read access to the world (arrays, stats, trace, metrics).
    pub fn world(&self) -> &Interp {
        &self.sim
    }

    /// Advance the world to `to_ns` (clamped to the scenario's
    /// `max_time_ns`): apply every fault action due by then, run the
    /// engines up to the horizon, and pause with everything later still
    /// queued. Advancing in any number of steps is bit-identical to one
    /// step — both engines pause exactly at a time horizon, and the
    /// fault schedule already segments one-shot runs the same way.
    pub fn advance(&mut self, to_ns: u64) -> Result<(), SimRunError> {
        let t0 = Instant::now();
        let res = self.advance_inner(to_ns.min(self.sc.max_time_ns));
        self.wall_s += t0.elapsed().as_secs_f64();
        res
    }

    fn advance_inner(&mut self, to: u64) -> Result<(), SimRunError> {
        let fuel = |sim: &Interp, cap: u64| cap.saturating_sub(sim.stats.processed);
        while self.applied < self.actions.len() {
            let a = self.actions[self.applied].clone();
            let horizon = (a.time_ns - 1).min(self.sc.max_time_ns);
            if horizon > to {
                break;
            }
            self.sim.run(fuel(&self.sim, self.max_events), horizon)?;
            if a.time_ns > self.sc.max_time_ns {
                // Actions are sorted: every remaining one is also past
                // the scenario horizon and never applies.
                self.applied = self.actions.len();
                break;
            }
            match a.kind {
                FailureKind::Fail => self.sim.fail_switch(a.switch),
                FailureKind::Recover => self.sim.recover_switch(a.switch),
            }
            self.applied += 1;
        }
        self.sim.run(fuel(&self.sim, self.max_events), to)?;
        Ok(())
    }

    /// Inject a batch of external events (the serve `ingest` verb). Each
    /// is scheduled exactly like an authored `events` entry; injecting
    /// events the one-shot scenario does not have voids its authored
    /// expectations (digests and stats still report).
    pub fn ingest(&mut self, batch: &[Injection]) -> Result<(), SimRunError> {
        for inj in batch {
            self.sim
                .schedule(inj.switch, inj.time_ns, &inj.event, &inj.args)?;
        }
        if !batch.is_empty() {
            self.check_expect = false;
        }
        Ok(())
    }

    /// Attach a generator spec mid-run, compiled with the session's
    /// effective seed. Returns its source slot.
    pub fn attach_generator(&mut self, spec: &GenSpec) -> Result<usize, SimRunError> {
        let seed = self.opts.seed.unwrap_or(self.sc.seed);
        let slot = self
            .sim
            .attach_generator(spec, seed)
            .map_err(|msg| ScenarioError::validate("$.generators", msg))?;
        self.gen_names.push(spec.name.clone());
        self.check_expect = false;
        Ok(slot)
    }

    /// The session's current status and digests (the serve `query` verb).
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            now_ns: self.sim.now_ns,
            pending: self.sim.pending(),
            source_pending: self.sim.source_pending(),
            processed: self.sim.stats.processed,
            handled: self.sim.stats.handled,
            dropped: self.sim.stats.dropped,
            state_digest: digest_state(&self.prog, &self.sim, &self.sc.switches),
            metrics_digest: self.sim.metrics().digest(),
        }
    }

    /// Encode the full world — session cursor included — into the
    /// deterministic snapshot format (see `docs/serve-protocol.md`).
    /// Identical world states encode to identical bytes.
    pub fn snapshot(&self) -> Result<Vec<u8>, SimRunError> {
        let mut w = snap::Writer::new();
        w.u64(SNAP_MAGIC);
        w.u64(program_fingerprint(&self.prog));
        w.u64(scenario_fingerprint(&self.sc));
        w.u64(self.applied as u64);
        w.bool(self.check_expect);
        w.u64(self.gen_names.len() as u64);
        for name in &self.gen_names {
            w.str(name);
        }
        let mut world = Vec::new();
        self.sim
            .save_world(&mut world)
            .map_err(SimRunError::Snapshot)?;
        w.bytes(&world);
        Ok(w.buf)
    }

    /// Overwrite this session's world from snapshot bytes. The session
    /// must have been opened from the same scenario, options, and an
    /// interface-compatible program — fingerprints are checked before
    /// anything is touched. Corrupted bytes yield a structured
    /// [`SimRunError::Snapshot`], never a panic.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SimRunError> {
        self.restore_inner(bytes)
            .map_err(|e| SimRunError::Snapshot(e.to_string()))
    }

    fn restore_inner(&mut self, bytes: &[u8]) -> Result<(), snap::SnapError> {
        let mut r = snap::Reader::new(bytes);
        let magic = r.u64()?;
        if magic != SNAP_MAGIC {
            return Err(r.err(format!("bad magic {magic:#018x}")));
        }
        let prog_fp = r.u64()?;
        if prog_fp != program_fingerprint(&self.prog) {
            return Err(r.err(
                "snapshot was taken under a different program (event or array interface differs)",
            ));
        }
        let sc_fp = r.u64()?;
        if sc_fp != scenario_fingerprint(&self.sc) {
            return Err(r.err("snapshot was taken from a different scenario"));
        }
        let applied = r.u64()? as usize;
        if applied > self.actions.len() {
            return Err(r.err(format!(
                "snapshot applied {applied} fault actions, scenario has {}",
                self.actions.len()
            )));
        }
        let check_expect = r.bool()?;
        let n = r.len(8, "generator names")?;
        let mut gen_names = Vec::with_capacity(n);
        for _ in 0..n {
            gen_names.push(r.str()?);
        }
        let world = r.bytes()?;
        r.expect_end()?;
        self.sim
            .load_world(world)
            .map_err(|msg| snap::SnapError { offset: 0, msg })?;
        self.applied = applied;
        self.check_expect = check_expect;
        self.gen_names = gen_names;
        Ok(())
    }

    /// Hot-swap the running program for a new epoch. State carries over
    /// where compatible (see [`Interp::swap_program`]); the caller has
    /// already typechecked `new` — a program that fails typecheck never
    /// reaches this method. Authored expectations are voided.
    pub fn swap(&mut self, new: Arc<CheckedProgram>) -> SwapStats {
        let stats = self.sim.swap_program(Arc::clone(&new));
        self.prog = new;
        self.check_expect = false;
        stats
    }

    /// Run the world to completion — the scenario horizon, with every
    /// remaining fault action applied — and assemble the final report.
    /// `open` + `drain` with no steps in between *is* the one-shot
    /// runner.
    pub fn drain(&mut self) -> Result<SimReport, SimRunError> {
        self.advance(u64::MAX)?;
        // `--events=N` promises exactly N injections; if the generators'
        // windows or the scenario horizon capped the stream short of
        // that, failing loudly beats a caller comparing digests of a
        // smaller run than it thinks it ran.
        if let Some(target) = self.opts.events {
            let injected: u64 = self.sim.source_counts().iter().sum();
            if injected < target {
                return Err(ScenarioError::validate(
                    "$.generators",
                    format!(
                        "--events asked for {target} injections but the generators \
                         supplied only {injected} (emission windows or the scenario \
                         horizon cap the stream)"
                    ),
                )
                .into());
            }
        }
        Ok(self.report())
    }

    /// Assemble a [`SimReport`] from the world as it stands (drained or
    /// not). Expectations are checked only while the session still runs
    /// the workload the author wrote them for.
    pub fn report(&self) -> SimReport {
        let mut mismatches = Vec::new();
        let metrics: Metrics = self.sim.metrics();
        if self.check_expect {
            check_expectations(&self.sim, &self.sc.expect, &mut mismatches);
            check_metric_expectations(&metrics, &self.sc.metrics, &mut mismatches);
        }
        let state_digest = digest_state(&self.prog, &self.sim, &self.sc.switches);
        let gens = self
            .gen_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.clone(),
                    self.sim.source_counts().get(i).copied().unwrap_or(0),
                )
            })
            .collect();
        SimReport {
            scenario: self.sc.name.clone(),
            engine: self.engine,
            exec: self.exec,
            opt: self.opt,
            switches: self.sc.switches.len(),
            sim_ns: self.sim.now_ns,
            wall_ms: self.wall_s * 1e3,
            events_per_sec: if self.wall_s > 0.0 {
                self.sim.stats.processed as f64 / self.wall_s
            } else {
                0.0
            },
            stats: self.sim.stats.clone(),
            state_digest,
            gens,
            metrics,
            mismatches,
        }
    }
}
