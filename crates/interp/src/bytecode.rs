//! Bytecode compilation and execution for the interpreter's hot path.
//!
//! The AST walker in [`machine`](crate::machine) is the reference
//! semantics: it re-clones handler bodies and threads a `HashMap` of
//! locals through every event. This module lowers each checked handler
//! once, at [`Interp`](crate::Interp) construction, into a compact
//! register bytecode that a flat dispatch loop executes with no
//! allocation beyond what the program itself asks for (event values,
//! printf lines). Selecting it is [`ExecMode::Bytecode`] on
//! [`NetConfig`](crate::NetConfig); results are bit-identical to the
//! walker — state, statistics, trace, and printf output — which the
//! differential property suite in `tests/tests/differential.rs` and the
//! `fig_sim_throughput` bench both enforce.
//!
//! # The ISA
//!
//! * **Registers** (`r0`, `r1`, ...) hold a 64-bit value *and its bit
//!   width*. The reference walker gives every integer a dynamic width
//!   (literals default to 32 bits regardless of what the checker
//!   inferred, binary operators take the wider operand, casts re-mask),
//!   so widths travel with values at runtime rather than being guessed
//!   at compile time — this is what makes the two engines agree bit for
//!   bit even on width-mixing programs.
//! * **Object slots** (`o0`, `o1`, ...) hold event values and multicast
//!   groups — things a register cannot.
//! * **Handlers** are straight-line code with forward jumps only (Lucid
//!   has no loops; iteration happens through `generate`). Handler
//!   parameters arrive pre-masked in `r0..rN`.
//! * **Functions are inlined per call site**, mirroring the checker's
//!   per-instantiation analysis: array-typed parameters resolve to
//!   concrete global ids at compile time, value parameters become
//!   registers, `return` becomes a jump to the inlined epilogue.
//!
//! Array lengths, cell widths, memop bodies, event signatures, group
//! memberships, and printf format strings live in per-program pools so
//! instructions stay small.

use crate::machine::{format_printf, Exec, InterpError, InterpFault, Key, Shard};
use crate::value::{lucid_hash, EventVal, Location, Value};
use lucid_check::{eval_memop, mask, CheckedProgram, GlobalId, MemopIr};
use lucid_frontend::ast::*;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Which executor runs handler bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tree-walk the checked AST — the reference semantics.
    #[default]
    Ast,
    /// Flat dispatch loop over compiled register bytecode.
    Bytecode,
}

impl ExecMode {
    /// Parse a CLI/scenario exec-mode name.
    pub fn parse(name: &str) -> Option<ExecMode> {
        match name {
            "ast" | "walker" => Some(ExecMode::Ast),
            "bytecode" | "bc" => Some(ExecMode::Bytecode),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Ast => "ast",
            ExecMode::Bytecode => "bytecode",
        }
    }
}

/// A register value: the payload and its current bit width (the same
/// pair [`Value::Int`] carries in the walker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rv {
    pub v: u64,
    pub w: u32,
}

impl Default for Rv {
    fn default() -> Self {
        Rv { v: 0, w: 32 }
    }
}

/// An object slot: an event value, a multicast group, or empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) enum Obj {
    #[default]
    None,
    Ev(EventVal),
    Group(Vec<u64>),
}

/// One printf argument: which register, and whether the walker would
/// have held a `bool` there (bools print as `true`/`false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrintArg {
    reg: u16,
    is_bool: bool,
}

/// One bytecode instruction. `dst`/`a`/`b`/... index registers; `obj`
/// fields index object slots; `gid`, `memop`, `group`, `fmt`, and
/// `event_id` index the per-program pools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `r[dst] = (imm, w)`.
    Const {
        dst: u16,
        imm: u64,
        w: u32,
    },
    /// `r[dst] = r[src]` (value and width).
    Mov {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(r[src], r[dst].w)` — assignment keeps the
    /// destination variable's width, as the walker does.
    StoreMasked {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = (r[src] != 0, 1)` — normalize to a boolean.
    BoolOf {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = (r[src] == 0, 1)` — logical not.
    Not {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(-r[src], r[src].w)`.
    Neg {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(!r[src], r[src].w)`.
    BitNot {
        dst: u16,
        src: u16,
    },
    /// Arithmetic/bitwise/shift op; result width is the wider operand's.
    Bin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Comparison; result is a boolean.
    Cmp {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `r[dst] = (mask(r[src], w), w)` — cast / typed-local write.
    MaskW {
        dst: u16,
        src: u16,
        w: u32,
    },
    /// `r[dst] = (hash<<w>>(args[0]; args[1..]), w)`.
    Hash {
        dst: u16,
        w: u32,
        args: Box<[u16]>,
    },
    Jmp {
        to: u32,
    },
    /// Jump when `r[cond] == 0`.
    Jz {
        cond: u16,
        to: u32,
    },
    /// Jump when `r[cond] != 0`.
    Jnz {
        cond: u16,
        to: u32,
    },
    /// Bounds-check `r[idx]` against array `gid` (faults exactly where
    /// the walker would, before any memop argument evaluates).
    ArrCheck {
        gid: u32,
        idx: u16,
    },
    /// `r[dst] = (cells[r[idx]], cell_w)`.
    ArrGet {
        dst: u16,
        gid: u32,
        idx: u16,
    },
    /// `cells[r[idx]] = mask(r[val], cell_w)`.
    ArrSet {
        gid: u32,
        idx: u16,
        val: u16,
    },
    /// `r[dst] = (mask(memop(cell, r[local]), cell_w), cell_w)`.
    ArrGetm {
        dst: u16,
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// `cells[r[idx]] = memop(cell, r[local])`.
    ArrSetm {
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// Parallel read-and-write through two memops.
    ArrUpdate {
        dst: u16,
        gid: u32,
        idx: u16,
        getop: u16,
        getarg: u16,
        setop: u16,
        setarg: u16,
    },
    /// `o[dst] = event_id(args...)` — args masked to parameter widths.
    MkEvent {
        dst: u16,
        event_id: u32,
        args: Box<[u16]>,
    },
    /// `o[dst] = o[src].clone()`.
    ObjCopy {
        dst: u16,
        src: u16,
    },
    /// `o[dst] = groups[group].clone()`.
    LoadGroup {
        dst: u16,
        group: u16,
    },
    /// `o[obj].delay_ns += r[us] * 1000` (events only; others pass).
    EvDelay {
        obj: u16,
        us: u16,
    },
    /// `o[obj].location = Switch(r[loc])`.
    EvLocate {
        obj: u16,
        loc: u16,
    },
    /// `o[obj].location = Group(o[group])`.
    EvMLocate {
        obj: u16,
        group: u16,
    },
    /// Emit `o[obj]` into the shard's schedule (consumes the slot).
    Generate {
        obj: u16,
    },
    /// `r[dst] = (switch_id, 32)`.
    LoadSelf {
        dst: u16,
    },
    /// `r[dst] = (mask(now_ns / 1000, 32), 32)`.
    LoadTime {
        dst: u16,
    },
    /// `r[dst] = (0, 32)` — `Sys.port()` is always 0 in the simulator.
    LoadPort {
        dst: u16,
    },
    /// Format `fmts[fmt]` with the given registers and record the line.
    Printf {
        fmt: u16,
        args: Box<[PrintArg]>,
    },
    /// End of handler.
    Halt,
}

/// How one handler parameter binds into its register at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamBind {
    /// `(raw, w)` — raw values arrive pre-masked from the scheduler.
    Int(u32),
    /// `(raw != 0, 1)` — the walker's `value_of(Ty::Bool, raw)`.
    Bool,
}

/// One handler's compiled body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerCode {
    event_id: usize,
    name: String,
    /// Parameter names, for the disassembly header.
    param_names: Vec<String>,
    binds: Vec<ParamBind>,
    nregs: usize,
    nobjs: usize,
    code: Vec<Instr>,
}

impl HandlerCode {
    pub fn instrs(&self) -> &[Instr] {
        &self.code
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ArrayMeta {
    name: String,
    len: u64,
    width: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EventMeta {
    name: String,
    widths: Box<[u32]>,
}

/// A whole checked program lowered to bytecode: per-event handler code
/// plus the pools instructions index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProg {
    /// Indexed by event id; `None` = declared event with no handler.
    handlers: Vec<Option<HandlerCode>>,
    arrays: Vec<ArrayMeta>,
    events: Vec<EventMeta>,
    memops: Vec<MemopIr>,
    groups: Vec<(String, Vec<u64>)>,
    fmts: Vec<String>,
}

impl CompiledProg {
    /// Lower every handler of a checked program.
    pub fn compile(prog: &CheckedProgram) -> CompiledProg {
        let arrays = prog
            .info
            .globals
            .iter()
            .map(|g| ArrayMeta {
                name: g.name.clone(),
                len: g.len,
                width: g.cell_width,
            })
            .collect();
        let events = prog
            .info
            .events
            .iter()
            .map(|e| EventMeta {
                name: e.name.clone(),
                widths: e
                    .params
                    .iter()
                    .map(|p| p.ty.int_width().unwrap_or(32))
                    .collect(),
            })
            .collect();
        let mut cp = CompiledProg {
            handlers: Vec::new(),
            arrays,
            events,
            memops: Vec::new(),
            groups: Vec::new(),
            fmts: Vec::new(),
        };
        // Event-id order keeps pool numbering (and the disassembly)
        // deterministic.
        for id in 0..prog.info.events.len() {
            let name = prog.info.events[id].name.clone();
            let code = prog
                .handler_body(&name)
                .map(|(params, body)| compile_handler(prog, &mut cp, id, &name, params, body));
            cp.handlers.push(code);
        }
        cp
    }

    /// The compiled code for an event, if it has a handler.
    pub fn handler(&self, event_id: usize) -> Option<&HandlerCode> {
        self.handlers.get(event_id).and_then(|h| h.as_ref())
    }

    fn memop_id(&mut self, m: &MemopIr) -> u16 {
        match self.memops.iter().position(|x| x.name == m.name) {
            Some(i) => i as u16,
            None => {
                self.memops.push(m.clone());
                (self.memops.len() - 1) as u16
            }
        }
    }

    fn group_id(&mut self, name: &str, members: &[u64]) -> u16 {
        match self.groups.iter().position(|(n, _)| n == name) {
            Some(i) => i as u16,
            None => {
                self.groups.push((name.to_string(), members.to_vec()));
                (self.groups.len() - 1) as u16
            }
        }
    }

    fn fmt_id(&mut self, fmt: &str) -> u16 {
        match self.fmts.iter().position(|f| f == fmt) {
            Some(i) => i as u16,
            None => {
                self.fmts.push(fmt.to_string());
                (self.fmts.len() - 1) as u16
            }
        }
    }
}

// ------------------------------------------------------------- compiler

/// What a variable name is bound to during compilation.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Reg {
        r: u16,
        is_bool: bool,
    },
    Obj(u16),
    /// An array-typed function parameter, resolved to its global.
    ArrayRef(GlobalId),
    /// A local bound to a void function call's "result".
    Void,
}

/// The result of compiling one expression.
#[derive(Debug, Clone, Copy)]
enum Val {
    Reg { r: u16, is_bool: bool, temp: bool },
    Obj { o: u16, temp: bool },
    Void,
}

/// Return-value plumbing for one inlined function activation.
struct RetCtx {
    slot: Slot,
    /// `Jmp` sites to patch to the inlined epilogue.
    jumps: Vec<usize>,
}

/// One activation frame: the handler itself, or an inlined function.
struct Frame {
    vars: HashMap<String, Slot>,
    /// `None` for the handler frame (its `return` halts).
    ret: Option<RetCtx>,
}

/// Register / object-slot allocator: a free list plus high-water mark.
#[derive(Default)]
struct Alloc {
    next: u16,
    free: Vec<u16>,
}

impl Alloc {
    fn get(&mut self) -> u16 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.next;
            self.next = self.next.checked_add(1).expect("register file overflow");
            r
        })
    }

    fn put(&mut self, r: u16) {
        self.free.push(r);
    }
}

struct Cc<'p> {
    prog: &'p CheckedProgram,
    pools: &'p mut CompiledProg,
    code: Vec<Instr>,
    regs: Alloc,
    objs: Alloc,
    frames: Vec<Frame>,
    /// Array-typed parameters of every live (inlined) activation, in
    /// binding order — the compile-time image of the walker's dynamic
    /// `cx.array_params` stack. Array-position names resolve through
    /// this stack (innermost first), *not* through lexical frames,
    /// because the walker is the semantics of record.
    array_stack: Vec<(String, GlobalId)>,
    /// Inlining depth guard (the checker rules out recursion; this turns
    /// a hypothetical checker bug into a clean panic, not a hang).
    depth: usize,
}

fn compile_handler(
    prog: &CheckedProgram,
    pools: &mut CompiledProg,
    event_id: usize,
    name: &str,
    params: &[Param],
    body: &Block,
) -> HandlerCode {
    let mut cc = Cc {
        prog,
        pools,
        code: Vec::new(),
        regs: Alloc::default(),
        objs: Alloc::default(),
        frames: Vec::new(),
        array_stack: Vec::new(),
        depth: 0,
    };
    let mut vars = HashMap::new();
    let mut binds = Vec::with_capacity(params.len());
    let mut param_names = Vec::with_capacity(params.len());
    for p in params {
        let r = cc.regs.get();
        let is_bool = p.ty == Ty::Bool;
        binds.push(match p.ty {
            Ty::Bool => ParamBind::Bool,
            ty => ParamBind::Int(ty.int_width().unwrap_or(32)),
        });
        vars.insert(p.name.name.clone(), Slot::Reg { r, is_bool });
        param_names.push(p.name.name.clone());
    }
    cc.frames.push(Frame { vars, ret: None });
    cc.block(body);
    cc.code.push(Instr::Halt);
    HandlerCode {
        event_id,
        name: name.to_string(),
        param_names,
        binds,
        nregs: cc.regs.next as usize,
        nobjs: cc.objs.next as usize,
        code: cc.code,
    }
}

impl Cc<'_> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    /// Point a forward jump at the current end of the code.
    fn patch(&mut self, at: usize) {
        let to = self.code.len() as u32;
        match &mut self.code[at] {
            Instr::Jmp { to: t } | Instr::Jz { to: t, .. } | Instr::Jnz { to: t, .. } => *t = to,
            other => panic!("patching a non-jump {other:?}"),
        }
    }

    /// Free the storage a consumed temporary held.
    fn release(&mut self, v: Val) {
        match v {
            Val::Reg { r, temp: true, .. } => self.regs.put(r),
            Val::Obj { o, temp: true, .. } => self.objs.put(o),
            _ => {}
        }
    }

    fn reg_of(&self, v: Val) -> u16 {
        match v {
            Val::Reg { r, .. } => r,
            other => panic!("checked program used {other:?} as an integer"),
        }
    }

    /// Get `v` into an object slot we may mutate (clone a variable's
    /// slot, exactly as the walker clones on env lookup).
    fn owned_obj(&mut self, v: Val) -> u16 {
        match v {
            Val::Obj { o, temp: true } => o,
            Val::Obj { o, temp: false } => {
                let dst = self.objs.get();
                self.emit(Instr::ObjCopy { dst, src: o });
                dst
            }
            other => panic!("checked program used {other:?} as an event/group"),
        }
    }

    /// Pin an expression result as a variable binding (reusing a
    /// temporary's storage, copying out of another variable's).
    fn bind_value(&mut self, v: Val) -> Slot {
        match v {
            Val::Reg {
                r,
                is_bool,
                temp: true,
            } => Slot::Reg { r, is_bool },
            Val::Reg {
                r,
                is_bool,
                temp: false,
            } => {
                let dst = self.regs.get();
                self.emit(Instr::Mov { dst, src: r });
                Slot::Reg { r: dst, is_bool }
            }
            Val::Obj { o, temp: true } => Slot::Obj(o),
            Val::Obj { o, temp: false } => {
                let dst = self.objs.get();
                self.emit(Instr::ObjCopy { dst, src: o });
                Slot::Obj(dst)
            }
            Val::Void => Slot::Void,
        }
    }

    // ------------------------------------------------------- statements

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let v = self.expr(init);
                // The walker re-masks only int-typed locals holding ints.
                let slot = match (ty, v) {
                    (Some(Ty::Int(w)), Val::Reg { r, temp, .. }) => {
                        let dst = if temp { r } else { self.regs.get() };
                        self.emit(Instr::MaskW { dst, src: r, w: *w });
                        Slot::Reg {
                            r: dst,
                            is_bool: false,
                        }
                    }
                    _ => self.bind_value(v),
                };
                self.frames
                    .last_mut()
                    .expect("frame")
                    .vars
                    .insert(name.name.clone(), slot);
            }
            StmtKind::Assign { name, value } => {
                let slot = *self
                    .frames
                    .last()
                    .expect("frame")
                    .vars
                    .get(&name.name)
                    .unwrap_or_else(|| panic!("checked program assigns unbound `{}`", name.name));
                let v = self.expr(value);
                match slot {
                    Slot::Reg { r: dst, is_bool } => {
                        let src = self.reg_of(v);
                        // Ints keep the variable's width; bools just move.
                        if is_bool {
                            self.emit(Instr::Mov { dst, src });
                        } else {
                            self.emit(Instr::StoreMasked { dst, src });
                        }
                    }
                    Slot::Obj(dst) => {
                        let src = match v {
                            Val::Obj { o, .. } => o,
                            other => panic!("checked program assigns {other:?} to an event"),
                        };
                        self.emit(Instr::ObjCopy { dst, src });
                    }
                    Slot::ArrayRef(_) | Slot::Void => {
                        panic!("checked program assigns to `{}`", name.name)
                    }
                }
                self.release(v);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.expr(cond);
                let jz = self.emit(Instr::Jz {
                    cond: self.reg_of(c),
                    to: u32::MAX,
                });
                self.release(c);
                // Branch-local declarations must not leak bindings into
                // the untaken path's compilation (the checker scopes
                // them lexically; the runtime env never observes a leak
                // because only one branch executes).
                let saved = self.frames.last().expect("frame").vars.clone();
                self.block(then_blk);
                if let Some(e) = else_blk {
                    let jend = self.emit(Instr::Jmp { to: u32::MAX });
                    self.patch(jz);
                    self.frames.last_mut().expect("frame").vars = saved.clone();
                    self.block(e);
                    self.patch(jend);
                } else {
                    self.patch(jz);
                }
                self.frames.last_mut().expect("frame").vars = saved;
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let v = self.expr(e);
                let obj = self.owned_obj(v);
                self.emit(Instr::Generate { obj });
                self.objs.put(obj);
            }
            StmtKind::Return(val) => {
                let v = val.as_ref().map(|e| self.expr(e));
                let in_fun = self.frames.last().expect("frame").ret.is_some();
                if !in_fun {
                    // Handler-level return: evaluate (for effects) and stop.
                    if let Some(v) = v {
                        self.release(v);
                    }
                    self.emit(Instr::Halt);
                    return;
                }
                if let Some(v) = v {
                    let slot = self
                        .frames
                        .last()
                        .expect("frame")
                        .ret
                        .as_ref()
                        .expect("fun")
                        .slot;
                    match (slot, v) {
                        (Slot::Reg { r: dst, .. }, Val::Reg { r: src, .. }) => {
                            self.emit(Instr::Mov { dst, src });
                        }
                        (Slot::Obj(dst), Val::Obj { o: src, .. }) => {
                            self.emit(Instr::ObjCopy { dst, src });
                        }
                        (Slot::Void, _) | (_, Val::Void) => {}
                        (s, v) => panic!("checked function returns {v:?} into {s:?}"),
                    }
                    self.release(v);
                }
                let j = self.emit(Instr::Jmp { to: u32::MAX });
                self.frames
                    .last_mut()
                    .expect("frame")
                    .ret
                    .as_mut()
                    .expect("fun")
                    .jumps
                    .push(j);
            }
            StmtKind::Printf { fmt, args } => {
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
                let pargs: Box<[PrintArg]> = vals
                    .iter()
                    .map(|v| match *v {
                        Val::Reg { r, is_bool, .. } => PrintArg { reg: r, is_bool },
                        other => panic!("checked printf arg {other:?}"),
                    })
                    .collect();
                let fmt = self.pools.fmt_id(fmt);
                self.emit(Instr::Printf { fmt, args: pargs });
                for v in vals {
                    self.release(v);
                }
            }
            StmtKind::Expr(e) => {
                let v = self.expr(e);
                self.release(v);
            }
        }
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::Int { value, width } => {
                let w = width.unwrap_or(32);
                let dst = self.regs.get();
                self.emit(Instr::Const {
                    dst,
                    imm: mask(*value, w),
                    w,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Bool(b) => {
                let dst = self.regs.get();
                self.emit(Instr::Const {
                    dst,
                    imm: *b as u64,
                    w: 1,
                });
                Val::Reg {
                    r: dst,
                    is_bool: true,
                    temp: true,
                }
            }
            ExprKind::Var(id) => self.var(id),
            ExprKind::Unary { op, arg } => {
                let v = self.expr(arg);
                let src = self.reg_of(v);
                self.release(v);
                let dst = self.regs.get();
                let is_bool = match op {
                    UnOp::Not => {
                        self.emit(Instr::Not { dst, src });
                        true
                    }
                    UnOp::Neg => {
                        self.emit(Instr::Neg { dst, src });
                        false
                    }
                    UnOp::BitNot => {
                        self.emit(Instr::BitNot { dst, src });
                        false
                    }
                };
                Val::Reg {
                    r: dst,
                    is_bool,
                    temp: true,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            ExprKind::Cast { width, arg } => {
                let v = self.expr(arg);
                let src = self.reg_of(v);
                self.release(v);
                let dst = self.regs.get();
                self.emit(Instr::MaskW {
                    dst,
                    src,
                    w: *width,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Hash { width, args } => {
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
                let regs: Box<[u16]> = vals.iter().map(|v| self.reg_of(*v)).collect();
                for v in vals {
                    self.release(v);
                }
                let dst = self.regs.get();
                self.emit(Instr::Hash {
                    dst,
                    w: *width,
                    args: regs,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Call { callee, args } => self.call(callee, args),
            ExprKind::BuiltinCall { builtin, args, .. } => self.builtin(*builtin, args),
        }
    }

    fn var(&mut self, id: &Ident) -> Val {
        if let Some(slot) = self.frames.last().expect("frame").vars.get(&id.name) {
            return match *slot {
                Slot::Reg { r, is_bool } => Val::Reg {
                    r,
                    is_bool,
                    temp: false,
                },
                Slot::Obj(o) => Val::Obj { o, temp: false },
                // The walker binds array params as their global id.
                Slot::ArrayRef(gid) => {
                    let dst = self.regs.get();
                    self.emit(Instr::Const {
                        dst,
                        imm: gid.0 as u64,
                        w: 32,
                    });
                    Val::Reg {
                        r: dst,
                        is_bool: false,
                        temp: true,
                    }
                }
                Slot::Void => Val::Void,
            };
        }
        if id.name == "SELF" {
            let dst = self.regs.get();
            self.emit(Instr::LoadSelf { dst });
            return Val::Reg {
                r: dst,
                is_bool: false,
                temp: true,
            };
        }
        if let Some(c) = self.prog.info.consts.get(&id.name) {
            let (imm, w, is_bool) = match c.ty {
                Ty::Bool => ((c.value != 0) as u64, 1, true),
                Ty::Int(w) => (c.value, w, false),
                _ => (c.value, 32, false),
            };
            let dst = self.regs.get();
            self.emit(Instr::Const { dst, imm, w });
            return Val::Reg {
                r: dst,
                is_bool,
                temp: true,
            };
        }
        if let Some(g) = self.prog.info.groups.get(&id.name) {
            let members = g.members.clone();
            let group = self.pools.group_id(&id.name, &members);
            let dst = self.objs.get();
            self.emit(Instr::LoadGroup { dst, group });
            return Val::Obj { o: dst, temp: true };
        }
        panic!("checked program has unbound var `{}`", id.name)
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Val {
        // The logical connectives short-circuit, exactly as the walker
        // does: the right operand must not run when the left decides.
        if op == BinOp::And || op == BinOp::Or {
            let dst = self.regs.get();
            let l = self.expr(lhs);
            self.emit(Instr::BoolOf {
                dst,
                src: self.reg_of(l),
            });
            self.release(l);
            let j = if op == BinOp::And {
                self.emit(Instr::Jz {
                    cond: dst,
                    to: u32::MAX,
                })
            } else {
                self.emit(Instr::Jnz {
                    cond: dst,
                    to: u32::MAX,
                })
            };
            let r = self.expr(rhs);
            self.emit(Instr::BoolOf {
                dst,
                src: self.reg_of(r),
            });
            self.release(r);
            self.patch(j);
            return Val::Reg {
                r: dst,
                is_bool: true,
                temp: true,
            };
        }
        let l = self.expr(lhs);
        let r = self.expr(rhs);
        let (a, b) = (self.reg_of(l), self.reg_of(r));
        self.release(l);
        self.release(r);
        let dst = self.regs.get();
        if op.is_comparison() {
            self.emit(Instr::Cmp { op, dst, a, b });
            Val::Reg {
                r: dst,
                is_bool: true,
                temp: true,
            }
        } else {
            self.emit(Instr::Bin { op, dst, a, b });
            Val::Reg {
                r: dst,
                is_bool: false,
                temp: true,
            }
        }
    }

    /// Event construction, or a user function inlined at this call site.
    fn call(&mut self, callee: &Ident, args: &[Expr]) -> Val {
        if let Some(ev) = self.prog.info.event(&callee.name) {
            let event_id = ev.id as u32;
            let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
            let regs: Box<[u16]> = vals.iter().map(|v| self.reg_of(*v)).collect();
            for v in vals {
                self.release(v);
            }
            let dst = self.objs.get();
            self.emit(Instr::MkEvent {
                dst,
                event_id,
                args: regs,
            });
            return Val::Obj { o: dst, temp: true };
        }

        let (ret_ty, params, body) = self
            .prog
            .fun_body(&callee.name)
            .unwrap_or_else(|| panic!("checked program calls unknown `{}`", callee.name));
        let (ret_ty, params, body) = (*ret_ty, params.clone(), body.clone());
        self.depth += 1;
        assert!(self.depth <= 64, "function inlining depth exceeded");

        // Bind arguments in declaration order, evaluating value args in
        // the caller's frame and pushing array bindings onto the dynamic
        // stack as they resolve (the same interleaving the walker uses).
        let array_stack_mark = self.array_stack.len();
        let mut vars = HashMap::new();
        for (p, a) in params.iter().zip(args) {
            let slot = match p.ty {
                Ty::Array(_) => {
                    let gid = self.resolve_array(a);
                    self.array_stack.push((p.name.name.clone(), gid));
                    Slot::ArrayRef(gid)
                }
                _ => {
                    let v = self.expr(a);
                    self.bind_value(v)
                }
            };
            vars.insert(p.name.name.clone(), slot);
        }
        let ret_slot = match ret_ty {
            Ty::Void => Slot::Void,
            Ty::Event | Ty::Group => Slot::Obj(self.objs.get()),
            Ty::Bool => Slot::Reg {
                r: self.regs.get(),
                is_bool: true,
            },
            _ => Slot::Reg {
                r: self.regs.get(),
                is_bool: false,
            },
        };
        self.frames.push(Frame {
            vars,
            ret: Some(RetCtx {
                slot: ret_slot,
                jumps: Vec::new(),
            }),
        });
        self.block(&body);
        let frame = self.frames.pop().expect("fun frame");
        for j in frame.ret.expect("fun").jumps {
            self.patch(j);
        }
        self.array_stack.truncate(array_stack_mark);
        self.depth -= 1;
        match ret_slot {
            Slot::Reg { r, is_bool } => Val::Reg {
                r,
                is_bool,
                temp: true,
            },
            Slot::Obj(o) => Val::Obj { o, temp: true },
            _ => Val::Void,
        }
    }

    /// Resolve an array-position argument to a concrete global.
    /// Resolve an array-position name the way the walker's
    /// `resolve_array` does: innermost binding on the dynamic
    /// array-parameter stack first (spanning *all* live activations,
    /// not just the current frame), then the globals.
    fn resolve_array(&self, e: &Expr) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => {
                if let Some((_, gid)) = self
                    .array_stack
                    .iter()
                    .rev()
                    .find(|(name, _)| *name == id.name)
                {
                    return *gid;
                }
                self.prog.info.globals_by_name[&id.name]
            }
            _ => panic!("checked: array argument is a name"),
        }
    }

    fn memop_id(&mut self, e: &Expr) -> u16 {
        let ExprKind::Var(id) = &e.kind else {
            panic!("checked: memop position holds a name")
        };
        let ir = self.prog.memops[&id.name].clone();
        self.pools.memop_id(&ir)
    }

    fn builtin(&mut self, builtin: Builtin, args: &[Expr]) -> Val {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let gid = self.resolve_array(&args[0]).0 as u32;
                let iv = self.expr(&args[1]);
                let idx = self.reg_of(iv);
                // The walker bounds-checks before evaluating any memop
                // argument; keeping that order keeps error runs
                // bit-identical too.
                self.emit(Instr::ArrCheck { gid, idx });
                let out = match builtin {
                    Builtin::ArrayGet => {
                        let dst = self.regs.get();
                        self.emit(Instr::ArrGet { dst, gid, idx });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    Builtin::ArrayGetm => {
                        let memop = self.memop_id(&args[2]);
                        let lv = self.expr(&args[3]);
                        let local = self.reg_of(lv);
                        self.release(lv);
                        let dst = self.regs.get();
                        self.emit(Instr::ArrGetm {
                            dst,
                            gid,
                            idx,
                            memop,
                            local,
                        });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    Builtin::ArraySet => {
                        let vv = self.expr(&args[2]);
                        let val = self.reg_of(vv);
                        self.release(vv);
                        self.emit(Instr::ArrSet { gid, idx, val });
                        Val::Void
                    }
                    Builtin::ArraySetm => {
                        let memop = self.memop_id(&args[2]);
                        let lv = self.expr(&args[3]);
                        let local = self.reg_of(lv);
                        self.release(lv);
                        self.emit(Instr::ArrSetm {
                            gid,
                            idx,
                            memop,
                            local,
                        });
                        Val::Void
                    }
                    Builtin::ArrayUpdate => {
                        let getop = self.memop_id(&args[2]);
                        let gv = self.expr(&args[3]);
                        let setop = self.memop_id(&args[4]);
                        let sv = self.expr(&args[5]);
                        let (getarg, setarg) = (self.reg_of(gv), self.reg_of(sv));
                        self.release(gv);
                        self.release(sv);
                        let dst = self.regs.get();
                        self.emit(Instr::ArrUpdate {
                            dst,
                            gid,
                            idx,
                            getop,
                            getarg,
                            setop,
                            setarg,
                        });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    _ => unreachable!(),
                };
                self.release(iv);
                out
            }
            Builtin::EventDelay | Builtin::EventLocate => {
                let ev = self.expr(&args[0]);
                let obj = self.owned_obj(ev);
                let av = self.expr(&args[1]);
                let arg = self.reg_of(av);
                self.release(av);
                if builtin == Builtin::EventDelay {
                    self.emit(Instr::EvDelay { obj, us: arg });
                } else {
                    self.emit(Instr::EvLocate { obj, loc: arg });
                }
                Val::Obj { o: obj, temp: true }
            }
            Builtin::EventMLocate => {
                let ev = self.expr(&args[0]);
                let obj = self.owned_obj(ev);
                let gv = self.expr(&args[1]);
                let group = match gv {
                    Val::Obj { o, .. } => o,
                    other => panic!("checked: group argument, got {other:?}"),
                };
                self.emit(Instr::EvMLocate { obj, group });
                self.release(gv);
                Val::Obj { o: obj, temp: true }
            }
            Builtin::SysTime => {
                let dst = self.regs.get();
                self.emit(Instr::LoadTime { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            Builtin::SysSelf => {
                let dst = self.regs.get();
                self.emit(Instr::LoadSelf { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            Builtin::SysPort => {
                let dst = self.regs.get();
                self.emit(Instr::LoadPort { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
        }
    }
}

// ------------------------------------------------------------- executor

impl CompiledProg {
    /// Run one handler activation on its shard. Mirrors the AST walker's
    /// `exec_block` bit for bit; the caller (dispatch) has already
    /// recorded trace and statistics.
    pub(crate) fn run_handler(
        &self,
        h: &HandlerCode,
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
        args: &[u64],
    ) -> Result<(), InterpError> {
        // Reuse the shard's scratch buffers across events.
        let mut regs = std::mem::take(&mut shard.bc_regs);
        let mut objs = std::mem::take(&mut shard.bc_objs);
        regs.clear();
        regs.resize(h.nregs, Rv::default());
        objs.clear();
        objs.resize(h.nobjs, Obj::None);
        for (i, (bind, raw)) in h.binds.iter().zip(args).enumerate() {
            regs[i] = match bind {
                ParamBind::Int(w) => Rv { v: *raw, w: *w },
                ParamBind::Bool => Rv {
                    v: (*raw != 0) as u64,
                    w: 1,
                },
            };
        }
        let res = self.exec_loop(&h.code, &mut regs, &mut objs, exec, shard, switch, key);
        shard.bc_regs = regs;
        shard.bc_objs = objs;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &self,
        code: &[Instr],
        regs: &mut [Rv],
        objs: &mut [Obj],
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
    ) -> Result<(), InterpError> {
        let mut pc = 0usize;
        loop {
            match &code[pc] {
                Instr::Const { dst, imm, w } => {
                    regs[*dst as usize] = Rv { v: *imm, w: *w };
                }
                Instr::Mov { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize];
                }
                Instr::StoreMasked { dst, src } => {
                    let w = regs[*dst as usize].w;
                    regs[*dst as usize] = Rv {
                        v: mask(regs[*src as usize].v, w),
                        w,
                    };
                }
                Instr::BoolOf { dst, src } => {
                    regs[*dst as usize] = Rv {
                        v: (regs[*src as usize].v != 0) as u64,
                        w: 1,
                    };
                }
                Instr::Not { dst, src } => {
                    regs[*dst as usize] = Rv {
                        v: (regs[*src as usize].v == 0) as u64,
                        w: 1,
                    };
                }
                Instr::Neg { dst, src } => {
                    let Rv { v, w } = regs[*src as usize];
                    regs[*dst as usize] = Rv {
                        v: mask(v.wrapping_neg(), w),
                        w,
                    };
                }
                Instr::BitNot { dst, src } => {
                    let Rv { v, w } = regs[*src as usize];
                    regs[*dst as usize] = Rv { v: mask(!v, w), w };
                }
                Instr::Bin { op, dst, a, b } => {
                    let Rv { v: a, w: wa } = regs[*a as usize];
                    let Rv { v: b, w: wb } = regs[*b as usize];
                    // Mirrors the AST walker's `eval_binop` exactly: shifts
                    // keep the shifted operand's width and a count at or
                    // past that width yields 0.
                    let w = match op {
                        BinOp::Shl | BinOp::Shr => wa,
                        _ => wa.max(wb),
                    };
                    let v = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        // Division by zero yields zero in the data plane.
                        BinOp::Div => a.checked_div(b).unwrap_or(0),
                        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
                        BinOp::BitAnd => a & b,
                        BinOp::BitOr => a | b,
                        BinOp::BitXor => a ^ b,
                        BinOp::Shl => {
                            if b >= w as u64 {
                                0
                            } else {
                                a.wrapping_shl(b as u32)
                            }
                        }
                        BinOp::Shr => {
                            if b >= w as u64 {
                                0
                            } else {
                                a.wrapping_shr(b as u32)
                            }
                        }
                        other => unreachable!("comparison {other:?} compiled as Bin"),
                    };
                    regs[*dst as usize] = Rv { v: mask(v, w), w };
                }
                Instr::Cmp { op, dst, a, b } => {
                    let a = regs[*a as usize].v;
                    let b = regs[*b as usize].v;
                    let v = match op {
                        BinOp::Eq => a == b,
                        BinOp::Neq => a != b,
                        BinOp::Lt => a < b,
                        BinOp::Gt => a > b,
                        BinOp::Le => a <= b,
                        BinOp::Ge => a >= b,
                        other => unreachable!("{other:?} compiled as Cmp"),
                    };
                    regs[*dst as usize] = Rv { v: v as u64, w: 1 };
                }
                Instr::MaskW { dst, src, w } => {
                    regs[*dst as usize] = Rv {
                        v: mask(regs[*src as usize].v, *w),
                        w: *w,
                    };
                }
                Instr::Hash { dst, w, args } => {
                    let seed = regs[args[0] as usize].v;
                    // Reuse the shard's buffer: no per-hash allocation.
                    shard.bc_hash.clear();
                    shard
                        .bc_hash
                        .extend(args[1..].iter().map(|r| regs[*r as usize].v));
                    regs[*dst as usize] = Rv {
                        v: lucid_hash(*w, seed, &shard.bc_hash),
                        w: *w,
                    };
                }
                Instr::Jmp { to } => {
                    pc = *to as usize;
                    continue;
                }
                Instr::Jz { cond, to } => {
                    if regs[*cond as usize].v == 0 {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::Jnz { cond, to } => {
                    if regs[*cond as usize].v != 0 {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::ArrCheck { gid, idx } => {
                    let idx = regs[*idx as usize].v;
                    let m = &self.arrays[*gid as usize];
                    if idx >= m.len {
                        return Err(InterpFault::IndexOutOfBounds {
                            array: m.name.clone(),
                            index: idx,
                            len: m.len,
                        }
                        .into());
                    }
                }
                Instr::ArrGet { dst, gid, idx } => {
                    let idx = regs[*idx as usize].v as usize;
                    let w = self.arrays[*gid as usize].width;
                    // The walker masks on read (`Value::int(cur, w)`);
                    // cells can legally hold over-width values because
                    // `Array.setm` stores memop results unmasked.
                    regs[*dst as usize] = Rv {
                        v: mask(shard.state.arrays[*gid as usize][idx], w),
                        w,
                    };
                }
                Instr::ArrSet { gid, idx, val } => {
                    let idx = regs[*idx as usize].v as usize;
                    let w = self.arrays[*gid as usize].width;
                    shard.state.arrays[*gid as usize][idx] = mask(regs[*val as usize].v, w);
                }
                Instr::ArrGetm {
                    dst,
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let idx = regs[*idx as usize].v as usize;
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][idx];
                    let local = regs[*local as usize].v;
                    regs[*dst as usize] = Rv {
                        v: mask(eval_memop(&self.memops[*memop as usize], cur, local, w), w),
                        w,
                    };
                }
                Instr::ArrSetm {
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let idx = regs[*idx as usize].v as usize;
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][idx];
                    let local = regs[*local as usize].v;
                    shard.state.arrays[*gid as usize][idx] =
                        eval_memop(&self.memops[*memop as usize], cur, local, w);
                }
                Instr::ArrUpdate {
                    dst,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                } => {
                    let idx = regs[*idx as usize].v as usize;
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][idx];
                    let ret = eval_memop(
                        &self.memops[*getop as usize],
                        cur,
                        regs[*getarg as usize].v,
                        w,
                    );
                    shard.state.arrays[*gid as usize][idx] = eval_memop(
                        &self.memops[*setop as usize],
                        cur,
                        regs[*setarg as usize].v,
                        w,
                    );
                    regs[*dst as usize] = Rv { v: mask(ret, w), w };
                }
                Instr::MkEvent {
                    dst,
                    event_id,
                    args,
                } => {
                    let meta = &self.events[*event_id as usize];
                    let vals: Vec<u64> = args
                        .iter()
                        .zip(meta.widths.iter())
                        .map(|(r, w)| mask(regs[*r as usize].v, *w))
                        .collect();
                    objs[*dst as usize] = Obj::Ev(EventVal {
                        event_id: *event_id as usize,
                        name: meta.name.clone(),
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    });
                }
                Instr::ObjCopy { dst, src } => {
                    objs[*dst as usize] = objs[*src as usize].clone();
                }
                Instr::LoadGroup { dst, group } => {
                    objs[*dst as usize] = Obj::Group(self.groups[*group as usize].1.clone());
                }
                Instr::EvDelay { obj, us } => {
                    let d_us = regs[*us as usize].v;
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.delay_ns += d_us * 1_000;
                    }
                }
                Instr::EvLocate { obj, loc } => {
                    let loc = regs[*loc as usize].v;
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.location = Location::Switch(loc);
                    }
                }
                Instr::EvMLocate { obj, group } => {
                    let members = match &objs[*group as usize] {
                        Obj::Group(g) => g.clone(),
                        other => panic!("checked: group operand holds {other:?}"),
                    };
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.location = Location::Group(members);
                    }
                }
                Instr::Generate { obj } => {
                    let Obj::Ev(ev) = std::mem::take(&mut objs[*obj as usize]) else {
                        panic!("checked: generate of non-event")
                    };
                    exec.emit(shard, ev);
                }
                Instr::LoadSelf { dst } => {
                    regs[*dst as usize] = Rv { v: switch, w: 32 };
                }
                Instr::LoadTime { dst } => {
                    regs[*dst as usize] = Rv {
                        v: mask(shard.now_ns / 1_000, 32),
                        w: 32,
                    };
                }
                Instr::LoadPort { dst } => {
                    regs[*dst as usize] = Rv { v: 0, w: 32 };
                }
                Instr::Printf { fmt, args } => {
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|p| {
                            let r = regs[p.reg as usize];
                            if p.is_bool {
                                Value::Bool(r.v != 0)
                            } else {
                                Value::Int { v: r.v, width: r.w }
                            }
                        })
                        .collect();
                    let line = format_printf(&self.fmts[*fmt as usize], &vals);
                    if exec.echo {
                        println!("[{} @{}ns] {}", switch, shard.now_ns, line);
                    }
                    shard.output.push((key, line));
                }
                Instr::Halt => return Ok(()),
            }
            pc += 1;
        }
    }
}

// --------------------------------------------------------- disassembler

/// Compile `prog` and render the listing (`lucidc sim --dump-bytecode`).
pub fn disassemble(prog: &CheckedProgram) -> String {
    CompiledProg::compile(prog).disasm()
}

impl CompiledProg {
    /// A stable, human-readable listing of the whole compiled program:
    /// the pools, then each handler's code. Golden-file tests pin this
    /// format (`tests/golden/*.bc.txt`).
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        let handlers = self.handlers.iter().flatten().count();
        let _ = writeln!(
            out,
            "; {} events, {} handlers, {} arrays, {} memops, {} groups",
            self.events.len(),
            handlers,
            self.arrays.len(),
            self.memops.len(),
            self.groups.len(),
        );
        for (i, a) in self.arrays.iter().enumerate() {
            let _ = writeln!(
                out,
                "; array g{i} `{}`: {} x {}-bit",
                a.name, a.len, a.width
            );
        }
        for (i, m) in self.memops.iter().enumerate() {
            let _ = writeln!(out, "; memop m{i} `{}`", m.name);
        }
        for (i, (name, members)) in self.groups.iter().enumerate() {
            let list: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "; group G{i} `{name}`: {{{}}}", list.join(", "));
        }
        for h in self.handlers.iter().flatten() {
            out.push('\n');
            let _ = writeln!(
                out,
                "handler `{}` (event {}): {} regs, {} objs, {} instrs",
                h.name,
                h.event_id,
                h.nregs,
                h.nobjs,
                h.code.len()
            );
            if !h.param_names.is_empty() {
                let args: Vec<String> = h
                    .param_names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| format!("r{i}={n}"))
                    .collect();
                let _ = writeln!(out, "  args: {}", args.join(" "));
            }
            for (pc, i) in h.code.iter().enumerate() {
                let _ = writeln!(out, "  {pc:>4}: {}", self.instr_text(i));
            }
        }
        out
    }

    fn instr_text(&self, i: &Instr) -> String {
        let arr = |gid: &u32| format!("g{gid}");
        match i {
            Instr::Const { dst, imm, w } => format!("r{dst} = const {imm} <<{w}>>"),
            Instr::Mov { dst, src } => format!("r{dst} = r{src}"),
            Instr::StoreMasked { dst, src } => format!("r{dst} =mask r{src}"),
            Instr::BoolOf { dst, src } => format!("r{dst} = bool r{src}"),
            Instr::Not { dst, src } => format!("r{dst} = !r{src}"),
            Instr::Neg { dst, src } => format!("r{dst} = -r{src}"),
            Instr::BitNot { dst, src } => format!("r{dst} = ~r{src}"),
            Instr::Bin { op, dst, a, b } => format!("r{dst} = r{a} {} r{b}", op.symbol()),
            Instr::Cmp { op, dst, a, b } => format!("r{dst} = r{a} {} r{b}", op.symbol()),
            Instr::MaskW { dst, src, w } => format!("r{dst} = mask<<{w}>> r{src}"),
            Instr::Hash { dst, w, args } => {
                let rest: Vec<String> = args[1..].iter().map(|r| format!("r{r}")).collect();
                format!("r{dst} = hash<<{w}>>(r{}; {})", args[0], rest.join(", "))
            }
            Instr::Jmp { to } => format!("jmp {to}"),
            Instr::Jz { cond, to } => format!("jz r{cond} -> {to}"),
            Instr::Jnz { cond, to } => format!("jnz r{cond} -> {to}"),
            Instr::ArrCheck { gid, idx } => format!("check {}[r{idx}]", arr(gid)),
            Instr::ArrGet { dst, gid, idx } => format!("r{dst} = {}[r{idx}]", arr(gid)),
            Instr::ArrSet { gid, idx, val } => format!("{}[r{idx}] = r{val}", arr(gid)),
            Instr::ArrGetm {
                dst,
                gid,
                idx,
                memop,
                local,
            } => format!("r{dst} = {}[r{idx}].m{memop}(r{local})", arr(gid)),
            Instr::ArrSetm {
                gid,
                idx,
                memop,
                local,
            } => format!("{}[r{idx}] = m{memop}(r{local})", arr(gid)),
            Instr::ArrUpdate {
                dst,
                gid,
                idx,
                getop,
                getarg,
                setop,
                setarg,
            } => format!(
                "r{dst} = update {}[r{idx}] get m{getop}(r{getarg}) set m{setop}(r{setarg})",
                arr(gid)
            ),
            Instr::MkEvent {
                dst,
                event_id,
                args,
            } => {
                let list: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
                format!(
                    "o{dst} = event `{}`({})",
                    self.events[*event_id as usize].name,
                    list.join(", ")
                )
            }
            Instr::ObjCopy { dst, src } => format!("o{dst} = o{src}"),
            Instr::LoadGroup { dst, group } => format!("o{dst} = group G{group}"),
            Instr::EvDelay { obj, us } => format!("o{obj}.delay += r{us} us"),
            Instr::EvLocate { obj, loc } => format!("o{obj}.loc = switch r{loc}"),
            Instr::EvMLocate { obj, group } => format!("o{obj}.loc = o{group}"),
            Instr::Generate { obj } => format!("generate o{obj}"),
            Instr::LoadSelf { dst } => format!("r{dst} = self"),
            Instr::LoadTime { dst } => format!("r{dst} = time"),
            Instr::LoadPort { dst } => format!("r{dst} = port"),
            Instr::Printf { fmt, args } => {
                let list: Vec<String> = args
                    .iter()
                    .map(|p| {
                        if p.is_bool {
                            format!("r{}:b", p.reg)
                        } else {
                            format!("r{}", p.reg)
                        }
                    })
                    .collect();
                format!(
                    "printf {:?} ({})",
                    self.fmts[*fmt as usize],
                    list.join(", ")
                )
            }
            Instr::Halt => "halt".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Engine, Interp, NetConfig};
    use lucid_check::parse_and_check;
    use proptest::prelude::*;

    fn checked(src: &str) -> CheckedProgram {
        match parse_and_check(src) {
            Ok(p) => p,
            Err(ds) => panic!("check failed:\n{ds}"),
        }
    }

    /// A program that exercises the whole ISA: functions (with array
    /// params and early returns), short-circuit logic, width-mixing
    /// literals, casts, hashes, memops, all five array ops, delay /
    /// locate / mlocate, exported reports, and printf.
    const KITCHEN_SINK: &str = r#"
        const int THRESH = 3;
        const group PEERS = {1, 2};
        global cnt = new Array<<32>>(32);
        global tag = new Array<<8>>(32);
        global log = new Array<<32>>(4);
        memop plus(int m, int x) { return m + x; }
        memop mget(int m, int x) { return m; }
        memop mset(int m, int x) { return x; }
        event pkt(int key, int ttl);
        event report(int val);
        fun int clamp(int v, int hi) {
            if (v > hi) { return hi; }
            return v;
        }
        fun int bump(Array<<32>> arr, int i, int by) {
            return Array.update(arr, i, mget, 0, plus, by);
        }
        handle pkt(int key, int ttl) {
            auto h = hash<<5>>(7, key, ttl);
            int i = (int<<32>>) h;
            int old = bump(cnt, i, 1);
            int<<8>> t = (int<<8>>) (old + 1);
            Array.setm(tag, i, mset, t);
            bool hot = old > THRESH && ttl > 0;
            if (hot || key == 0) {
                printf("hot key=%d old=%x hot=%d", key, old, hot);
                generate Event.delay(report(clamp(old, 9) + 200), 5);
            }
            int x = bump(log, key & 3, 7);
            if (ttl > 0) {
                generate pkt(key + 1, ttl - 1);
                generate Event.locate(pkt(key, ttl - 1), ((key + ttl) & 1) + 1);
                mgenerate Event.mlocate(report(x), PEERS);
            }
        }
    "#;

    /// Everything observable about a finished run.
    type Snapshot = (
        Vec<Vec<Vec<u64>>>,
        crate::machine::Stats,
        Vec<crate::machine::Handled>,
        Vec<String>,
    );

    fn run_snapshot(
        prog: &CheckedProgram,
        engine: Engine,
        exec: ExecMode,
        switches: u64,
        schedule: &[(u64, u64, &str, Vec<u64>)],
    ) -> Result<Snapshot, crate::machine::InterpError> {
        let mut cfg = NetConfig::mesh(switches);
        cfg.engine = engine;
        cfg.exec = exec;
        let mut sim = Interp::new(prog, cfg);
        for (sw, t, ev, args) in schedule {
            sim.schedule(*sw, *t, ev, args)?;
        }
        sim.run(200_000, u64::MAX)?;
        let arrays = (1..=switches)
            .map(|s| {
                prog.info
                    .globals
                    .iter()
                    .map(|g| sim.array(s, &g.name).to_vec())
                    .collect()
            })
            .collect();
        Ok((
            arrays,
            sim.stats.clone(),
            sim.trace.clone(),
            sim.output.clone(),
        ))
    }

    #[test]
    fn kitchen_sink_bytecode_matches_walker_everywhere() {
        let prog = checked(KITCHEN_SINK);
        let mut schedule = Vec::new();
        for s in 1..=2u64 {
            for k in 0..6u64 {
                schedule.push((s, k * 300, "pkt", vec![s * 40 + k, 3]));
            }
        }
        let reference =
            run_snapshot(&prog, Engine::Sequential, ExecMode::Ast, 2, &schedule).unwrap();
        for (engine, label) in [
            (Engine::Sequential, "sequential"),
            (
                Engine::Sharded {
                    workers: 2,
                    epoch_ns: 0,
                },
                "sharded",
            ),
        ] {
            let got = run_snapshot(&prog, engine, ExecMode::Bytecode, 2, &schedule).unwrap();
            assert_eq!(reference.0, got.0, "{label}/bytecode: array state");
            assert_eq!(reference.1, got.1, "{label}/bytecode: stats");
            assert_eq!(reference.2, got.2, "{label}/bytecode: trace");
            assert_eq!(reference.3, got.3, "{label}/bytecode: printf output");
        }
        // The workload actually exercised the interesting paths.
        assert!(!reference.3.is_empty(), "printf must fire");
        assert!(reference.1.exported > 0, "reports must export");
        assert!(reference.1.sent_remote > 0, "locate/mlocate must send");
    }

    #[test]
    fn out_of_bounds_is_bit_identical_including_prior_writes() {
        // The fault must hit at the same event, leave identical state
        // behind (writes before the faulting op included), and carry the
        // same location under both executors.
        let src = r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            event go(int i);
            handle go(int i) {
                Array.setm(a, 0, plus, 1);
                Array.set(b, i, 7);
            }
        "#;
        let prog = checked(src);
        let mut results = Vec::new();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut cfg = NetConfig::single();
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            sim.schedule(1, 0, "go", &[1]).unwrap();
            sim.schedule(1, 50, "go", &[9]).unwrap();
            let err = sim.run_to_quiescence().unwrap_err();
            results.push((
                err,
                sim.array(1, "a").to_vec(),
                sim.array(1, "b").to_vec(),
                sim.stats.clone(),
            ));
        }
        assert_eq!(results[0], results[1]);
        let (err, a, ..) = &results[0];
        assert!(
            matches!(
                &err.kind,
                InterpFault::IndexOutOfBounds {
                    index: 9,
                    len: 4,
                    ..
                }
            ),
            "{err}"
        );
        let at = err.at.as_ref().expect("located");
        assert_eq!((at.time_ns, at.switch, at.event.as_str()), (50, 1, "go"));
        assert_eq!(a[0], 2, "the write before the fault must have landed");
    }

    #[test]
    fn width_mixing_literals_match_walker() {
        // Literals keep their syntactic width at runtime (32 unless
        // annotated); the walker's max-width rule must survive
        // compilation exactly.
        let src = r#"
            global o0 = new Array<<32>>(1);
            global o1 = new Array<<32>>(1);
            global o2 = new Array<<32>>(1);
            global o3 = new Array<<32>>(1);
            event go(int<<8>> x);
            handle go(int<<8>> x) {
                auto wide = x + 250;
                int<<8>> narrow = x;
                narrow = narrow + 250;
                Array.set(o0, 0, (int<<32>>) wide);
                Array.set(o1, 0, (int<<32>>) narrow);
                if (x + 250 > 255) { Array.set(o2, 0, 1); }
                Array.set(o3, 0, (int<<32>>) ((int<<8>>) (x + 250)));
            }
        "#;
        let prog = checked(src);
        let mut outs = Vec::new();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut cfg = NetConfig::single();
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            sim.schedule(1, 0, "go", &[10]).unwrap();
            sim.run_to_quiescence().unwrap();
            outs.push(
                (0..4)
                    .map(|k| sim.array(1, &format!("o{k}"))[0])
                    .collect::<Vec<u64>>(),
            );
        }
        assert_eq!(outs[0], outs[1]);
        // Literals run at width 32 (the walker's `unwrap_or(32)` rule), so
        // `x + 250` is 260 even though the checker typed it int<<8>>; the
        // re-assignment to `narrow` masks back to 8 bits.
        assert_eq!(outs[0], vec![260, 4, 1, 4]);
    }

    #[test]
    fn booleans_print_and_compute_like_the_walker() {
        let src = r#"
            global out = new Array<<32>>(2);
            event go(bool flag, int v);
            handle go(bool flag, int v) {
                bool both = flag && v > 2;
                printf("flag=%d both=%d v=%d", flag, both, v);
                if (!both) { Array.set(out, 0, 1); } else { Array.set(out, 1, 1); }
            }
        "#;
        let prog = checked(src);
        let mut outs = Vec::new();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut cfg = NetConfig::single();
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            sim.schedule(1, 0, "go", &[1, 7]).unwrap();
            sim.schedule(1, 10, "go", &[0, 1]).unwrap();
            sim.run_to_quiescence().unwrap();
            outs.push((sim.output.clone(), sim.array(1, "out").to_vec()));
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0].0[0], "flag=true both=true v=7");
        assert_eq!(outs[0].0[1], "flag=false both=false v=1");
    }

    #[test]
    fn disassembly_is_stable_and_complete() {
        let prog = checked(KITCHEN_SINK);
        let text = disassemble(&prog);
        assert_eq!(
            text,
            disassemble(&prog),
            "disassembly must be deterministic"
        );
        for needle in [
            "handler `pkt`",
            "args: r0=key r1=ttl",
            "halt",
            "generate o",
            "; array g0 `cnt`: 32 x 32-bit",
            "; group G0 `PEERS`: {1, 2}",
            "printf",
            "hash<<5>>",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Handler-less events compile to no code block.
        assert!(!text.contains("handler `report`"), "{text}");
    }

    #[test]
    fn array_get_masks_over_width_cells_like_the_walker() {
        // `Array.setm` stores memop results unmasked, so a cell can hold
        // an over-width value; the walker masks on *read* and the
        // bytecode executor must too.
        let src = r#"
            global tag = new Array<<8>>(4);
            global out = new Array<<32>>(1);
            memop mset(int m, int x) { return x; }
            event wr(int<<8>> x);
            handle wr(int<<8>> x) { Array.setm(tag, 0, mset, x + 250); }
            event rd();
            handle rd() { Array.set(out, 0, (int<<32>>) Array.get(tag, 0)); }
        "#;
        let prog = checked(src);
        let mut outs = Vec::new();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut cfg = NetConfig::single();
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            sim.schedule(1, 0, "wr", &[10]).unwrap();
            sim.schedule(1, 100, "rd", &[]).unwrap();
            sim.run_to_quiescence().unwrap();
            outs.push((sim.array(1, "tag").to_vec(), sim.array(1, "out").to_vec()));
        }
        assert_eq!(outs[0], outs[1]);
        // 10 + 250 runs at width 32 (literal rule) -> the memop stores
        // 260 raw; the read masks it back to 8 bits.
        assert_eq!(outs[0].0[0], 260, "the cell itself holds the raw value");
        assert_eq!(outs[0].1[0], 4, "reads mask to the cell width");
    }

    #[test]
    fn nested_calls_resolve_arrays_through_the_dynamic_stack() {
        // The walker resolves array-position names against the dynamic
        // `array_params` stack spanning *all* live activations: inside
        // `inner`, called from `outer(b, ..)`, the bare name `a` means
        // outer's parameter (bound to global `b`), not the global `a`.
        // The compiler must reproduce that, not lexical scoping.
        let src = r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            global c = new Array<<32>>(4);
            fun int inner(int i) { return Array.get(a, i); }
            fun int outer(Array<<32>> a, int i) { return inner(i); }
            event go(int i);
            handle go(int i) {
                int v = outer(b, i);
                Array.set(c, 0, v);
            }
        "#;
        let prog = checked(src);
        let mut outs = Vec::new();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let mut cfg = NetConfig::single();
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            sim.poke(1, "a", 1, 111);
            sim.poke(1, "b", 1, 222);
            sim.schedule(1, 0, "go", &[1]).unwrap();
            sim.run_to_quiescence().unwrap();
            outs.push(sim.array(1, "c")[0]);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], 222, "`a` inside inner must mean outer's binding");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random schedules, topology sizes, and worker counts over the
        /// kitchen-sink program: every engine x exec combination must
        /// agree with the sequential AST walker on state, stats, trace,
        /// and printf output.
        #[test]
        fn differential_random_schedules(
            switches in 1u64..=4,
            workers in 1usize..=4,
            raw in proptest::collection::vec((1u64..=4, 0u64..=5_000, 0u64..=255, 0u64..=4), 1..24)
        ) {
            let prog = checked(KITCHEN_SINK);
            let schedule: Vec<(u64, u64, &str, Vec<u64>)> = raw
                .iter()
                .map(|(sw, t, key, ttl)| {
                    ((sw - 1) % switches + 1, *t, "pkt", vec![*key, *ttl])
                })
                .collect();
            let reference =
                run_snapshot(&prog, Engine::Sequential, ExecMode::Ast, switches, &schedule)
                    .expect("bounded workload quiesces");
            for engine in [Engine::Sequential, Engine::Sharded { workers, epoch_ns: 0 }] {
                for exec in [ExecMode::Ast, ExecMode::Bytecode] {
                    let got = run_snapshot(&prog, engine, exec, switches, &schedule)
                        .expect("deterministic workload");
                    prop_assert_eq!(&reference.0, &got.0);
                    prop_assert_eq!(&reference.1, &got.1);
                    prop_assert_eq!(&reference.2, &got.2);
                    prop_assert_eq!(&reference.3, &got.3);
                }
            }
        }

        /// Random *unvalidated* indices: runs that fault must fault
        /// identically (same kind, same location) under both executors,
        /// and runs that succeed must match.
        #[test]
        fn differential_faulting_runs(
            idx in proptest::collection::vec(0u64..=6, 1..8)
        ) {
            let src = r#"
                global a = new Array<<32>>(4);
                memop plus(int m, int x) { return m + x; }
                event go(int i);
                handle go(int i) { Array.setm(a, i, plus, 1); }
            "#;
            let prog = checked(src);
            let schedule: Vec<(u64, u64, &str, Vec<u64>)> = idx
                .iter()
                .enumerate()
                .map(|(k, i)| (1u64, k as u64 * 100, "go", vec![*i]))
                .collect();
            let ast = run_snapshot(&prog, Engine::Sequential, ExecMode::Ast, 1, &schedule);
            let bc = run_snapshot(&prog, Engine::Sequential, ExecMode::Bytecode, 1, &schedule);
            prop_assert_eq!(ast, bc);
        }
    }
}
