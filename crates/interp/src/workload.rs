//! Streaming workload generators: parameterized synthetic traffic for the
//! simulator, pulled lazily by both engines so a ten-million-event run
//! never materializes an event vector.
//!
//! A scenario's `"generators"` section compiles (against a checked
//! program) into one [`Workload`] — a deterministic, seeded stream of
//! timed injections. Each generator is an independent flow source with:
//!
//! * an **event** to inject and one destination **switch** (or a set the
//!   source picks from uniformly);
//! * a **rate** (`rate_eps`, events per virtual second, or a raw
//!   `interval_ns`) with optional ± `jitter_ns` on every gap;
//! * a **start/stop window** and/or a total event `count`;
//! * **phase changes** (`phases`: rate switches at given instants — e.g.
//!   an attack burst that multiplies the rate for a window);
//! * per-argument **distributions**: a constant, `uniform` over a closed
//!   range, `zipf` over `n` keys with exponent `s` (heavy hitters), or
//!   `seq` (a cycling counter, for full-range sweeps).
//!
//! Determinism is the load-bearing property: a generator's stream is a
//! pure function of its effective seed (scenario seed mixed with the
//! generator's own), so the same scenario produces bit-identical runs
//! under every engine × executor combination. Event times within one
//! source are nondecreasing, and [`Workload`] merges sources in global
//! (time, source-index) order — both drivers pull the identical sequence.

use crate::machine::{Interp, InterpError, InterpFault};
use crate::snap;
use lucid_check::{mask, CheckedProgram};

/// One event pulled from a source: an external injection the interpreter
/// schedules with the usual class-0 key (so generated workload and
/// hand-written `events` share one deterministic order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcedEvent {
    pub time_ns: u64,
    pub switch: u64,
    /// Index into `prog.info.events`.
    pub event_id: usize,
    /// Already masked to the event's parameter widths.
    pub args: Vec<u64>,
    /// Which source produced it (index into the workload's generators),
    /// for per-generator injection counts in the report.
    pub source: usize,
}

/// A pull-based injection stream. Both engines drain one lazily: the
/// sequential driver pulls everything due at or before its queue head,
/// the sharded driver pulls everything due inside the coming round.
/// `peek_ns` must be nondecreasing across pulls.
pub trait EventSource {
    /// Virtual time of the next event, `None` when exhausted.
    fn peek_ns(&self) -> Option<u64>;
    /// Time *and source slot* of the next event — enough to form its
    /// schedule key without pulling it, which lets a single-worker
    /// sharded run merge the stream head into its dispatch scan instead
    /// of materializing a window ahead. Must describe the same event
    /// `next_event` would return. The default is correct for any
    /// single-source stream.
    fn peek_key(&self) -> Option<(u64, usize)> {
        self.peek_ns().map(|t| (t, 0))
    }
    /// Pull the next event. `None` exactly when `peek_ns` is `None`.
    fn next_event(&mut self) -> Option<SourcedEvent>;
    /// Pull every event due at or before `horizon_ns` — up to `max` of
    /// them — appending to `out` in stream order. Both engines refill
    /// through this in chunks, so a boxed source pays its virtual
    /// dispatch once per batch rather than twice per injection. The
    /// default loops `peek_ns`/`next_event`; implementations with a
    /// cheaper bulk path may override it, provided the pulled sequence
    /// is identical.
    fn next_batch(&mut self, horizon_ns: u64, max: usize, out: &mut Vec<SourcedEvent>) {
        for _ in 0..max {
            match self.peek_ns() {
                Some(t) if t <= horizon_ns => {
                    out.push(self.next_event().expect("peeked a due event"));
                }
                _ => break,
            }
        }
    }
    /// How many sources feed this stream (sizes the per-source counters).
    fn source_count(&self) -> usize {
        1
    }
    /// Detach every constituent source whose entire remaining stream is
    /// bound to a single switch accepted by `owned`, so the sharded
    /// engine can hand each one to the worker that owns its destination
    /// shard (no cross-worker traffic to materialize an injection).
    /// Detached slots keep their indices — per-source keys and report
    /// rows are position-based — and must come back via
    /// [`EventSource::reattach_local`] before the next sequential pull.
    ///
    /// The default detaches nothing: the source stays shared and is
    /// pulled by one worker on behalf of all (always correct, since
    /// per-source keys are independent of pull interleaving).
    fn detach_local(&mut self, owned: &dyn Fn(u64) -> bool) -> Vec<LocalGen> {
        let _ = owned;
        Vec::new()
    }
    /// Restore generators detached by [`EventSource::detach_local`] into
    /// their original slots (stream positions advance by however far the
    /// workers pulled them).
    fn reattach_local(&mut self, parts: Vec<LocalGen>) {
        debug_assert!(parts.is_empty(), "default detach_local detaches nothing");
    }
    /// Serialize the source's full cursor state (specs, RNG positions,
    /// remaining budget) into `out` so a restored world resumes the
    /// exact stream. Returns `false` when the source does not support
    /// snapshots (the default) — snapshotting such a world is refused
    /// with a structured error rather than silently dropping the stream.
    fn save_state(&self, out: &mut Vec<u8>) -> bool {
        let _ = out;
        false
    }
    /// Counterpart of [`EventSource::save_state`]: overwrite this
    /// source's state from `bytes`, re-resolving event names against
    /// `prog`. Corrupted bytes yield `Err`, never a panic.
    fn load_state(&mut self, prog: &CheckedProgram, bytes: &[u8]) -> Result<(), String> {
        let _ = (prog, bytes);
        Err("event source does not support snapshot restore".to_string())
    }
    /// Re-resolve the source's events against a hot-swapped program.
    /// Constituent sources whose event vanished (or changed arity) are
    /// disabled; returns how many were. The default reports the whole
    /// source as incompatible without disabling anything.
    fn remap_events(&mut self, prog: &CheckedProgram) -> usize {
        let _ = prog;
        0
    }
    /// Append a constituent generator mid-run (the serve `ingest` verb).
    /// Returns `false` when the source cannot grow (the default).
    fn attach_generator(&mut self, gen: Generator) -> bool {
        let _ = gen;
        false
    }
}

/// One single-switch source detached from a shared stream for
/// worker-local pulling ([`EventSource::detach_local`]).
#[derive(Debug, Clone)]
pub struct LocalGen {
    /// The one switch every remaining event of this source targets.
    pub switch: u64,
    /// The slot it came from: its [`SourcedEvent::source`] index.
    pub slot: usize,
    pub gen: Generator,
}

// ------------------------------------------------------------------- rng

/// Self-contained deterministic generator (xoshiro256++ seeded through
/// splitmix64 — the same construction as the vendored `rand` shim, kept
/// local so `lucid-interp` stays dependency-free and the stream is pinned
/// by this crate alone).
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    pub(crate) fn seeded(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, n)` (multiply-shift; `n = 0` yields 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, span]` inclusive — safe for `span = u64::MAX`,
    /// where `below(span + 1)` would overflow.
    fn below_incl(&mut self, span: u64) -> u64 {
        if span == u64::MAX {
            self.next_u64()
        } else {
            self.below(span + 1)
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mix a scenario-level seed with a per-generator one into the effective
/// stream seed. Both levels matter: `--seed` reshuffles every source, a
/// generator's own `seed` decorrelates it from its siblings.
pub fn mix_seed(scenario_seed: u64, gen_seed: u64) -> u64 {
    let mut s = scenario_seed ^ gen_seed.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    splitmix64(&mut s)
}

// ----------------------------------------------------------------- specs

/// How one event argument is drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgDist {
    /// The same value every time.
    Const(u64),
    /// Uniform over the closed range `[lo, hi]`.
    Uniform { lo: u64, hi: u64 },
    /// Zipf-like heavy-hitter distribution over keys `0..n`: key `k` is
    /// drawn with probability ∝ `(k+1)^-s` (continuous bounded power-law
    /// inversion — rank 0 is the hottest key).
    Zipf { n: u64, s: f64 },
    /// A cycling counter `0, 1, .., n-1, 0, ..` (deterministic sweeps).
    Seq { n: u64 },
}

/// One rate change: from `at_ns` on, gaps follow the new interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    pub at_ns: u64,
    pub interval_ns: u64,
}

/// A parsed generator spec (schema-level; compile with
/// [`GenSpec::compile`] against a checked program).
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    pub name: String,
    pub event: String,
    /// Destination switches; one entry means a fixed destination, more
    /// mean a uniform pick per event.
    pub switches: Vec<u64>,
    /// Base inter-arrival gap, nanoseconds (≥ 1).
    pub interval_ns: u64,
    /// Uniform ± jitter applied to every gap.
    pub jitter_ns: u64,
    pub start_ns: u64,
    /// Inclusive horizon: no event is emitted after this instant.
    pub stop_ns: Option<u64>,
    /// Total event cap.
    pub count: Option<u64>,
    /// Per-generator seed (mixed with the scenario seed).
    pub seed: u64,
    pub args: Vec<ArgDist>,
    /// Rate changes, strictly increasing in `at_ns`.
    pub phases: Vec<Phase>,
}

impl GenSpec {
    /// Instantiate the runtime source. The caller has validated the spec
    /// against the program (event exists, arity matches, switches are in
    /// the topology), so resolution here cannot fail.
    pub fn compile(&self, prog: &CheckedProgram, scenario_seed: u64, index: usize) -> Generator {
        let ev = self.event_info(prog);
        let widths: Vec<u32> = ev
            .params
            .iter()
            .map(|p| p.ty.int_width().unwrap_or(32))
            .collect();
        Generator {
            spec: self.clone(),
            event_id: ev.id,
            widths,
            index,
            rng: Rng::seeded(mix_seed(scenario_seed, self.seed)),
            plans: self.args.iter().map(ArgPlan::of).collect(),
            seq_counters: vec![0; self.args.len()],
            emitted: 0,
            // `count: 0` is a disabled source, not a one-shot: the cap
            // must hold before the first emission too.
            next_time: if self.count == Some(0) {
                None
            } else {
                Some(self.start_ns)
            },
        }
    }

    fn event_info<'p>(&self, prog: &'p CheckedProgram) -> &'p lucid_check::EventInfo {
        prog.info.event(&self.event).expect("validated event name")
    }

    /// Snapshot encoding: the schema-level spec, written field by field
    /// in declaration order (floats as IEEE bit patterns).
    pub(crate) fn encode(&self, w: &mut snap::Writer) {
        w.str(&self.name);
        w.str(&self.event);
        w.u64s(&self.switches);
        w.u64(self.interval_ns);
        w.u64(self.jitter_ns);
        w.u64(self.start_ns);
        w.opt_u64(self.stop_ns);
        w.opt_u64(self.count);
        w.u64(self.seed);
        w.u64(self.args.len() as u64);
        for a in &self.args {
            match *a {
                ArgDist::Const(v) => {
                    w.u8(0);
                    w.u64(v);
                }
                ArgDist::Uniform { lo, hi } => {
                    w.u8(1);
                    w.u64(lo);
                    w.u64(hi);
                }
                ArgDist::Zipf { n, s } => {
                    w.u8(2);
                    w.u64(n);
                    w.f64(s);
                }
                ArgDist::Seq { n } => {
                    w.u8(3);
                    w.u64(n);
                }
            }
        }
        w.u64(self.phases.len() as u64);
        for p in &self.phases {
            w.u64(p.at_ns);
            w.u64(p.interval_ns);
        }
    }

    pub(crate) fn decode(r: &mut snap::Reader<'_>) -> Result<GenSpec, snap::SnapError> {
        let name = r.str()?;
        let event = r.str()?;
        let switches = r.u64s()?;
        let interval_ns = r.u64()?;
        let jitter_ns = r.u64()?;
        let start_ns = r.u64()?;
        let stop_ns = r.opt_u64()?;
        let count = r.opt_u64()?;
        let seed = r.u64()?;
        let nargs = r.len(9, "generator args")?;
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            args.push(match r.u8()? {
                0 => ArgDist::Const(r.u64()?),
                1 => ArgDist::Uniform {
                    lo: r.u64()?,
                    hi: r.u64()?,
                },
                2 => ArgDist::Zipf {
                    n: r.u64()?,
                    s: r.f64()?,
                },
                3 => ArgDist::Seq { n: r.u64()? },
                t => return Err(r.err(format!("bad arg-dist tag {t}"))),
            });
        }
        let nphases = r.len(16, "generator phases")?;
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            phases.push(Phase {
                at_ns: r.u64()?,
                interval_ns: r.u64()?,
            });
        }
        Ok(GenSpec {
            name,
            event,
            switches,
            interval_ns,
            jitter_ns,
            start_ns,
            stop_ns,
            count,
            seed,
            args,
            phases,
        })
    }
}

// ------------------------------------------------------------- generator

/// One compiled flow source: spec + RNG + cursor. Emission is lazy — the
/// next event's time is precomputed (for `peek_ns`) but its payload is
/// drawn only when pulled.
#[derive(Debug, Clone)]
pub struct Generator {
    spec: GenSpec,
    event_id: usize,
    widths: Vec<u32>,
    index: usize,
    rng: Rng,
    /// One compiled [`ArgPlan`] per spec arg, draw-invariant constants
    /// folded once here instead of on every pull.
    plans: Vec<ArgPlan>,
    seq_counters: Vec<u64>,
    emitted: u64,
    /// Time of the next emission; `None` when the source is exhausted.
    next_time: Option<u64>,
}

/// One argument's sampling plan: an [`ArgDist`] with every constant the
/// draw would otherwise re-derive folded at compile time. The zipf
/// curves matter most — inverting the bounded power-law CDF per pull
/// re-computed its normalizer, a `powf`, that only depends on `(n, s)`.
/// Folding is value-preserving: a plan draws bit-identical samples from
/// the same RNG stream as the unfolded distribution.
#[derive(Debug, Clone)]
enum ArgPlan {
    Const(u64),
    Uniform {
        lo: u64,
        span: u64,
    },
    /// Degenerate zipf (`n <= 1`): always key 0, no randomness consumed.
    Zero,
    /// Zipf at `s ≈ 1`: `F(x) = ln x / ln(n+1)`, so `x = (n+1)^u`.
    ZipfLog {
        n: u64,
        nf: f64,
    },
    /// Zipf at `s ≠ 1` with `e = 1 - s`: `x = (1 + u·pow_span)^inv_e`
    /// where `pow_span = (n+1)^e - 1` and `inv_e = 1/e`.
    ZipfPow {
        n: u64,
        pow_span: f64,
        inv_e: f64,
    },
    Seq {
        n: u64,
    },
}

impl ArgPlan {
    fn of(d: &ArgDist) -> ArgPlan {
        match *d {
            ArgDist::Const(v) => ArgPlan::Const(v),
            ArgDist::Uniform { lo, hi } => ArgPlan::Uniform { lo, span: hi - lo },
            ArgDist::Zipf { n, s } => {
                if n <= 1 {
                    ArgPlan::Zero
                } else {
                    let nf = (n + 1) as f64;
                    if (s - 1.0).abs() < 1e-9 {
                        ArgPlan::ZipfLog { n, nf }
                    } else {
                        let e = 1.0 - s;
                        ArgPlan::ZipfPow {
                            n,
                            pow_span: nf.powf(e) - 1.0,
                            inv_e: 1.0 / e,
                        }
                    }
                }
            }
            ArgDist::Seq { n } => ArgPlan::Seq { n },
        }
    }

    /// Draw one value. `seq` is the caller-owned cycling counter for
    /// this argument slot (only [`ArgPlan::Seq`] touches it). The zipf
    /// arms invert the CDF on `x ∈ [1, n+1)`; floor lands in `[1, n]`
    /// and the clamp guards FP edge cases.
    fn sample(&self, rng: &mut Rng, seq: &mut u64) -> u64 {
        match *self {
            ArgPlan::Const(v) => v,
            ArgPlan::Uniform { lo, span } => lo + rng.below_incl(span),
            ArgPlan::Zero => 0,
            ArgPlan::ZipfLog { n, nf } => {
                let u = rng.unit_f64();
                (nf.powf(u) as u64).clamp(1, n) - 1
            }
            ArgPlan::ZipfPow { n, pow_span, inv_e } => {
                let u = rng.unit_f64();
                ((1.0 + u * pow_span).powf(inv_e) as u64).clamp(1, n) - 1
            }
            ArgPlan::Seq { n } => {
                let v = *seq;
                *seq = (v + 1) % n;
                v
            }
        }
    }
}

impl Generator {
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The inter-arrival interval in force at instant `t` (phases are
    /// sorted; the last one at or before `t` wins).
    fn interval_at(&self, t: u64) -> u64 {
        let mut iv = self.spec.interval_ns;
        for p in &self.spec.phases {
            if p.at_ns <= t {
                iv = p.interval_ns;
            } else {
                break;
            }
        }
        iv.max(1)
    }

    /// Advance the cursor past an emission at `t`.
    fn advance(&mut self, t: u64) {
        self.emitted += 1;
        if let Some(c) = self.spec.count {
            if self.emitted >= c {
                self.next_time = None;
                return;
            }
        }
        let iv = self.interval_at(t);
        let gap = if self.spec.jitter_ns == 0 {
            iv
        } else {
            // Uniform in [iv - j, iv + j], floored at zero so time never
            // runs backwards (same-instant bursts are legal; keys break
            // the tie deterministically). Saturating arithmetic keeps
            // absurd library-supplied jitters from overflowing.
            let j = self.spec.jitter_ns;
            let lo = iv.saturating_sub(j);
            let hi = iv.saturating_add(j);
            lo.saturating_add(self.rng.below_incl(hi - lo))
        };
        let next = t.saturating_add(gap);
        self.next_time = match self.spec.stop_ns {
            Some(stop) if next > stop => None,
            _ => Some(next),
        };
    }

    fn draw_args(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.plans.len());
        for (i, p) in self.plans.iter().enumerate() {
            let raw = p.sample(&mut self.rng, &mut self.seq_counters[i]);
            out.push(mask(raw, self.widths.get(i).copied().unwrap_or(32)));
        }
        out
    }

    /// Snapshot encoding: the spec plus the dynamic cursor (RNG state,
    /// seq counters, emission count, next emission time). Compiled
    /// plans and the resolved event are re-derived on load.
    fn encode(&self, w: &mut snap::Writer) {
        self.spec.encode(w);
        for s in self.rng.s {
            w.u64(s);
        }
        w.u64s(&self.seq_counters);
        w.u64(self.emitted);
        w.opt_u64(self.next_time);
    }

    /// Decode one generator for slot `index`, re-resolving its event
    /// against `prog`. The event must still exist with the spec's arity
    /// — a snapshot is only restorable onto a compatible program.
    fn decode(
        r: &mut snap::Reader<'_>,
        prog: &CheckedProgram,
        index: usize,
    ) -> Result<Generator, snap::SnapError> {
        let spec = GenSpec::decode(r)?;
        let Some(ev) = prog.info.event(&spec.event) else {
            return Err(r.err(format!(
                "generator '{}' emits unknown event '{}'",
                spec.name, spec.event
            )));
        };
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = r.u64()?;
        }
        let seq_counters = r.u64s()?;
        if seq_counters.len() != spec.args.len() {
            return Err(r.err(format!(
                "generator '{}' has {} seq counters for {} args",
                spec.name,
                seq_counters.len(),
                spec.args.len()
            )));
        }
        let emitted = r.u64()?;
        let next_time = r.opt_u64()?;
        // Seed value is irrelevant — the whole RNG state is overwritten.
        let mut gen = spec.compile(prog, 0, index);
        gen.event_id = ev.id;
        gen.rng = Rng { s };
        gen.seq_counters = seq_counters;
        gen.emitted = emitted;
        gen.next_time = next_time;
        Ok(gen)
    }
}

impl EventSource for Generator {
    fn peek_ns(&self) -> Option<u64> {
        self.next_time
    }

    fn next_event(&mut self) -> Option<SourcedEvent> {
        let t = self.next_time?;
        let switch = match self.spec.switches.as_slice() {
            [s] => *s,
            many => many[self.rng.below(many.len() as u64) as usize],
        };
        let args = self.draw_args();
        self.advance(t);
        Some(SourcedEvent {
            time_ns: t,
            switch,
            event_id: self.event_id,
            args,
            source: self.index,
        })
    }
}

// -------------------------------------------------------------- workload

/// The merged stream the interpreter drains: all generators of a
/// scenario, pulled in global (time, generator-index) order, optionally
/// capped at a total event budget (`lucidc sim --events N`).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Slotted so [`EventSource::detach_local`] can lend generators out
    /// without shifting the indices the merge order and per-source keys
    /// are built on.
    gens: Vec<Option<Generator>>,
    /// Remaining total-event budget (`None`: uncapped).
    remaining: Option<u64>,
    /// Memoized `(time, index)` of the next source, invalidated on pull.
    /// The drivers peek (sometimes twice) before every pull, so without
    /// this the merge would scan the generator list three times per
    /// event on the hot injection path.
    head: std::cell::Cell<Option<(u64, usize)>>,
}

impl Workload {
    pub fn new(gens: Vec<Generator>, total_cap: Option<u64>) -> Workload {
        Workload {
            gens: gens.into_iter().map(Some).collect(),
            remaining: total_cap,
            head: std::cell::Cell::new(None),
        }
    }

    /// Generator names, in index order (for per-source report rows).
    pub fn names(&self) -> Vec<String> {
        self.gens
            .iter()
            .map(|g| {
                g.as_ref()
                    .map_or_else(String::new, |g| g.name().to_string())
            })
            .collect()
    }

    fn head(&self) -> Option<(u64, usize)> {
        if self.remaining == Some(0) {
            return None;
        }
        if let Some(h) = self.head.get() {
            return Some(h);
        }
        let mut best: Option<(u64, usize)> = None;
        for (i, g) in self.gens.iter().enumerate() {
            if let Some(t) = g.as_ref().and_then(Generator::peek_ns) {
                // Strict `<` keeps the lowest index on ties — the merge
                // order both engines must agree on.
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        self.head.set(best);
        best
    }
}

impl EventSource for Workload {
    fn peek_ns(&self) -> Option<u64> {
        self.head().map(|(t, _)| t)
    }

    fn peek_key(&self) -> Option<(u64, usize)> {
        self.head()
    }

    fn next_event(&mut self) -> Option<SourcedEvent> {
        let (_, i) = self.head()?;
        self.head.set(None);
        let ev = self.gens[i]
            .as_mut()
            .expect("head slot occupied")
            .next_event();
        if ev.is_some() {
            if let Some(r) = &mut self.remaining {
                *r -= 1;
            }
        }
        ev
    }

    fn source_count(&self) -> usize {
        self.gens.len()
    }

    fn detach_local(&mut self, owned: &dyn Fn(u64) -> bool) -> Vec<LocalGen> {
        // A total cap (`--events N`) is consumed in global merge order:
        // which events exist depends on every sibling's stream, so the
        // slots must stay coupled and pulled by one worker.
        if self.remaining.is_some() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (slot, g) in self.gens.iter_mut().enumerate() {
            let single = g.as_ref().and_then(|g| match g.spec.switches.as_slice() {
                // Multi-switch sources draw their destination from
                // the stream RNG per event — splitting one would
                // change the stream. They stay shared.
                [s] if owned(*s) => Some(*s),
                _ => None,
            });
            if let Some(switch) = single {
                out.push(LocalGen {
                    switch,
                    slot,
                    gen: g.take().expect("checked above"),
                });
            }
        }
        self.head.set(None);
        out
    }

    fn reattach_local(&mut self, parts: Vec<LocalGen>) {
        for p in parts {
            debug_assert!(self.gens[p.slot].is_none(), "slot {} occupied", p.slot);
            self.gens[p.slot] = Some(p.gen);
        }
        self.head.set(None);
    }

    fn save_state(&self, out: &mut Vec<u8>) -> bool {
        let mut w = snap::Writer::new();
        w.u64(self.gens.len() as u64);
        for g in &self.gens {
            match g {
                Some(g) => {
                    w.bool(true);
                    g.encode(&mut w);
                }
                // A detached slot can only be observed mid-sharded-run;
                // snapshots are taken between runs, when every lent
                // generator is back. Encode the hole anyway so the
                // format has no unrepresentable state.
                None => w.bool(false),
            }
        }
        w.opt_u64(self.remaining);
        out.extend_from_slice(&w.buf);
        true
    }

    fn load_state(&mut self, prog: &CheckedProgram, bytes: &[u8]) -> Result<(), String> {
        let mut r = snap::Reader::new(bytes);
        let mut inner = || -> Result<Workload, snap::SnapError> {
            let n = r.len(1, "workload slots")?;
            let mut gens = Vec::with_capacity(n);
            for index in 0..n {
                gens.push(if r.bool()? {
                    Some(Generator::decode(&mut r, prog, index)?)
                } else {
                    None
                });
            }
            let remaining = r.opt_u64()?;
            r.expect_end()?;
            Ok(Workload {
                gens,
                remaining,
                head: std::cell::Cell::new(None),
            })
        };
        *self = inner().map_err(|e| e.to_string())?;
        Ok(())
    }

    fn remap_events(&mut self, prog: &CheckedProgram) -> usize {
        let mut disabled = 0;
        for g in self.gens.iter_mut().flatten() {
            match prog.info.event(&g.spec.event) {
                Some(ev) if ev.params.len() == g.widths.len() => {
                    g.event_id = ev.id;
                    g.widths = ev
                        .params
                        .iter()
                        .map(|p| p.ty.int_width().unwrap_or(32))
                        .collect();
                }
                _ => {
                    if g.next_time.is_some() {
                        g.next_time = None;
                        disabled += 1;
                    }
                }
            }
        }
        self.head.set(None);
        disabled
    }

    fn attach_generator(&mut self, mut gen: Generator) -> bool {
        gen.index = self.gens.len();
        self.gens.push(Some(gen));
        self.head.set(None);
        true
    }
}

/// Drive a standalone source through an [`Interp`] until it drains (a
/// library convenience for custom sources; `run_scenario` wires bundled
/// generators through the engines itself).
pub fn drain_into(
    sim: &mut Interp,
    source: impl EventSource + Send + 'static,
    max_events: u64,
    max_time_ns: u64,
) -> Result<(), InterpError> {
    sim.set_source(Box::new(source));
    let r = sim.run(max_events, max_time_ns);
    if sim.source_pending() && r.is_ok() && max_time_ns == u64::MAX {
        return Err(InterpFault::FuelExhausted {
            handled: sim.stats.processed,
        }
        .into());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    const PROG: &str = r#"
        global cts = new Array<<32>>(64);
        memop plus(int m, int x) { return m + x; }
        event pkt(int<<8>> key, int val);
        handle pkt(int<<8>> key, int val) { Array.setm(cts, 0, plus, 1); }
    "#;

    fn spec() -> GenSpec {
        GenSpec {
            name: "g".into(),
            event: "pkt".into(),
            switches: vec![1],
            interval_ns: 100,
            jitter_ns: 30,
            start_ns: 0,
            stop_ns: None,
            count: Some(500),
            seed: 7,
            args: vec![
                ArgDist::Zipf { n: 40, s: 1.2 },
                ArgDist::Uniform { lo: 5, hi: 9 },
            ],
            phases: vec![],
        }
    }

    fn pull_all(src: &mut impl EventSource) -> Vec<SourcedEvent> {
        let mut out = Vec::new();
        while let Some(ev) = src.next_event() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn times_are_nondecreasing_and_count_capped() {
        let prog = parse_and_check(PROG).unwrap();
        let mut g = spec().compile(&prog, 0, 0);
        let evs = pull_all(&mut g);
        assert_eq!(evs.len(), 500);
        for w in evs.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
        assert!(g.peek_ns().is_none());
    }

    #[test]
    fn same_seed_is_bit_identical_different_seed_is_not() {
        let prog = parse_and_check(PROG).unwrap();
        let a = pull_all(&mut spec().compile(&prog, 3, 0));
        let b = pull_all(&mut spec().compile(&prog, 3, 0));
        assert_eq!(a, b);
        let c = pull_all(&mut spec().compile(&prog, 4, 0));
        assert_ne!(a, c, "scenario seed must reshuffle the stream");
    }

    #[test]
    fn args_respect_distributions_and_widths() {
        let prog = parse_and_check(PROG).unwrap();
        let evs = pull_all(&mut spec().compile(&prog, 0, 0));
        let mut hist = [0u64; 40];
        for ev in &evs {
            let key = ev.args[0];
            assert!(key < 40, "zipf key {key} out of range");
            assert!((5..=9).contains(&ev.args[1]), "uniform {}", ev.args[1]);
            hist[key as usize] += 1;
        }
        // Heavy-hitter shape: rank 0 clearly hotter than the median rank.
        assert!(hist[0] > 4 * hist[20].max(1), "zipf skew missing: {hist:?}");
    }

    #[test]
    fn count_zero_is_a_disabled_source() {
        let prog = parse_and_check(PROG).unwrap();
        let mut s = spec();
        s.count = Some(0);
        let mut g = s.compile(&prog, 0, 0);
        assert!(g.peek_ns().is_none(), "count 0 must emit nothing");
        assert!(g.next_event().is_none());
    }

    #[test]
    fn uniform_and_jitter_survive_extreme_bounds() {
        // `hi = u64::MAX` and huge jitters must not overflow (the JSON
        // path caps values at 2^53, but the library path does not).
        let prog = parse_and_check(PROG).unwrap();
        let mut s = spec();
        s.count = Some(50);
        s.jitter_ns = u64::MAX / 2;
        s.args = vec![
            ArgDist::Uniform {
                lo: 0,
                hi: u64::MAX,
            },
            ArgDist::Const(0),
        ];
        let evs = pull_all(&mut s.compile(&prog, 1, 0));
        assert_eq!(evs.len(), 50);
        // The 8-bit first parameter masks the draw; the draws themselves
        // must vary (a wrapped `below(0)` would pin them to `lo`).
        let distinct: std::collections::HashSet<u64> = evs.iter().map(|e| e.args[0]).collect();
        assert!(distinct.len() > 10, "{distinct:?}");
        for w in evs.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
    }

    #[test]
    fn seq_distribution_cycles() {
        let prog = parse_and_check(PROG).unwrap();
        let mut s = spec();
        s.args = vec![ArgDist::Seq { n: 3 }, ArgDist::Const(1)];
        s.count = Some(7);
        let evs = pull_all(&mut s.compile(&prog, 0, 0));
        let keys: Vec<u64> = evs.iter().map(|e| e.args[0]).collect();
        assert_eq!(keys, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn stop_window_and_phase_changes_apply() {
        let prog = parse_and_check(PROG).unwrap();
        let mut s = spec();
        s.jitter_ns = 0;
        s.count = None;
        s.stop_ns = Some(10_000);
        // Burst: 10x the rate from t=5000 on.
        s.phases = vec![Phase {
            at_ns: 5_000,
            interval_ns: 10,
        }];
        let evs = pull_all(&mut s.compile(&prog, 0, 0));
        let before = evs.iter().filter(|e| e.time_ns < 5_000).count();
        let after = evs.len() - before;
        assert_eq!(before, 50, "base rate: one event per 100 ns");
        assert!(after > 400, "burst phase must dominate: {after}");
        assert!(evs.iter().all(|e| e.time_ns <= 10_000));
    }

    #[test]
    fn workload_merges_in_time_then_index_order_and_caps_total() {
        let prog = parse_and_check(PROG).unwrap();
        let mut a = spec();
        a.name = "a".into();
        a.jitter_ns = 0;
        a.count = Some(10);
        let mut b = a.clone();
        b.name = "b".into();
        let w = Workload::new(
            vec![a.compile(&prog, 0, 0), b.compile(&prog, 0, 1)],
            Some(15),
        );
        let mut w = w;
        let evs = pull_all(&mut w);
        assert_eq!(evs.len(), 15, "total cap");
        for pair in evs.windows(2) {
            let k0 = (pair[0].time_ns, pair[0].source);
            let k1 = (pair[1].time_ns, pair[1].source);
            assert!(k0 <= k1, "merge order violated: {k0:?} then {k1:?}");
        }
        // Same instant → source index breaks the tie.
        assert_eq!((evs[0].source, evs[1].source), (0, 1));
    }

    #[test]
    fn zipf_plans_cover_bounds() {
        // Every zipf arm (degenerate, s≈1 log form, s<1 and s>1 power
        // forms) must keep draws inside 0..n across the folded plans.
        let mut rng = Rng::seeded(1);
        let mut seq = 0u64;
        for n in [1u64, 2, 10, 1 << 20] {
            for s in [1.0f64, 1.5, 0.5] {
                let plan = ArgPlan::of(&ArgDist::Zipf { n, s });
                for _ in 0..200 {
                    assert!(plan.sample(&mut rng, &mut seq) < n, "n={n} s={s}");
                }
            }
        }
        assert_eq!(seq, 0, "zipf plans must not touch the seq counter");
    }
}
