//! The event-driven interpreter: a discrete-event simulation of one or more
//! Lucid switches and the network between them.
//!
//! This plays the role of the Lucid interpreter from the paper's artifact
//! ("enables rapid prototyping and testing of data-plane applications
//! without requiring access to the Tofino toolchain"), extended with the
//! timing model of §2: handler execution is one pass through a PISA
//! pipeline, `generate` to the local switch costs one recirculation
//! (~600 ns on a Tofino, Fig. 17), and events sent to a neighbor take a
//! ~1 µs wire hop.
//!
//! # Engines
//!
//! Per-switch state is an independent *shard*: its register arrays, its
//! event queue, and its emission counter. Two drivers execute the shards:
//!
//! * [`Engine::Sequential`] — the reference: one global queue, events
//!   dispatched strictly in `Key` order (virtual time, then origin).
//! * [`Engine::Sharded`] — a conservative parallel discrete-event
//!   simulation: shards are partitioned across a small worker pool, each
//!   worker scheduling its whole slice through one local heap. Workers
//!   run lockstep rounds bounded by an *adaptive horizon* derived from
//!   the wire latency, exchanging cross-worker events through batched
//!   per-round mailboxes at the round barrier. Because a cross-switch
//!   event can never arrive sooner than one wire hop, every event a
//!   worker dispatches below its horizon is final, so each shard
//!   observes exactly the event order the sequential engine would
//!   produce. Successful runs are bit-identical between the two engines:
//!   final array state, statistics, trace, printf output, and metrics
//!   all match (each worker's dispatch log is a key-sorted run; the
//!   global trace is a k-way merge of them at run's end).
//!
//! Error runs differ in bookkeeping only: the sharded engine checks the
//! event budget at epoch barriers (so it may overshoot `max_events`
//! before reporting [`InterpFault::FuelExhausted`]), and a runtime fault
//! aborts the faulting shard's epoch while sibling shards finish theirs.
//! The *reported* error is still deterministic (the fault with the
//! smallest event key wins).

use crate::bytecode::{CompiledProg, ExecMode, OptLevel};
use crate::metrics::{ClassHists, Metrics, ShardMetrics};
use crate::snap;
use crate::value::{lucid_hash, EventVal, Location, Value};
use crate::workload::{EventSource, GenSpec, LocalGen, SourcedEvent, Workload};
use lucid_check::{eval_memop, mask, CheckedProgram, GlobalId};
use lucid_frontend::ast::*;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};

// The sharded engine shares `&CheckedProgram` across worker threads; this
// fails to compile if the checked AST ever grows thread-unsafe interior
// mutability (e.g. `Rc`).
fn _assert_prog_thread_safe() {
    fn check<T: Send + Sync>() {}
    check::<CheckedProgram>();
}

/// Which driver executes the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One global queue, one thread: the reference engine.
    #[default]
    Sequential,
    /// Lockstep-round parallel execution on a worker pool, with adaptive
    /// epoch horizons and batched cross-worker mailboxes.
    Sharded {
        /// Worker threads; `0` means one per available core (capped at
        /// the number of switches).
        workers: usize,
        /// Epoch cap in sim-nanoseconds; `0` (the default) means purely
        /// adaptive horizons sized from observed wire latency. A nonzero
        /// value additionally caps each round's horizon (clamped down to
        /// the wire latency — wider would add nothing).
        epoch_ns: u64,
    },
}

impl Engine {
    /// Parse a CLI/scenario engine name.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "sequential" | "seq" => Some(Engine::Sequential),
            "sharded" | "parallel" => Some(Engine::Sharded {
                workers: 0,
                epoch_ns: 0,
            }),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Sharded { .. } => "sharded",
        }
    }
}

/// Network and hardware timing parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Switch identifiers. Events located at unknown switches are dropped.
    pub switches: Vec<u64>,
    /// One-way latency between any two distinct switches, in nanoseconds.
    /// (§2.1: "sending a message from a switch's data-plane processor to
    /// its neighbor takes around 1 µs".)
    pub link_latency_ns: u64,
    /// Latency of one recirculation pass (§7.4: one recirculation ≈ 600 ns).
    pub recirc_latency_ns: u64,
    /// Which driver to run the shards with.
    pub engine: Engine,
    /// Which executor runs handler bodies (orthogonal to `engine`).
    pub exec: ExecMode,
    /// How hard the bytecode pipeline optimizes (ignored by the AST
    /// walker). Every level is bit-identical; the default is the full
    /// pipeline.
    pub opt: OptLevel,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            switches: vec![1],
            link_latency_ns: 1_000,
            recirc_latency_ns: 600,
            engine: Engine::Sequential,
            exec: ExecMode::Ast,
            opt: OptLevel::default(),
        }
    }
}

impl NetConfig {
    /// A single-switch network (the common case for app tests).
    pub fn single() -> Self {
        Self::default()
    }

    /// A fully-connected network of `n` switches with ids `1..=n`.
    pub fn mesh(n: u64) -> Self {
        NetConfig {
            switches: (1..=n).collect(),
            ..Self::default()
        }
    }

    /// Select the sharded parallel engine (`workers == 0`: one per core).
    pub fn sharded(mut self, workers: usize) -> Self {
        self.engine = Engine::Sharded {
            workers,
            epoch_ns: 0,
        };
        self
    }

    /// Select the bytecode executor.
    pub fn bytecode(mut self) -> Self {
        self.exec = ExecMode::Bytecode;
        self
    }
}

/// A record of one handled event, for assertions and tracing. The event
/// name is shared (`Arc<str>`): every record of the same event points at
/// one interned string, resolved from the id-keyed shard logs when a run
/// surfaces its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handled {
    pub time_ns: u64,
    pub switch: u64,
    pub event: Arc<str>,
    pub args: Vec<u64>,
}

/// The shard-local form of a trace record: the event is an id into the
/// program's event table, interned to an [`Arc<str>`] once when the
/// driver surfaces the record as a [`Handled`] — the dispatch path never
/// allocates or clones a name.
#[derive(Debug)]
struct TraceRec {
    time_ns: u64,
    switch: u64,
    event_id: usize,
    args: Vec<u64>,
}

impl TraceRec {
    fn into_handled(self, names: &[Arc<str>]) -> Handled {
        Handled {
            time_ns: self.time_ns,
            switch: self.switch,
            event: names[self.event_id].clone(),
            args: self.args,
        }
    }
}

/// A shard-local `printf` record. The bytecode executor defers
/// formatting: it records the interned format-string id plus the
/// evaluated values, and the driver renders the line once when the run
/// surfaces its output. The AST walker (and any echoed printf, which
/// must hit stdout immediately) records the formatted line directly.
#[derive(Debug)]
pub(crate) enum OutRec {
    Line(String),
    Fmt { fmt: u16, vals: Vec<Value> },
}

impl OutRec {
    fn render(self, compiled: Option<&CompiledProg>) -> String {
        match self {
            OutRec::Line(s) => s,
            OutRec::Fmt { fmt, vals } => {
                let cp = compiled.expect("deferred printf comes from the bytecode executor");
                format_printf(cp.fmt_str(fmt), &vals)
            }
        }
    }
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Events popped from a queue (handled + exported + dropped-at-switch).
    pub processed: u64,
    /// Events whose handler ran.
    pub handled: u64,
    /// Events generated to the local switch (each costs a recirculation).
    pub recirculated: u64,
    /// Events sent to other switches.
    pub sent_remote: u64,
    /// Events for which no handler exists (treated as exported packets).
    pub exported: u64,
    /// Events dropped because their destination switch does not exist or
    /// is failed.
    pub dropped: u64,
    /// Per-event-name counts of everything dispatched on a live switch
    /// (handled *and* exported events; dropped ones are not counted).
    pub per_event: HashMap<String, u64>,
}

impl Stats {
    /// Move `other`'s counts into `self`, leaving `other` zeroed.
    fn absorb(&mut self, other: &mut Stats) {
        self.processed += other.processed;
        self.handled += other.handled;
        self.recirculated += other.recirculated;
        self.sent_remote += other.sent_remote;
        self.exported += other.exported;
        self.dropped += other.dropped;
        for (name, n) in other.per_event.drain() {
            *self.per_event.entry(name).or_insert(0) += n;
        }
        *other = Stats {
            per_event: std::mem::take(&mut other.per_event),
            ..Stats::default()
        };
    }
}

/// What went wrong at runtime. The checker rules out type errors, so what
/// remains are data-dependent faults — exactly the ones a hardware target
/// would also hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpFault {
    /// Array index outside the declared length.
    IndexOutOfBounds { array: String, index: u64, len: u64 },
    /// The run exceeded its event budget (likely a runaway recursion).
    FuelExhausted { handled: u64 },
    /// An event was scheduled by name that does not exist.
    NoSuchEvent(String),
    /// Wrong number of arguments in an externally injected event.
    BadArity {
        event: String,
        want: usize,
        got: usize,
    },
}

/// Where a fault happened: the deterministic key of the event being
/// handled (or the injection being scheduled) plus its destination
/// switch, so a failing scenario points at the offending event instead
/// of a bare message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAt {
    /// Virtual time of the event, nanoseconds.
    pub time_ns: u64,
    /// Destination switch.
    pub switch: u64,
    /// Event name.
    pub event: String,
    /// `None` for externally injected events, `Some(src)` for events a
    /// handler on switch `src` generated.
    pub origin: Option<u64>,
    /// The event key's tie-breaker: the injection counter (per workload
    /// source, for sourced events) for external events, the per-source
    /// emission counter for generated ones.
    pub seq: u64,
}

impl fmt::Display for FaultAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` on switch {} at {}ns ({})",
            self.event,
            self.switch,
            self.time_ns,
            match self.origin {
                None => format!("injection #{}", self.seq),
                Some(src) => format!("generated by switch {src}, #{}", self.seq),
            }
        )
    }
}

/// Runtime failure: the fault itself plus, when known, the event whose
/// handling (or injection) triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    pub kind: InterpFault,
    pub at: Option<FaultAt>,
}

impl From<InterpFault> for InterpError {
    fn from(kind: InterpFault) -> Self {
        InterpError { kind, at: None }
    }
}

impl InterpError {
    /// Attach a fault location, keeping an earlier (more precise) one.
    pub(crate) fn located(mut self, at: FaultAt) -> Self {
        if self.at.is_none() {
            self.at = Some(at);
        }
        self
    }

    /// One-line JSON rendering (for `lucidc sim --json`).
    pub fn to_json(&self) -> String {
        let kind = match &self.kind {
            InterpFault::IndexOutOfBounds { .. } => "index_out_of_bounds",
            InterpFault::FuelExhausted { .. } => "fuel_exhausted",
            InterpFault::NoSuchEvent(_) => "no_such_event",
            InterpFault::BadArity { .. } => "bad_arity",
        };
        let at = match &self.at {
            None => "null".to_string(),
            Some(at) => format!(
                "{{\"time_ns\":{},\"switch\":{},\"event\":\"{}\",\"origin\":{},\"seq\":{}}}",
                at.time_ns,
                at.switch,
                crate::scenario::json_escape(&at.event),
                at.origin.map_or("null".to_string(), |o| o.to_string()),
                at.seq,
            ),
        };
        format!(
            "{{\"kind\":\"{kind}\",\"msg\":\"{}\",\"at\":{at}}}",
            crate::scenario::json_escape(&self.kind.to_string())
        )
    }
}

impl fmt::Display for InterpFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpFault::IndexOutOfBounds { array, index, len } => write!(
                f,
                "index {index} out of bounds for array `{array}` (len {len})"
            ),
            InterpFault::FuelExhausted { handled } => {
                write!(f, "event budget exhausted after {handled} events")
            }
            InterpFault::NoSuchEvent(n) => write!(f, "no event named `{n}`"),
            InterpFault::BadArity { event, want, got } => {
                write!(f, "event `{event}` wants {want} args, got {got}")
            }
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(at) = &self.at {
            write!(f, " — at {at}")?;
        }
        Ok(())
    }
}

impl std::error::Error for InterpError {}

/// Per-switch persistent state: one `Vec<u64>` per global array, in
/// declaration (= stage) order. Registers reset to zero, as on hardware.
#[derive(Debug, Clone)]
pub struct SwitchState {
    pub arrays: Vec<Vec<u64>>,
}

impl SwitchState {
    fn zeroed(prog: &CheckedProgram) -> Self {
        SwitchState {
            arrays: prog
                .info
                .globals
                .iter()
                .map(|g| vec![0u64; g.len as usize])
                .collect(),
        }
    }
}

/// The deterministic total order on events. Ties in virtual time break on
/// class and origin: externally injected events come first — explicitly
/// scheduled ones (origin 0, in schedule order) before sourced ones (one
/// origin per workload source, in per-source pull order) — then generated
/// events by source switch and per-source emission count. Both engines
/// schedule with the same keys, which is what makes their per-shard
/// execution orders — and therefore their results — identical; no key
/// component depends on *when* an engine materializes the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    time_ns: u64,
    /// 0 = externally injected, 1 = handler-generated.
    class: u8,
    /// Source switch for generated events; for injections, 0 when
    /// explicitly scheduled or `1 + source index` when pulled from an
    /// attached [`EventSource`].
    origin: u64,
    /// Injection counter / per-source pull counter / per-switch emission
    /// counter, matching `class`/`origin`.
    seq: u64,
}

impl Key {
    /// The fault location this key describes, for error reports.
    fn fault_at(&self, switch: u64, event: &str) -> FaultAt {
        FaultAt {
            time_ns: self.time_ns,
            switch,
            event: event.to_string(),
            origin: (self.class == 1).then_some(self.origin),
            seq: self.seq,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Scheduled {
    key: Key,
    /// Destination switch.
    switch: u64,
    event_id: usize,
    args: Vec<u64>,
    /// Virtual instant this entry was enqueued: the emitting shard's
    /// clock for generated events, the arrival time itself for external
    /// injections. `key.time_ns - enq_ns` is the queue residency the
    /// metrics layer records. (Keys are unique, so these trailing fields
    /// never influence the derived `Ord`.)
    enq_ns: u64,
    /// Arrival time of the external injection at the root of this
    /// event's causal chain, inherited across `generate`.
    /// `key.time_ns - root_ns` is the dispatch latency.
    root_ns: u64,
}

/// Flow of control inside a handler body.
enum Flow {
    Normal,
    Returned(Value),
}

/// One switch's independent slice of the simulation: persistent arrays,
/// the local event queue, and run-local buffers that the drivers drain
/// back into the [`Interp`] at barriers.
#[derive(Debug)]
pub(crate) struct Shard {
    switch: u64,
    /// A failed switch keeps its shard (so queued events can be counted
    /// as dropped) but loses its state.
    alive: bool,
    pub(crate) state: SwitchState,
    /// Events parked on a shard between runs. During a run both engines
    /// keep live events elsewhere (the interpreter's global queue, a
    /// worker's own heap); this holds only arrivals stashed for a shard
    /// whose handler faulted, until the driver re-parks them globally.
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Per-source emission counter feeding [`Key::seq`].
    emit_seq: u64,
    /// This shard's virtual clock: the latest event time it has executed.
    pub(crate) now_ns: u64,
    trace: Vec<(Key, TraceRec)>,
    pub(crate) output: Vec<(Key, OutRec)>,
    stats: Stats,
    /// Events generated for *other* switches, awaiting routing.
    outbox: Vec<Scheduled>,
    /// Freelist of argument buffers for [`Scheduled`] events — the
    /// shard's arena. Buffers whose events never reach the trace (drops,
    /// multicast copies) recycle here instead of churning the allocator;
    /// the list holds only cleared buffers, so it is equivalent to a
    /// freshly reset arena at every run start.
    args_pool: Vec<Vec<u64>>,
    /// Reusable bytecode register / object-slot / hash-argument buffers.
    pub(crate) bc_regs: Vec<crate::bytecode::Rv>,
    pub(crate) bc_objs: Vec<crate::bytecode::Obj>,
    pub(crate) bc_hash: Vec<u64>,
    /// Per-event-id dispatch counts; folded into the name-keyed
    /// [`Stats::per_event`] once per run (keeps the dispatch hot path
    /// free of string allocation and hashing).
    per_event_ids: Vec<u64>,
    /// Per-event-id latency histograms, same id-indexed pattern as
    /// `per_event_ids`: lock-free on the dispatch path, folded into the
    /// interpreter-level [`Metrics`] once per run.
    metrics: ShardMetrics,
    /// Root-injection time of the event currently dispatching, so
    /// `generate` can thread the causal chain's root into its emissions.
    cur_root_ns: u64,
}

impl Shard {
    fn new(switch: u64, prog: &CheckedProgram) -> Self {
        Shard {
            switch,
            alive: true,
            state: SwitchState::zeroed(prog),
            queue: BinaryHeap::new(),
            emit_seq: 0,
            now_ns: 0,
            trace: Vec::new(),
            output: Vec::new(),
            stats: Stats::default(),
            outbox: Vec::new(),
            args_pool: Vec::new(),
            bc_regs: Vec::new(),
            bc_objs: Vec::new(),
            bc_hash: Vec::new(),
            per_event_ids: vec![0; prog.info.events.len()],
            metrics: ShardMetrics::new(prog.info.events.len()),
            cur_root_ns: 0,
        }
    }

    /// An empty argument buffer from the shard arena (or a fresh one).
    pub(crate) fn take_args(&mut self) -> Vec<u64> {
        self.args_pool.pop().unwrap_or_default()
    }

    /// Return an argument buffer to the arena once its event is dead.
    pub(crate) fn recycle_args(&mut self, mut buf: Vec<u64>) {
        buf.clear();
        self.args_pool.push(buf);
    }
}

/// The handler-execution engine: immutable program + timing parameters.
/// It mutates exactly one shard at a time, which is what lets the worker
/// pool run shards concurrently.
#[derive(Clone)]
pub(crate) struct Exec {
    prog: Arc<CheckedProgram>,
    recirc_ns: u64,
    link_ns: u64,
    pub(crate) echo: bool,
    /// Whether handled/exported events are retained in the trace. Off,
    /// the per-event record is skipped and its argument buffer goes
    /// straight back to the shard arena — for throughput measurement,
    /// where nobody reads the trace and retaining it taxes every row.
    record_trace: bool,
    /// Compiled bytecode when [`ExecMode::Bytecode`] is selected; `None`
    /// runs the AST walker (the reference semantics).
    compiled: Option<Arc<CompiledProg>>,
}

/// Execution context of one handler activation.
struct ExecCx {
    switch: u64,
    key: Key,
    env: HashMap<String, Value>,
    /// Array-typed function parameters in scope: name → resolved global.
    array_params: Vec<(String, GlobalId)>,
}

impl Exec {
    /// Declared event with no handler: it leaves the simulated network
    /// (e.g. a report exported to a collector). It still counts in
    /// `per_event`, so scenario expectations can assert on exported
    /// reports.
    fn note_exported(&self, shard: &mut Shard, sched: Scheduled) {
        shard.stats.exported += 1;
        shard.per_event_ids[sched.event_id] += 1;
        if !self.record_trace {
            shard.recycle_args(sched.args);
            return;
        }
        shard.trace.push((
            sched.key,
            TraceRec {
                time_ns: sched.key.time_ns,
                switch: sched.switch,
                event_id: sched.event_id,
                args: sched.args,
            },
        ));
    }

    /// Record a handled event's trace entry. Called *after* the handler
    /// body ran (faulted or not) so the schedule entry's args move into
    /// the trace instead of being cloned — observably identical: the
    /// entry lands before the next event dispatches, faulting events
    /// included, and printf output lives in its own keyed buffer.
    fn note_handled(
        &self,
        shard: &mut Shard,
        event_id: usize,
        key: Key,
        switch: u64,
        args: Vec<u64>,
    ) {
        shard.stats.handled += 1;
        if !self.record_trace {
            shard.recycle_args(args);
            return;
        }
        shard.trace.push((
            key,
            TraceRec {
                time_ns: key.time_ns,
                switch,
                event_id,
                args,
            },
        ));
    }

    /// Run one event on its shard. The caller has already popped it from
    /// the shard queue and advanced the shard clock.
    fn dispatch(&self, shard: &mut Shard, sched: Scheduled) -> Result<(), InterpError> {
        // Borrow the event name from the program — the hot path never
        // clones it (only trace records and fault payloads allocate).
        let name = &self.prog.info.events[sched.event_id].name;
        if !shard.alive {
            shard.stats.dropped += 1;
            shard.recycle_args(sched.args);
            return Ok(());
        }

        // Metrics: both measurements are differences of deterministic
        // virtual instants (dispatch time is the event's own key time in
        // either engine), so sequential and sharded runs record
        // identical samples. Dropped events never dispatch and are not
        // measured; handled and exported events both are, matching
        // `per_event` counts. Only derived (class-1) events carry a
        // dispatch-latency sample — an injection is its own root. The
        // root instant is parked on the shard so any `generate` in the
        // handler body inherits it.
        shard.metrics.record(
            sched.event_id,
            (sched.key.class == 1).then(|| sched.key.time_ns - sched.root_ns),
            sched.key.time_ns - sched.enq_ns,
        );
        shard.cur_root_ns = sched.root_ns;

        // Bytecode fast path: flat dispatch over the compiled handler.
        if let Some(cp) = self.compiled.as_deref() {
            return match cp.handler(sched.event_id) {
                Some(h) => {
                    shard.per_event_ids[sched.event_id] += 1;
                    let (key, switch) = (sched.key, sched.switch);
                    let res = cp
                        .run_handler(h, self, shard, switch, key, &sched.args)
                        .map_err(|e| e.located(key.fault_at(switch, name)));
                    self.note_handled(shard, sched.event_id, key, switch, sched.args);
                    res
                }
                None => {
                    self.note_exported(shard, sched);
                    Ok(())
                }
            };
        }

        let Some((params, body)) = self.prog.handler_body(name) else {
            self.note_exported(shard, sched);
            return Ok(());
        };

        shard.per_event_ids[sched.event_id] += 1;
        let mut env: HashMap<String, Value> = HashMap::new();
        for (p, a) in params.iter().zip(&sched.args) {
            env.insert(p.name.name.clone(), value_of(p.ty, *a));
        }
        let mut cx = ExecCx {
            switch: sched.switch,
            key: sched.key,
            env,
            array_params: Vec::new(),
        };
        let body = body.clone();
        let res = self
            .exec_block(shard, &body, &mut cx)
            .map_err(|e| e.located(sched.key.fault_at(sched.switch, name)));
        self.note_handled(shard, sched.event_id, sched.key, sched.switch, sched.args);
        res?;
        Ok(())
    }

    // ------------------------------------------------------------ handlers

    fn exec_block(
        &self,
        shard: &mut Shard,
        b: &Block,
        cx: &mut ExecCx,
    ) -> Result<Flow, InterpError> {
        for s in &b.stmts {
            match self.exec_stmt(shard, s, cx)? {
                Flow::Normal => {}
                r @ Flow::Returned(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&self, shard: &mut Shard, s: &Stmt, cx: &mut ExecCx) -> Result<Flow, InterpError> {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let mut v = self.eval(shard, init, cx)?;
                if let (Some(Ty::Int(w)), Value::Int { v: x, .. }) = (ty, &v) {
                    v = Value::int(*x, *w);
                }
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { name, value } => {
                let v = self.eval(shard, value, cx)?;
                let v = match (cx.env.get(&name.name), v) {
                    (Some(Value::Int { width, .. }), Value::Int { v: x, .. }) => {
                        Value::int(x, *width)
                    }
                    (_, v) => v,
                };
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self
                    .eval(shard, cond, cx)?
                    .as_bool()
                    .expect("checked: bool");
                if c {
                    self.exec_block(shard, then_blk, cx)
                } else if let Some(e) = else_blk {
                    self.exec_block(shard, e, cx)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let v = self.eval(shard, e, cx)?;
                let Value::Event(ev) = v else {
                    panic!("checked: generate of non-event")
                };
                self.emit(shard, ev);
                Ok(Flow::Normal)
            }
            StmtKind::Return(None) => Ok(Flow::Returned(Value::Void)),
            StmtKind::Return(Some(e)) => {
                let v = self.eval(shard, e, cx)?;
                Ok(Flow::Returned(v))
            }
            StmtKind::Printf { fmt, args } => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(shard, a, cx)?);
                }
                let line = format_printf(fmt, &vals);
                if self.echo {
                    println!("[{} @{}ns] {}", cx.switch, shard.now_ns, line);
                }
                shard.output.push((cx.key, OutRec::Line(line)));
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(shard, e, cx)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Schedule a generated event according to its location and delay.
    /// Local targets go straight onto the shard's queue (a recirculation
    /// can land within the current epoch); every other target goes to the
    /// outbox for the driver to route.
    pub(crate) fn emit(&self, shard: &mut Shard, mut ev: EventVal) {
        let from = shard.switch;
        let lat_to = |target: u64| {
            if target == from {
                self.recirc_ns
            } else {
                self.link_ns
            }
        };
        // Unicast (the overwhelmingly common case) moves the event's
        // args straight into the schedule entry: no clone, no target
        // vector. Multicast clones once per member.
        match std::mem::replace(&mut ev.location, Location::Here) {
            Location::Here => {
                let args = std::mem::take(&mut ev.args);
                self.emit_one(shard, from, self.recirc_ns, &ev, args);
            }
            Location::Switch(s) => {
                let args = std::mem::take(&mut ev.args);
                self.emit_one(shard, s, lat_to(s), &ev, args);
            }
            Location::Group(members) => {
                // Each member gets a copy built in an arena buffer; the
                // source buffer itself recycles once the fan-out is done.
                for &m in &members {
                    let mut args = shard.take_args();
                    args.extend_from_slice(&ev.args);
                    self.emit_one(shard, m, lat_to(m), &ev, args);
                }
                shard.recycle_args(std::mem::take(&mut ev.args));
            }
        }
    }

    /// Schedule one copy of a generated event at one target.
    fn emit_one(&self, shard: &mut Shard, target: u64, lat: u64, ev: &EventVal, args: Vec<u64>) {
        let from = shard.switch;
        shard.emit_seq += 1;
        let sched = Scheduled {
            key: Key {
                time_ns: shard.now_ns + lat + ev.delay_ns,
                class: 1,
                origin: from,
                seq: shard.emit_seq,
            },
            switch: target,
            event_id: ev.event_id,
            args,
            enq_ns: shard.now_ns,
            root_ns: shard.cur_root_ns,
        };
        if target == from {
            shard.stats.recirculated += 1;
        } else {
            shard.stats.sent_remote += 1;
        }
        // Both drivers route every emission (recirculation or remote)
        // through the outbox; the caller owns the queue it lands on.
        shard.outbox.push(sched);
    }

    // --------------------------------------------------------- expressions

    fn eval(&self, shard: &mut Shard, e: &Expr, cx: &mut ExecCx) -> Result<Value, InterpError> {
        match &e.kind {
            ExprKind::Int { value, width } => Ok(Value::int(*value, width.unwrap_or(32))),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Var(id) => {
                if let Some(v) = cx.env.get(&id.name) {
                    return Ok(v.clone());
                }
                if id.name == "SELF" {
                    return Ok(Value::int(cx.switch, 32));
                }
                if let Some(c) = self.prog.info.consts.get(&id.name) {
                    return Ok(match c.ty {
                        Ty::Bool => Value::Bool(c.value != 0),
                        Ty::Int(w) => Value::int(c.value, w),
                        _ => Value::int(c.value, 32),
                    });
                }
                if let Some(g) = self.prog.info.groups.get(&id.name) {
                    return Ok(Value::Group(g.members.clone()));
                }
                panic!("checked program has unbound var `{}`", id.name)
            }
            ExprKind::Unary { op, arg } => {
                let v = self.eval(shard, arg, cx)?;
                Ok(match op {
                    UnOp::Not => Value::Bool(!v.as_bool().expect("checked")),
                    UnOp::Neg => match v {
                        Value::Int { v, width } => Value::int(v.wrapping_neg(), width),
                        _ => panic!("checked"),
                    },
                    UnOp::BitNot => match v {
                        Value::Int { v, width } => Value::int(!v, width),
                        _ => panic!("checked"),
                    },
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit the logical connectives.
                if *op == BinOp::And {
                    let l = self.eval(shard, lhs, cx)?.as_bool().expect("checked");
                    if !l {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(
                        self.eval(shard, rhs, cx)?.as_bool().expect("checked"),
                    ));
                }
                if *op == BinOp::Or {
                    let l = self.eval(shard, lhs, cx)?.as_bool().expect("checked");
                    if l {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(
                        self.eval(shard, rhs, cx)?.as_bool().expect("checked"),
                    ));
                }
                let l = self.eval(shard, lhs, cx)?;
                let r = self.eval(shard, rhs, cx)?;
                Ok(eval_binop(*op, &l, &r))
            }
            ExprKind::Cast { width, arg } => {
                let v = self.eval(shard, arg, cx)?.as_int().expect("checked");
                Ok(Value::int(v, *width))
            }
            ExprKind::Hash { width, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(shard, a, cx)?.as_int().expect("checked"));
                }
                let (seed, rest) = vals.split_first().expect("parser: nonempty");
                Ok(Value::int(lucid_hash(*width, *seed, rest), *width))
            }
            ExprKind::Call { callee, args } => {
                // Event constructor.
                if let Some(ev) = self.prog.info.event(&callee.name) {
                    let id = ev.id;
                    let widths: Vec<u32> = ev
                        .params
                        .iter()
                        .map(|p| p.ty.int_width().unwrap_or(32))
                        .collect();
                    let name: std::sync::Arc<str> = ev.name.as_str().into();
                    let mut vals = Vec::with_capacity(args.len());
                    for (a, w) in args.iter().zip(widths) {
                        vals.push(mask(self.eval(shard, a, cx)?.as_int().expect("checked"), w));
                    }
                    return Ok(Value::Event(EventVal {
                        event_id: id,
                        name,
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    }));
                }
                // User function: evaluate args, bind, run body.
                let (_, params, body) = self
                    .prog
                    .fun_body(&callee.name)
                    .expect("checked: function exists");
                let params = params.clone();
                let body = body.clone();
                let mut env = HashMap::new();
                for (p, a) in params.iter().zip(args) {
                    match p.ty {
                        Ty::Array(_) => {
                            // Resolve the array argument to a name usable by
                            // nested Array.* calls: store as a marker value.
                            let gid = self.resolve_array(a, cx);
                            env.insert(p.name.name.clone(), Value::int(gid.0 as u64, 32));
                            cx.array_params.push((p.name.name.clone(), gid));
                        }
                        _ => {
                            let v = self.eval(shard, a, cx)?;
                            env.insert(p.name.name.clone(), v);
                        }
                    }
                }
                let saved_env = std::mem::replace(&mut cx.env, env);
                let array_params_mark = cx.array_params.len();
                let flow = self.exec_block(shard, &body, cx)?;
                cx.env = saved_env;
                cx.array_params.truncate(
                    array_params_mark.saturating_sub(
                        params
                            .iter()
                            .filter(|p| matches!(p.ty, Ty::Array(_)))
                            .count(),
                    ),
                );
                Ok(match flow {
                    Flow::Returned(v) => v,
                    Flow::Normal => Value::Void,
                })
            }
            ExprKind::BuiltinCall { builtin, args, .. } => {
                self.eval_builtin(shard, *builtin, args, cx)
            }
        }
    }

    fn resolve_array(&self, e: &Expr, cx: &ExecCx) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => {
                // A function's array parameter shadows globals.
                if let Some((_, gid)) = cx.array_params.iter().rev().find(|(n, _)| *n == id.name) {
                    return *gid;
                }
                self.prog.info.globals_by_name[&id.name]
            }
            _ => panic!("checked: array argument is a name"),
        }
    }

    fn eval_builtin(
        &self,
        shard: &mut Shard,
        builtin: Builtin,
        args: &[Expr],
        cx: &mut ExecCx,
    ) -> Result<Value, InterpError> {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let gid = self.resolve_array(&args[0], cx);
                let g = self.prog.info.globals[gid.0].clone();
                let idx = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if idx >= g.len {
                    return Err(InterpFault::IndexOutOfBounds {
                        array: g.name.clone(),
                        index: idx,
                        len: g.len,
                    }
                    .into());
                }
                let cur = shard.state.arrays[gid.0][idx as usize];
                let w = g.cell_width;
                match builtin {
                    Builtin::ArrayGet => Ok(Value::int(cur, w)),
                    Builtin::ArrayGetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        Ok(Value::int(eval_memop(&m, cur, local, w), w))
                    }
                    Builtin::ArraySet => {
                        let v = self.eval(shard, &args[2], cx)?.as_int().expect("checked");
                        shard.state.arrays[gid.0][idx as usize] = mask(v, w);
                        Ok(Value::Void)
                    }
                    Builtin::ArraySetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        shard.state.arrays[gid.0][idx as usize] = eval_memop(&m, cur, local, w);
                        Ok(Value::Void)
                    }
                    Builtin::ArrayUpdate => {
                        let getop = self.memop_of(&args[2]);
                        let getarg = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        let setop = self.memop_of(&args[4]);
                        let setarg = self.eval(shard, &args[5], cx)?.as_int().expect("checked");
                        let ret = eval_memop(&getop, cur, getarg, w);
                        shard.state.arrays[gid.0][idx as usize] =
                            eval_memop(&setop, cur, setarg, w);
                        Ok(Value::int(ret, w))
                    }
                    _ => unreachable!(),
                }
            }
            Builtin::EventDelay => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let d_us = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.delay_ns += d_us * 1_000;
                }
                Ok(v)
            }
            Builtin::EventLocate => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let loc = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Switch(loc);
                }
                Ok(v)
            }
            Builtin::EventMLocate => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let Value::Group(g) = self.eval(shard, &args[1], cx)? else {
                    panic!("checked: group")
                };
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Group(g);
                }
                Ok(v)
            }
            Builtin::SysTime => Ok(Value::int(shard.now_ns / 1_000, 32)),
            Builtin::SysSelf => Ok(Value::int(cx.switch, 32)),
            Builtin::SysPort => Ok(Value::int(0, 32)),
        }
    }

    fn memop_of(&self, e: &Expr) -> lucid_check::MemopIr {
        match &e.kind {
            ExprKind::Var(id) => self.prog.memops[&id.name].clone(),
            _ => panic!("checked: memop position holds a name"),
        }
    }
}

// ------------------------------------------------------------------ pool
//
// The sharded driver is coordinator-free: the calling thread doubles as
// worker 0 and every worker runs the identical lockstep round protocol
// against a handful of shared cells. Each round has two phases separated
// by barriers:
//
//   P1  drain this worker's mailbox into its event heap, then publish
//       one word of "activity" — the earliest virtual instant this
//       worker could still produce work at (min over its heap head and
//       its partitioned sources' next emissions).
//   P2  every worker reads all published words and computes the same
//       reduction, so all of them agree — with no messages — on whether
//       to stop (drained / fuel / fault) and on each worker's *horizon*:
//       how far its shards may run this round.
//
// The horizon is adaptive per worker (a conservative null-message bound
// in the CMB tradition): worker `w` may process strictly below
// `min(min(other workers' activity) + link, global min + 2·link)`. The
// first term bounds arrivals from events already queued on a sibling
// (one wire hop past its floor); the second bounds arrivals from chain
// events still in flight — in-flight mail is itself at least one hop
// past some worker's floor, so its re-emissions are two hops past the
// global minimum. Both are needed: the first alone lets a worker's own
// emissions bounce off a sibling and return below its already-consumed
// frontier. The global laggard therefore gets a double-wide window and
// everyone else the classic conservative one — and with one worker the
// horizon is unbounded, so the round loop degrades into a straight
// single-threaded drain with no synchronization cost.
//
// Cross-worker events are not exchanged per event: a round's emissions
// accumulate into per-destination batches and are appended to the
// destination's mailbox with one lock per (destination, round). Mail
// sent in round `k` is drained at round `k+1`'s P1, which is sound
// because a mailed arrival is at least one wire hop past its emitter's
// published activity — at or beyond every receiver horizon of round `k`.

/// How many sourced events a driver materializes per refill. Chunking
/// amortizes the per-pull dispatch overhead while keeping in-flight
/// memory bounded by the frontier; correctness never depends on the
/// chunk size because sourced keys are pull-order-independent.
const SOURCE_CHUNK: usize = 64;

/// The per-worker shared cells. Plain `std` sync everywhere: the round
/// barriers provide the happens-before edges, so the atomics only need
/// `Relaxed` ordering.
#[derive(Default)]
struct WorkerCell {
    /// Cross-worker deliveries, appended in per-round batches.
    mailbox: Mutex<Vec<Scheduled>>,
    /// The worker's published activity floor (`u64::MAX`: idle).
    activity: AtomicU64,
    /// Cumulative events processed, published once per round.
    processed: AtomicU64,
}

/// Why the round loop stopped (every worker computes the same answer;
/// the driver reads worker 0's).
#[derive(Clone, Copy, PartialEq, Eq)]
enum StopWhy {
    /// Queues and sources drained, or the time horizon passed.
    Done,
    /// The event budget ran out (or the last round overshot it).
    Fuel,
    /// A handler faulted; the smallest-key fault is in the shared cell.
    Fault,
    /// The barrier was fused by a panicking sibling.
    Died,
}

/// A switch-id lookup table on the per-event routing path. Configs
/// number switches densely from 1, so the common case is a flat-array
/// read; arbitrary ids fall back to hashing. (The hash map's per-event
/// SipHash showed up directly in the workers=1-vs-sequential ratio.)
enum SwitchMap {
    Dense(Vec<u32>),
    Sparse(HashMap<u64, u32>),
}

impl SwitchMap {
    const NONE: u32 = u32::MAX;

    /// Build from `(switch id, value)` pairs; values must be below
    /// [`Self::NONE`].
    fn build(pairs: &[(u64, u32)]) -> SwitchMap {
        let max = pairs.iter().map(|&(id, _)| id).max().unwrap_or(0);
        // Dense storage pays one u32 per id up to the largest; cap the
        // slack at a few KiB beyond what the entry count justifies.
        if (max as usize) < pairs.len() * 4 + 1024 {
            let mut v = vec![Self::NONE; max as usize + 1];
            for &(id, w) in pairs {
                v[id as usize] = w;
            }
            SwitchMap::Dense(v)
        } else {
            SwitchMap::Sparse(pairs.iter().map(|&(id, w)| (id, w)).collect())
        }
    }

    #[inline]
    fn get(&self, id: u64) -> Option<u32> {
        let w = match self {
            SwitchMap::Dense(v) => usize::try_from(id)
                .ok()
                .and_then(|i| v.get(i).copied())
                .unwrap_or(Self::NONE),
            SwitchMap::Sparse(m) => m.get(&id).copied().unwrap_or(Self::NONE),
        };
        (w != Self::NONE).then_some(w)
    }
}

/// Shared read-only round state (cells, reductions, network constants).
struct RoundCtx<'a> {
    cells: &'a [WorkerCell],
    /// Head time of the shared (non-partitioned) source, `u64::MAX` when
    /// exhausted or absent. Published by worker 0, read by everyone:
    /// shared arrivals carry their own absolute times, so every horizon
    /// is clamped at this instant.
    shared_peek: &'a AtomicU64,
    /// Sourced events bound for unknown switches (dropped, counted).
    dropped: &'a AtomicU64,
    /// The smallest-key fault of the run, min-merged by every worker.
    fault: &'a Mutex<Option<(Key, InterpError)>>,
    barrier: &'a RoundBarrier,
    /// switch id → owning worker.
    owner: &'a SwitchMap,
    link_ns: u64,
    /// Explicit `epoch_ns` override: an additional cap of
    /// `global_min + epoch` on every horizon (narrower rounds, same
    /// results). `None` is the adaptive default.
    epoch_cap: Option<u64>,
    max_events: u64,
    max_time_ns: u64,
}

/// A reusable rendezvous replacing [`std::sync::Barrier`] with one that
/// can be *fused*: a worker that unwinds mid-round breaks the barrier on
/// the way out ([`FuseOnPanic`]), waking every sibling with an error
/// instead of leaving them blocked on a rendezvous that can no longer
/// complete. (`std`'s barrier has no such escape hatch, and a panicking
/// handler — AST-walker invariants panic — must not deadlock the pool.)
struct RoundBarrier {
    /// (arrived, generation, fused)
    state: Mutex<(usize, u64, bool)>,
    cv: Condvar,
    n: usize,
}

impl RoundBarrier {
    fn new(n: usize) -> Self {
        RoundBarrier {
            state: Mutex::new((0, 0, false)),
            cv: Condvar::new(),
            n,
        }
    }

    /// Rendezvous with the other `n - 1` workers. `Err(())` means the
    /// barrier was fused and the round protocol is dead.
    fn wait(&self) -> Result<(), ()> {
        let mut st = self.state.lock().expect("barrier state");
        if st.2 {
            return Err(());
        }
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let generation = st.1;
        while st.1 == generation && !st.2 {
            st = self.cv.wait(st).expect("barrier wait");
        }
        if st.2 {
            Err(())
        } else {
            Ok(())
        }
    }

    fn fuse(&self) {
        let mut st = self.state.lock().expect("barrier state");
        st.2 = true;
        self.cv.notify_all();
    }
}

/// Fuses the round barrier if the owning worker unwinds, so siblings
/// exit their round loop instead of blocking forever; the panic itself
/// still propagates through the scope join.
struct FuseOnPanic<'a>(&'a RoundBarrier);

impl Drop for FuseOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.fuse();
        }
    }
}

/// A min-queue of [`Scheduled`] events built as an index heap over a
/// slab: the binary heap orders compact `(Key, slot)` pairs while the
/// much larger payloads stay put in a pooled slab, so every heap sift
/// moves less than half the bytes a `BinaryHeap<Scheduled>` would, and
/// head peeks never touch the slab at all. Keys are globally unique,
/// so pair order is exactly the key order the engine contract
/// requires. A popped slot leaves a dead record behind (empty args —
/// no allocation) and recycles through a freelist. Both drivers
/// schedule through this: the sequential loop directly, each sharded
/// worker for its own per-worker heap.
#[derive(Default)]
struct SchedHeap {
    pool: Vec<Scheduled>,
    free: Vec<u32>,
    heap: BinaryHeap<Reverse<(Key, u32)>>,
}

impl SchedHeap {
    fn with_capacity(n: usize) -> Self {
        SchedHeap {
            pool: Vec::with_capacity(n),
            free: Vec::new(),
            heap: BinaryHeap::with_capacity(n),
        }
    }

    fn dead() -> Scheduled {
        Scheduled {
            key: Key {
                time_ns: 0,
                class: 0,
                origin: 0,
                seq: 0,
            },
            switch: 0,
            event_id: 0,
            args: Vec::new(),
            enq_ns: 0,
            root_ns: 0,
        }
    }

    fn push(&mut self, s: Scheduled) {
        let key = s.key;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.pool[slot as usize] = s;
                slot
            }
            None => {
                self.pool.push(s);
                u32::try_from(self.pool.len() - 1).expect("in-flight events fit u32")
            }
        };
        self.heap.push(Reverse((key, slot)));
    }

    /// Key of the minimum pending event, straight off the heap head.
    fn peek_key(&self) -> Option<Key> {
        self.heap.peek().map(|&Reverse((k, _))| k)
    }

    fn pop(&mut self) -> Option<Scheduled> {
        let Reverse((_, slot)) = self.heap.pop()?;
        self.free.push(slot);
        Some(std::mem::replace(
            &mut self.pool[slot as usize],
            Self::dead(),
        ))
    }

    /// Tear down into the undispatched events, in no particular order.
    fn into_events(self) -> impl Iterator<Item = Scheduled> {
        let mut pool = self.pool;
        self.heap.into_iter().map(move |Reverse((_, slot))| {
            std::mem::replace(&mut pool[slot as usize], Self::dead())
        })
    }
}

/// What a worker hands back when the round loop stops.
struct WorkerOut {
    shards: Vec<Shard>,
    /// Undispatched events (above the final horizon, or past a stop).
    heap: SchedHeap,
    /// This worker's dispatch log, already in global key order (one
    /// worker's dispatches are totally ordered), merged across workers
    /// once at run end.
    trace: Vec<(Key, TraceRec)>,
    output: Vec<(Key, OutRec)>,
    /// Partitioned sources, cursors advanced to wherever the run ended.
    locals: Vec<LocalGen>,
    /// Per-source pull counters (authoritative for this worker's slots).
    counts: Vec<u64>,
    why: StopWhy,
    /// Events processed across all workers at stop time (identical on
    /// every worker; the driver reads worker 0's).
    total: u64,
}

/// What a worker starts the round loop with — the input counterpart of
/// [`WorkerOut`].
struct WorkerSeed {
    shards: Vec<Shard>,
    /// Pending events already owned by this worker's shards.
    heap: SchedHeap,
    /// Partitioned single-switch generators owned by this worker.
    locals: Vec<LocalGen>,
    /// Per-source pull counters (a full-width copy; each worker advances
    /// only its own slots).
    counts: Vec<u64>,
}

/// The lockstep round loop every worker (including the calling thread,
/// as worker 0) runs until all of them agree to stop. `shared` is the
/// non-partitioned remainder of the event source; only worker 0 holds
/// it and materializes its stream one window ahead, mailing each event
/// to its owner.
#[allow(clippy::too_many_lines)]
fn run_round_worker(
    ctx: &RoundCtx<'_>,
    exec: &Exec,
    id: usize,
    seed: WorkerSeed,
    mut shared: Option<&mut Box<dyn EventSource + Send>>,
) -> WorkerOut {
    let WorkerSeed {
        mut shards,
        mut heap,
        mut locals,
        mut counts,
    } = seed;
    let _fuse = FuseOnPanic(ctx.barrier);
    let nworkers = ctx.cells.len();
    let mut outgoing: Vec<Vec<Scheduled>> = (0..nworkers).map(|_| Vec::new()).collect();
    // switch id → index into this worker's `shards` (hot: every dispatch
    // resolves its shard through it).
    let at = SwitchMap::build(
        &shards
            .iter()
            .enumerate()
            .map(|(i, s)| (s.switch, u32::try_from(i).expect("shard count fits u32")))
            .collect::<Vec<_>>(),
    );
    let local = |id: u64| at.get(id).expect("routed to owning worker") as usize;
    let mut trace: Vec<(Key, TraceRec)> = Vec::new();
    let mut output: Vec<(Key, OutRec)> = Vec::new();
    // Scratch buffer for chunked source pulls, reused across rounds.
    let mut batch: Vec<SourcedEvent> = Vec::new();
    // A shard whose handler faulted sits out the rest of the run (its
    // siblings still finish the round, exactly like the old per-epoch
    // engine); the next round's reduction sees the fault and stops.
    let mut poisoned = vec![false; shards.len()];
    let mut cum = 0u64;
    let mut round_err: Option<(Key, InterpError)> = None;
    let (why, total) = loop {
        // ---- P1: drain mail, publish the previous round's results and
        // this worker's activity floor. Everything any decision reads is
        // written here, before the rendezvous — the P2-end barrier keeps
        // a fast worker's next P1 writes from racing a slow worker's
        // current decision reads.
        let mail = std::mem::take(&mut *ctx.cells[id].mailbox.lock().expect("mailbox"));
        for s in mail {
            heap.push(s);
        }
        ctx.cells[id].processed.store(cum, Relaxed);
        if let Some((k, e)) = round_err.take() {
            let mut cell = ctx.fault.lock().expect("fault cell");
            if cell.as_ref().is_none_or(|(fk, _)| k < *fk) {
                *cell = Some((k, e));
            }
        }
        let mut act = heap.peek_key().map_or(u64::MAX, |k| k.time_ns);
        for ls in &locals {
            if let Some(t) = ls.gen.peek_ns() {
                act = act.min(t);
            }
        }
        ctx.cells[id].activity.store(act, Relaxed);
        if let Some(src) = shared.as_deref() {
            ctx.shared_peek
                .store(src.peek_ns().unwrap_or(u64::MAX), Relaxed);
        }
        if ctx.barrier.wait().is_err() {
            break (StopWhy::Died, 0);
        }

        // ---- Decision: every worker computes the identical reduction
        // from the published cells, so they agree without messages.
        let speek = ctx.shared_peek.load(Relaxed);
        let mut gmin = speek;
        let mut min_other = u64::MAX;
        let mut total = 0u64;
        for (w, cell) in ctx.cells.iter().enumerate() {
            let a = cell.activity.load(Relaxed);
            gmin = gmin.min(a);
            if w != id {
                min_other = min_other.min(a);
            }
            total += cell.processed.load(Relaxed);
        }
        if ctx.fault.lock().expect("fault cell").is_some() {
            break (StopWhy::Fault, total);
        }
        // Overshoot from the previous round outranks "drained": each
        // worker gets the full remaining budget, so a draining round can
        // still blow past it — report fuel exhaustion exactly like the
        // sequential engine would have at event `max_events + 1`.
        if total > ctx.max_events {
            break (StopWhy::Fuel, total);
        }
        if gmin == u64::MAX || gmin > ctx.max_time_ns {
            break (StopWhy::Done, total);
        }
        if total >= ctx.max_events {
            break (StopWhy::Fuel, total);
        }

        // ---- P2: process strictly below this worker's adaptive horizon.
        // Two bounds, both needed: an arrival from an event already
        // queued on a sibling is at least one wire hop past that
        // sibling's activity floor (`min_other + link`), while an
        // arrival from a *chain* event that is still in flight is at
        // least two hops past the global minimum (`gmin + 2*link` —
        // in-flight mail is itself a hop past some floor). The laggard
        // therefore gets a double-wide window and everyone else the
        // classic conservative one; a lone worker has no cross-worker
        // causality at all and drains without bound. Shared-source
        // arrivals carry absolute times, so the stream head clamps
        // every horizon.
        let mut horizon = if nworkers == 1 {
            // A lone worker merges the shared stream head straight into
            // its dispatch scan (below), so nothing clamps it: the whole
            // run drains in one round with no synchronization at all.
            u64::MAX
        } else {
            min_other
                .saturating_add(ctx.link_ns)
                .min(gmin.saturating_add(ctx.link_ns.saturating_mul(2)))
                .min(speek)
        };
        if let Some(epoch) = ctx.epoch_cap {
            horizon = horizon.min(gmin.saturating_add(epoch));
        }
        horizon = horizon.min(ctx.max_time_ns.saturating_add(1));
        let budget = ctx.max_events - total;

        // With siblings to feed, worker 0 materializes the shared stream
        // one window ahead and mails each event to its owner (delivered
        // next round; sound because every sibling horizon is clamped at
        // the published stream head). Keys are pull-order-independent,
        // so pulling ahead of execution cannot perturb the schedule.
        if nworkers > 1 {
            if let Some(src) = shared.as_deref_mut() {
                let width = ctx.epoch_cap.unwrap_or(ctx.link_ns);
                let pull_end = gmin
                    .saturating_add(width)
                    .min(ctx.max_time_ns.saturating_add(1));
                loop {
                    batch.clear();
                    src.next_batch(pull_end.saturating_sub(1), SOURCE_CHUNK, &mut batch);
                    if batch.is_empty() {
                        break;
                    }
                    for ev in batch.drain(..) {
                        let sched = shape_sourced(&exec.prog, &mut counts, ev);
                        match ctx.owner.get(sched.switch) {
                            Some(w) if w as usize == id => heap.push(sched),
                            Some(w) => outgoing[w as usize].push(sched),
                            None => {
                                ctx.dropped.fetch_add(1, Relaxed);
                            }
                        }
                    }
                }
            }
        }

        /// What the dispatch scan picked as the globally-next item.
        enum Pick {
            Queued,
            Local(usize),
            Shared,
        }
        let mut done = 0u64;
        // Minimum time over every source head this worker can still pull
        // (partitioned locals, plus the shared stream for a lone
        // worker). Source heads move only on pulls, so the scan below
        // refreshes this and the pull arms invalidate it; between
        // pulls, dispatching a queued head strictly below the floor
        // costs one integer compare instead of rebuilding and comparing
        // a source key per head per event.
        let mut src_floor: Option<u64> = None;
        while done < budget {
            // Smallest key among this worker's event heap and its
            // partitioned source heads. One heap spans all of the
            // worker's shards: its shards must interleave in global key
            // order anyway (a sibling shard's emission can land below
            // the horizon and has to sort between the events already
            // queued), so a single pop beats a per-shard head scan.
            let mut best: Option<(Key, Pick)> = None;
            if let Some(k) = heap.peek_key() {
                if k.time_ns < horizon {
                    best = Some((k, Pick::Queued));
                }
            }
            // Any source event's key starts at its head time, so a
            // queued head strictly below every source head wins without
            // a scan. Ties (and an empty or over-horizon heap) fall
            // through to the full key comparison.
            let scan = match (&best, src_floor) {
                (Some((k, _)), Some(f)) => k.time_ns >= f,
                _ => true,
            };
            if scan {
                let mut floor = u64::MAX;
                for (i, ls) in locals.iter().enumerate() {
                    if let Some(t) = ls.gen.peek_ns() {
                        floor = floor.min(t);
                        if t < horizon {
                            let key = Key {
                                time_ns: t,
                                class: 0,
                                origin: ls.slot as u64 + 1,
                                seq: counts.get(ls.slot).copied().unwrap_or(0) + 1,
                            };
                            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                                best = Some((key, Pick::Local(i)));
                            }
                        }
                    }
                }
                // A lone worker owns every shard, so the shared stream
                // needs no mailing ahead: its head competes in the scan
                // under its exact schedule key and is pulled in chunks.
                if nworkers == 1 {
                    if let Some((t, slot)) = shared.as_deref().and_then(|s| s.peek_key()) {
                        floor = floor.min(t);
                        if t < horizon {
                            let key = Key {
                                time_ns: t,
                                class: 0,
                                origin: slot as u64 + 1,
                                seq: counts.get(slot).copied().unwrap_or(0) + 1,
                            };
                            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                                best = Some((key, Pick::Shared));
                            }
                        }
                    }
                }
                src_floor = Some(floor);
            }
            // Sourced keys are pull-order-independent, so a pull may
            // materialize any prefix of a stream without perturbing the
            // schedule. Cap each pull at the queued head (never below
            // the winning source head's own time, so a time tie still
            // makes progress): events past the queued head would only
            // sit in the heap adding sift depth to every push, exactly
            // the frontier the sequential driver's head-bounded refill
            // avoids.
            let pull_bound = |bk: Key, heap: &SchedHeap| {
                heap.peek_key()
                    .map_or(u64::MAX, |k| k.time_ns.saturating_sub(1).max(bk.time_ns))
                    .min(horizon.saturating_sub(1))
            };
            match best {
                None => break,
                Some((bk, Pick::Local(i))) => {
                    // Drain this generator's window below the cap in
                    // chunks: every one of these events is due below the
                    // horizon, so materializing them now (instead of one
                    // per scan) cannot change any key.
                    batch.clear();
                    locals[i]
                        .gen
                        .next_batch(pull_bound(bk, &heap), SOURCE_CHUNK, &mut batch);
                    for ev in batch.drain(..) {
                        heap.push(shape_sourced(&exec.prog, &mut counts, ev));
                    }
                    src_floor = None;
                    continue;
                }
                Some((bk, Pick::Shared)) => {
                    let bound = pull_bound(bk, &heap);
                    let src = shared.as_deref_mut().expect("peeked");
                    batch.clear();
                    src.next_batch(bound, SOURCE_CHUNK, &mut batch);
                    for ev in batch.drain(..) {
                        let sched = shape_sourced(&exec.prog, &mut counts, ev);
                        if ctx.owner.get(sched.switch).is_some() {
                            heap.push(sched);
                        } else {
                            ctx.dropped.fetch_add(1, Relaxed);
                        }
                    }
                    src_floor = None;
                    continue;
                }
                Some((_, Pick::Queued)) => {}
            }
            let sched = heap.pop().expect("peeked");
            let idx = local(sched.switch);
            if poisoned[idx] {
                // A faulted shard sits out the rest of the run; stash
                // its arrivals on the shard's own queue (off the hot
                // path) so the driver parks them for a later run.
                shards[idx].queue.push(Reverse(sched));
                continue;
            }
            let shard = &mut shards[idx];
            shard.now_ns = shard.now_ns.max(sched.key.time_ns);
            done += 1;
            let key = sched.key;
            if let Err(e) = exec.dispatch(shard, sched) {
                // Keep the smallest-key fault; this shard sits out the
                // rest of the run. Its partial emissions still route
                // below, exactly like the sequential engine's.
                if round_err.as_ref().is_none_or(|(k, _)| key < *k) {
                    round_err = Some((key, e));
                }
                poisoned[idx] = true;
            }
            // Route what the handler produced: same-worker siblings get
            // immediate delivery (their arrivals can precede this round's
            // horizon), remote workers get batched into the outgoing
            // mail, flushed once per round.
            let mut produced = std::mem::take(&mut shards[idx].outbox);
            for ev in produced.drain(..) {
                match ctx.owner.get(ev.switch) {
                    Some(w) if w as usize == id => heap.push(ev),
                    Some(w) => outgoing[w as usize].push(ev),
                    None => {
                        shards[idx].stats.dropped += 1;
                        shards[idx].recycle_args(ev.args);
                    }
                }
            }
            shards[idx].outbox = produced;
            // Surface the dispatch's buffers into the worker-run log in
            // pop order, which already is this worker's global key order.
            trace.append(&mut shards[idx].trace);
            output.append(&mut shards[idx].output);
            // A lone worker's round would otherwise be the whole run —
            // stop at the first fault (which, in single-worker key
            // order, is necessarily the smallest-key fault).
            if nworkers == 1 && round_err.is_some() {
                break;
            }
        }

        // ---- End of round: flush the outgoing mail, one batched append
        // per destination worker. The count and any fault are published
        // at the next P1; appending here is safe because a mailbox is
        // only drained at its owner's P1, on the far side of the P2-end
        // barrier from every append.
        cum += done;
        for (w, batch) in outgoing.iter_mut().enumerate() {
            if !batch.is_empty() {
                ctx.cells[w].mailbox.lock().expect("mailbox").append(batch);
            }
        }
        if ctx.barrier.wait().is_err() {
            break (StopWhy::Died, 0);
        }
    };
    WorkerOut {
        shards,
        heap,
        trace,
        output,
        locals,
        counts,
        why,
        total,
    }
}

/// Shape one sourced event into a scheduled class-0 injection, assigning
/// the key `(time, class 0, origin = source index + 1, seq = per-source
/// pull count)` and bumping that source's counter (dropped events count
/// too, mirroring the per-generator report rows).
///
/// Keying sourced injections per *source* rather than by a global pull
/// counter is what lets the sharded engine pull partitioned sources
/// worker-locally: the key depends only on the source's own stream
/// position, never on how pulls interleave globally. The total order is
/// unchanged: [`crate::workload::Workload`] merges sources in (time,
/// source-index) order with nondecreasing times per source — exactly the
/// (time, origin, seq) order these keys encode — and explicitly scheduled
/// events keep `origin = 0`, winning time-ties just as their lower global
/// pull order did.
fn shape_sourced(
    prog: &CheckedProgram,
    counts: &mut Vec<u64>,
    ev: crate::workload::SourcedEvent,
) -> Scheduled {
    if ev.source >= counts.len() {
        // Custom sources may misreport `source_count`; grow rather than
        // lose the per-source sequencing both engines must agree on.
        counts.resize(ev.source + 1, 0);
    }
    counts[ev.source] += 1;
    let params = &prog.info.events[ev.event_id].params;
    // Exactly one value per parameter, masked to its width — short
    // custom-source arg lists pad with zeros rather than leaving handler
    // parameters unbound.
    let args = params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            mask(
                ev.args.get(i).copied().unwrap_or(0),
                p.ty.int_width().unwrap_or(32),
            )
        })
        .collect();
    Scheduled {
        key: Key {
            time_ns: ev.time_ns,
            class: 0,
            origin: ev.source as u64 + 1,
            seq: counts[ev.source],
        },
        switch: ev.switch,
        event_id: ev.event_id,
        args,
        // An injection roots its own causal chain and spends no virtual
        // time queued, so both metric baselines are the key time.
        enq_ns: ev.time_ns,
        root_ns: ev.time_ns,
    }
}

/// The interpreter. Owns the checked program (shared via `Arc` so sessions,
/// snapshots, and hot-swap can hold the world without a borrow) and all
/// simulation state.
pub struct Interp {
    prog: Arc<CheckedProgram>,
    pub config: NetConfig,
    /// One shard per configured switch, keyed by switch id.
    shards: BTreeMap<u64, Shard>,
    /// Pending events between runs (and the sequential driver's queue).
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Injection counter feeding [`Key::seq`] for external events.
    inj_seq: u64,
    /// Simulation clock, nanoseconds.
    pub now_ns: u64,
    /// Every handled event, in deterministic `Key` order. Cleared with
    /// [`Interp::clear_trace`].
    pub trace: Vec<Handled>,
    /// Interned event names, one `Arc<str>` per event id; every
    /// [`Handled`] record resolves its name here with a refcount bump
    /// when the id-keyed shard logs surface into `trace`.
    names: Vec<Arc<str>>,
    /// `printf` output lines, in the same deterministic order.
    pub output: Vec<String>,
    pub stats: Stats,
    /// When true, `printf` also writes to stdout.
    pub echo: bool,
    /// When false, handled/exported events are not retained in `trace`
    /// (statistics, per-event counts, metrics, and `printf` output are
    /// unaffected). Defaults to true; benchmarks turn it off so rows
    /// don't pay for a per-event log nobody reads.
    record_trace: bool,
    /// Lazily compiled bytecode, populated when [`NetConfig::exec`] is
    /// [`ExecMode::Bytecode`] (shared with the worker pool).
    compiled: Option<Arc<CompiledProg>>,
    /// Attached streaming injection source ([`Interp::set_source`]). Both
    /// drivers drain it lazily — events materialize only when due, so a
    /// ten-million-event workload never builds an event vector.
    source: Option<Box<dyn EventSource + Send>>,
    /// Events injected per source index (for per-generator report rows).
    source_counts: Vec<u64>,
    /// Per-class latency histograms folded out of the shards once per
    /// run, keyed (switch, event name) for deterministic order. Each
    /// class lives on exactly one shard and histogram merge commutes, so
    /// both engines accumulate bit-identical content here.
    metrics_acc: BTreeMap<(u64, String), ClassHists>,
}

impl Interp {
    /// Build a world from a borrowed program (clones it into a shared
    /// [`Arc`]; use [`Interp::from_arc`] to avoid the copy).
    pub fn new(prog: &CheckedProgram, config: NetConfig) -> Self {
        Interp::from_arc(Arc::new(prog.clone()), config)
    }

    /// Build a world around an already-shared program.
    pub fn from_arc(prog: Arc<CheckedProgram>, config: NetConfig) -> Self {
        let shards = config
            .switches
            .iter()
            .map(|&s| (s, Shard::new(s, &prog)))
            .collect();
        let names = prog
            .info
            .events
            .iter()
            .map(|e| Arc::from(e.name.as_str()))
            .collect();
        let mut interp = Interp {
            prog,
            config,
            shards,
            queue: BinaryHeap::new(),
            inj_seq: 0,
            now_ns: 0,
            trace: Vec::new(),
            names,
            output: Vec::new(),
            stats: Stats::default(),
            echo: false,
            record_trace: true,
            compiled: None,
            source: None,
            source_counts: Vec::new(),
            metrics_acc: BTreeMap::new(),
        };
        interp.ensure_compiled();
        interp
    }

    /// Single-switch interpreter with default timing.
    pub fn single(prog: &CheckedProgram) -> Self {
        Interp::new(prog, NetConfig::single())
    }

    /// The program this world runs (shared handle).
    pub fn program(&self) -> &Arc<CheckedProgram> {
        &self.prog
    }

    /// Toggle trace retention (on by default). Off, handled/exported
    /// events skip their [`Handled`] record entirely; everything else —
    /// stats, per-event counts, metrics, `printf` output, final state —
    /// is byte-identical to a recording run.
    pub fn set_record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Compile the program once if the bytecode executor is selected.
    /// `config` is public, so re-check on every run: flipping
    /// [`NetConfig::exec`] (or [`NetConfig::opt`]) between runs is
    /// supported — a cached artifact compiled at a different level is
    /// recompiled.
    fn ensure_compiled(&mut self) {
        if self.config.exec == ExecMode::Bytecode
            && self
                .compiled
                .as_ref()
                .is_none_or(|cp| cp.opt_level() != self.config.opt)
        {
            self.compiled = Some(Arc::new(CompiledProg::compile_opt(
                &self.prog,
                self.config.opt,
            )));
        }
    }

    fn exec(&self) -> Exec {
        Exec {
            prog: Arc::clone(&self.prog),
            recirc_ns: self.config.recirc_latency_ns,
            link_ns: self.config.link_latency_ns,
            echo: self.echo,
            record_trace: self.record_trace,
            compiled: if self.config.exec == ExecMode::Bytecode {
                self.compiled.clone()
            } else {
                None
            },
        }
    }

    /// Schedule an externally injected event (e.g. a packet arrival) by
    /// name at an absolute time. Injections to switches outside the
    /// configured topology are counted as dropped immediately.
    pub fn schedule(
        &mut self,
        switch: u64,
        time_ns: u64,
        event: &str,
        args: &[u64],
    ) -> Result<(), InterpError> {
        // Failed injections point at themselves: the offending time,
        // switch, and name, so a scenario error names the bad line.
        let at = FaultAt {
            time_ns,
            switch,
            event: event.to_string(),
            origin: None,
            seq: self.inj_seq + 1,
        };
        let ev = self.prog.info.event(event).ok_or_else(|| {
            InterpError::from(InterpFault::NoSuchEvent(event.to_string())).located(at.clone())
        })?;
        if ev.params.len() != args.len() {
            return Err(InterpError::from(InterpFault::BadArity {
                event: event.to_string(),
                want: ev.params.len(),
                got: args.len(),
            })
            .located(at));
        }
        let masked: Vec<u64> = ev
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| mask(*a, p.ty.int_width().unwrap_or(32)))
            .collect();
        if !self.shards.contains_key(&switch) {
            self.stats.dropped += 1;
            return Ok(());
        }
        self.inj_seq += 1;
        self.queue.push(Reverse(Scheduled {
            key: Key {
                time_ns,
                class: 0,
                origin: 0,
                seq: self.inj_seq,
            },
            switch,
            event_id: ev.id,
            args: masked,
            // An injection roots its own causal chain and spends no
            // virtual time queued (it is scheduled at its arrival
            // instant), so both metric baselines are the key time.
            enq_ns: time_ns,
            root_ns: time_ns,
        }));
        Ok(())
    }

    /// Attach a streaming injection source. Subsequent [`Interp::run`]
    /// calls drain it lazily, interleaved with explicitly scheduled
    /// events in deterministic key order (sourced events are class-0
    /// injections keyed per source — see `shape_sourced`). The source
    /// persists across runs until exhausted or replaced.
    pub fn set_source(&mut self, source: Box<dyn EventSource + Send>) {
        self.source_counts = vec![0; source.source_count()];
        self.source = Some(source);
    }

    /// Whether the attached source still has events to emit.
    pub fn source_pending(&self) -> bool {
        self.source.as_ref().is_some_and(|s| s.peek_ns().is_some())
    }

    /// Events injected so far per source index (empty without a source).
    pub fn source_counts(&self) -> &[u64] {
        &self.source_counts
    }

    /// The source's next event time, if any.
    fn source_peek(&self) -> Option<u64> {
        self.source.as_ref().and_then(|s| s.peek_ns())
    }

    /// Read a global array on a switch (for assertions). Panics if the
    /// switch is unknown or currently failed; see [`Interp::try_array`].
    pub fn array(&self, switch: u64, name: &str) -> &[u64] {
        self.try_array(switch, name)
            .unwrap_or_else(|| panic!("switch {switch} is unknown or failed"))
    }

    /// Read a global array on a switch, `None` when the switch is unknown
    /// or failed.
    pub fn try_array(&self, switch: u64, name: &str) -> Option<&[u64]> {
        let gid = self.prog.info.globals_by_name[name];
        let shard = self.shards.get(&switch)?;
        if !shard.alive {
            return None;
        }
        Some(&shard.state.arrays[gid.0])
    }

    /// Whether a switch is configured and currently alive.
    pub fn alive(&self, switch: u64) -> bool {
        self.shards.get(&switch).is_some_and(|s| s.alive)
    }

    /// Overwrite a global array cell (test setup / fault injection).
    pub fn poke(&mut self, switch: u64, name: &str, index: usize, value: u64) {
        let gid = self.prog.info.globals_by_name[name];
        let g = &self.prog.info.globals[gid.0];
        let v = mask(value, g.cell_width);
        self.shards
            .get_mut(&switch)
            .expect("switch exists")
            .state
            .arrays[gid.0][index] = v;
    }

    /// Fault injection: take a switch offline. Its state is lost and any
    /// event destined to it is dropped (counted in [`Stats::dropped`]),
    /// exactly like a dead box on the wire.
    pub fn fail_switch(&mut self, id: u64) {
        if let Some(shard) = self.shards.get_mut(&id) {
            shard.alive = false;
            shard.state = SwitchState::zeroed(&self.prog);
        }
    }

    /// Bring a previously failed switch back with zeroed registers (a
    /// rebooted switch does not remember its arrays).
    pub fn recover_switch(&mut self, id: u64) {
        if let Some(shard) = self.shards.get_mut(&id) {
            shard.alive = true;
            shard.state = SwitchState::zeroed(&self.prog);
        }
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.shards.values().map(|s| s.queue.len()).sum::<usize>()
    }

    pub fn clear_trace(&mut self) {
        self.trace.clear();
        self.output.clear();
    }

    /// Run until the queue drains, `max_events` have been handled, or the
    /// clock passes `max_time_ns` (events after the horizon stay queued).
    /// Dispatches to the driver named by [`NetConfig::engine`].
    pub fn run(&mut self, max_events: u64, max_time_ns: u64) -> Result<(), InterpError> {
        self.ensure_compiled();
        let res = match self.config.engine {
            Engine::Sequential => self.run_sequential(max_events, max_time_ns),
            Engine::Sharded { workers, epoch_ns } => {
                self.run_sharded(max_events, max_time_ns, workers, epoch_ns)
            }
        };
        // Per-event counts accumulate as plain id-indexed counters on
        // the shards (the dispatch path never touches a hash map); they
        // materialize into `Stats::per_event` once per run — faulted
        // runs included, since tests compare those stats too.
        self.fold_per_event_counts();
        self.fold_metrics();
        res
    }

    /// Fold every shard's id-indexed per-event counters into the
    /// name-keyed [`Stats::per_event`] map, zeroing the counters (safe
    /// to call any number of times).
    fn fold_per_event_counts(&mut self) {
        for shard in self.shards.values_mut() {
            for (id, n) in shard.per_event_ids.iter_mut().enumerate() {
                if *n > 0 {
                    *self
                        .stats
                        .per_event
                        .entry(self.prog.info.events[id].name.clone())
                        .or_insert(0) += *n;
                    *n = 0;
                }
            }
        }
    }

    /// Fold every shard's per-event histograms into the metrics
    /// accumulator, zeroing the shard collectors (safe to call any
    /// number of times; accumulates across segmented runs the way a
    /// failure schedule drives them).
    fn fold_metrics(&mut self) {
        for shard in self.shards.values_mut() {
            Metrics::absorb_shard(
                &mut self.metrics_acc,
                shard.switch,
                &mut shard.metrics,
                |id| self.prog.info.events[id].name.clone(),
            );
        }
    }

    /// The per-event-class latency metrics accumulated so far, one row
    /// per (switch, event) class in sorted order. Deterministic and
    /// engine-independent: both engines yield bit-identical metrics
    /// ([`Metrics::digest`]) on successful runs, same contract as state,
    /// stats, and trace.
    pub fn metrics(&self) -> Metrics {
        Metrics::from_acc(&self.metrics_acc)
    }

    /// Run with a generous default budget; most tests use this.
    pub fn run_to_quiescence(&mut self) -> Result<(), InterpError> {
        self.run(1_000_000, u64::MAX)
    }

    // ------------------------------------------------- sequential driver

    fn run_sequential(&mut self, max_events: u64, max_time_ns: u64) -> Result<(), InterpError> {
        let exec = self.exec();
        // Flatten the shard map for the dispatch loop: per-event routing
        // must not hash (see [`SwitchMap`]), and the bookkeeping the old
        // loop ran every event — a hash lookup per routed event, a stats
        // absorb, trace/output drains — defers to one teardown pass,
        // exactly like the sharded driver's round teardown. Per-event
        // work is then: heap pop, flat-array route, dispatch, heap push.
        let mut shards: Vec<Shard> = std::mem::take(&mut self.shards).into_values().collect();
        let pairs: Vec<(u64, u32)> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| (s.switch, u32::try_from(i).expect("shard count fits u32")))
            .collect();
        let at = SwitchMap::build(&pairs);
        // The run-local queue is a [`SchedHeap`]: an index heap over a
        // slab whose sifts move compact (key, slot) pairs instead of
        // whole [`Scheduled`] records — see its docs for the layout.
        let mut heap = SchedHeap::with_capacity(self.queue.len());
        for Reverse(s) in self.queue.drain() {
            heap.push(s);
        }
        let mut processed_this_run = 0u64;
        let mut batch: Vec<SourcedEvent> = Vec::new();
        // Run-level dispatch logs, appended in pop order (= global key
        // order); interned ids resolve once, at teardown.
        let mut trace_run: Vec<(Key, TraceRec)> = Vec::new();
        let mut output_run: Vec<(Key, OutRec)> = Vec::new();
        let res = 'run: {
            loop {
                // Lazy refill, in chunks: materialize the sourced
                // injections due at or before the queue head (they must
                // dispatch before it), up to [`SOURCE_CHUNK`] per pull so
                // memory stays bounded by the in-flight frontier.
                while let Some(t) = self.source_peek() {
                    if t > max_time_ns {
                        break;
                    }
                    let head = heap.peek_key().map_or(u64::MAX, |k| k.time_ns);
                    if head < t {
                        break;
                    }
                    batch.clear();
                    self.source.as_mut().expect("peeked").next_batch(
                        head.min(max_time_ns),
                        SOURCE_CHUNK,
                        &mut batch,
                    );
                    for ev in batch.drain(..) {
                        let sched = shape_sourced(&self.prog, &mut self.source_counts, ev);
                        if at.get(sched.switch).is_some() {
                            heap.push(sched);
                        } else {
                            self.stats.dropped += 1;
                        }
                    }
                }
                let Some(next_key) = heap.peek_key() else {
                    break 'run Ok(());
                };
                if next_key.time_ns > max_time_ns {
                    break 'run Ok(());
                }
                if processed_this_run >= max_events {
                    break 'run Err(InterpFault::FuelExhausted {
                        handled: processed_this_run,
                    }
                    .into());
                }
                let sched = heap.pop().expect("peeked");
                processed_this_run += 1;
                self.stats.processed += 1;
                self.now_ns = self.now_ns.max(sched.key.time_ns);
                let idx = at.get(sched.switch).expect("routed to known switch") as usize;
                let shard = &mut shards[idx];
                shard.now_ns = shard.now_ns.max(sched.key.time_ns);
                let res = exec.dispatch(shard, sched);
                // Route everything the handler produced (local and
                // remote — the sequential exec sends both through the
                // outbox) back to the global queue, and surface the
                // shard's trace/output immediately: the pop order
                // already is the deterministic key order, so appending
                // here is the merge, for free. Stats stay buffered on
                // the shard until teardown.
                let mut produced = std::mem::take(&mut shard.outbox);
                for ev in produced.drain(..) {
                    if at.get(ev.switch).is_some() {
                        heap.push(ev);
                    } else {
                        shard.stats.dropped += 1;
                        shard.recycle_args(ev.args);
                    }
                }
                shard.outbox = produced;
                trace_run.append(&mut shard.trace);
                output_run.append(&mut shard.output);
                if let Err(e) = res {
                    break 'run Err(e);
                }
            }
        };
        // Teardown, fault exits included: resolve the run logs (the
        // single-run fast path of the k-way merge — one bulk pass
        // instead of per-event work), park undispatched events back on
        // the persistent queue, absorb per-shard stats, and hand the
        // shards back to the map.
        let names = &self.names;
        merge_sorted_runs(vec![trace_run], &mut self.trace, |r| r.into_handled(names));
        let cp = exec.compiled.as_deref();
        merge_sorted_runs(vec![output_run], &mut self.output, |r| r.render(cp));
        self.queue.extend(heap.into_events().map(Reverse));
        for mut shard in shards {
            self.stats.absorb(&mut shard.stats);
            self.shards.insert(shard.switch, shard);
        }
        res
    }

    // ---------------------------------------------------- sharded driver

    fn run_sharded(
        &mut self,
        max_events: u64,
        max_time_ns: u64,
        workers: usize,
        epoch_ns: u64,
    ) -> Result<(), InterpError> {
        let link = self.config.link_latency_ns;
        // A zero-latency wire admits no conservative epoch; a single shard
        // has nothing to parallelize. Fall back to the reference engine.
        if link == 0 || self.shards.len() <= 1 {
            return self.run_sequential(max_events, max_time_ns);
        }
        // `epoch_ns == 0` (the default) means adaptive horizons; an
        // explicit width additionally caps every round at
        // `global_min + epoch` (never wider than one wire hop).
        let epoch_cap = (epoch_ns != 0).then(|| epoch_ns.min(link));
        let nworkers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            workers
        }
        .clamp(1, self.shards.len());

        // Static partition: shard i (in switch-id order) → worker i % W.
        let shard_map = std::mem::take(&mut self.shards);
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        let mut partitions: Vec<Vec<Shard>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut seeds: Vec<SchedHeap> = (0..nworkers).map(|_| SchedHeap::default()).collect();
        for (i, (id, mut shard)) in shard_map.into_iter().enumerate() {
            let w = i % nworkers;
            pairs.push((id, u32::try_from(w).expect("worker count fits u32")));
            // Parked per-shard leftovers (a previous faulted run) rejoin
            // the owning worker's heap.
            for Reverse(ev) in std::mem::take(&mut shard.queue) {
                seeds[w].push(ev);
            }
            partitions[w].push(shard);
        }
        let owner = SwitchMap::build(&pairs);

        // Distribute pending events onto their owning workers' heaps.
        let mut q = std::mem::take(&mut self.queue);
        for Reverse(ev) in q.drain() {
            match owner.get(ev.switch) {
                Some(w) => seeds[w as usize].push(ev),
                None => self.stats.dropped += 1,
            }
        }

        // Detach the single-switch generators from the source and hand
        // each to the worker owning its destination shard: those streams
        // are pulled worker-locally with zero coordination. Whatever the
        // source cannot split (multi-switch generators, capped
        // workloads, custom sources) stays behind as the shared
        // remainder, materialized by worker 0. Keys no longer depend on
        // pull interleaving, so the partition cannot perturb execution.
        let mut shared_src = self.source.take();
        let mut local_parts: Vec<Vec<LocalGen>> = (0..nworkers).map(|_| Vec::new()).collect();
        if let Some(src) = shared_src.as_mut() {
            let owned = &owner;
            for lg in src.detach_local(&|sw| owned.get(sw).is_some()) {
                local_parts[owner.get(lg.switch).expect("detached switch is owned") as usize]
                    .push(lg);
            }
        }
        let counts0 = self.source_counts.clone();

        let cells: Vec<WorkerCell> = (0..nworkers).map(|_| WorkerCell::default()).collect();
        let shared_peek = AtomicU64::new(u64::MAX);
        let dropped = AtomicU64::new(0);
        let fault: Mutex<Option<(Key, InterpError)>> = Mutex::new(None);
        let barrier = RoundBarrier::new(nworkers);
        let ctx = RoundCtx {
            cells: &cells,
            shared_peek: &shared_peek,
            dropped: &dropped,
            fault: &fault,
            barrier: &barrier,
            owner: &owner,
            link_ns: link,
            epoch_cap,
            max_events,
            max_time_ns,
        };
        let exec = self.exec();

        // The calling thread is worker 0 (and the only holder of the
        // shared source remainder, which need not be `Send`).
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(nworkers);
        std::thread::scope(|scope| {
            let mut iter = partitions.into_iter().zip(seeds).zip(local_parts);
            let ((shards0, seed0), locals0) = iter.next().expect("at least one worker");
            let mut handles = Vec::with_capacity(nworkers - 1);
            for (w, ((shards, seed), locals)) in iter.enumerate() {
                let ctx = &ctx;
                let exec = exec.clone();
                let counts = counts0.clone();
                handles.push(scope.spawn(move || {
                    run_round_worker(
                        ctx,
                        &exec,
                        w + 1,
                        WorkerSeed {
                            shards,
                            heap: seed,
                            locals,
                            counts,
                        },
                        None,
                    )
                }));
            }
            outs.push(run_round_worker(
                &ctx,
                &exec,
                0,
                WorkerSeed {
                    shards: shards0,
                    heap: seed0,
                    locals: locals0,
                    counts: counts0,
                },
                shared_src.as_mut(),
            ));
            for handle in handles {
                outs.push(handle.join().expect("worker panicked"));
            }
        });

        // Merge points: everything below happens exactly once, after the
        // pool has quiesced — no lock is contended and no order depends
        // on thread timing.
        let why = outs[0].why;
        let total_processed = outs[0].total;
        debug_assert!(why != StopWhy::Died, "a panicked worker fails the join");

        // Pull counters: worker 0's copy advanced the shared slots; each
        // partitioned slot advanced only on its owning worker.
        let mut counts = std::mem::take(&mut outs[0].counts);
        for out in outs.iter().skip(1) {
            for lg in &out.locals {
                counts[lg.slot] = out.counts[lg.slot];
            }
        }
        self.source_counts = counts;

        // Reattach the partitioned generators (cursors advanced to
        // wherever the run ended) and put the source back.
        let parts: Vec<LocalGen> = outs
            .iter_mut()
            .flat_map(|o| std::mem::take(&mut o.locals))
            .collect();
        if let Some(src) = shared_src.as_mut() {
            src.reattach_local(parts);
        } else {
            debug_assert!(parts.is_empty(), "locals only detach from a source");
        }
        self.source = shared_src;

        let mut traces: Vec<Vec<(Key, TraceRec)>> = Vec::with_capacity(nworkers);
        let mut outputs: Vec<Vec<(Key, OutRec)>> = Vec::with_capacity(nworkers);
        for (w, out) in outs.iter_mut().enumerate() {
            // Mailboxes are drained at every round's P1 before the stop
            // decision, so this is empty on all normal exits; it is a
            // defensive park for the panic path.
            let mail = std::mem::take(&mut *cells[w].mailbox.lock().expect("mailbox"));
            self.queue.extend(mail.into_iter().map(Reverse));
            // Undispatched heap events go straight back to the global
            // queue so a later run (under either engine) sees them.
            self.queue
                .extend(std::mem::take(&mut out.heap).into_events().map(Reverse));
            traces.push(std::mem::take(&mut out.trace));
            outputs.push(std::mem::take(&mut out.output));
            for mut shard in std::mem::take(&mut out.shards) {
                // Park events stashed on a faulted shard, absorb its
                // run-local stats, and advance the interpreter clock.
                while let Some(ev) = shard.queue.pop() {
                    self.queue.push(ev);
                }
                self.stats.absorb(&mut shard.stats);
                self.now_ns = self.now_ns.max(shard.now_ns);
                self.shards.insert(shard.switch, shard);
            }
        }
        self.stats.processed += total_processed;
        self.stats.dropped += dropped.load(Relaxed);
        // Each worker's dispatch log is already key-sorted; one k-way
        // merge (k = workers) recovers the global deterministic order,
        // resolving interned ids (event names, printf formats) exactly
        // once per record on the way out.
        let names = &self.names;
        merge_sorted_runs(traces, &mut self.trace, |r| r.into_handled(names));
        let cp = self.compiled.clone();
        merge_sorted_runs(outputs, &mut self.output, |r| r.render(cp.as_deref()));
        match why {
            StopWhy::Fault => {
                let (_, e) = fault
                    .into_inner()
                    .expect("fault cell")
                    .expect("fault stop implies a recorded fault");
                Err(e)
            }
            StopWhy::Fuel => Err(InterpFault::FuelExhausted {
                handled: total_processed,
            }
            .into()),
            _ => Ok(()),
        }
    }
}

// ------------------------------------------------------------- snapshots

/// Snapshot magic number: `LUCWORLD` as little-endian bytes, bumped with
/// the format version in the low byte. A reader seeing anything else
/// refuses the blob up front.
const WORLD_MAGIC: u64 = u64::from_le_bytes(*b"LUCWRLD\x01");

/// What a [`Interp::swap_program`] hot-swap did to the running world.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Per-switch arrays whose (name, cell width, length) matched the new
    /// program and were carried over.
    pub arrays_carried: usize,
    /// Arrays of the new program with no compatible predecessor, zeroed.
    pub arrays_reset: usize,
    /// Pending queued events remapped to the new program's event ids.
    pub queued_remapped: u64,
    /// Pending queued events whose event vanished (or changed arity),
    /// dropped.
    pub queued_dropped: u64,
    /// Attached workload generators disabled because their event is gone.
    pub sources_disabled: usize,
}

fn encode_sched(w: &mut snap::Writer, s: &Scheduled) {
    w.u64(s.key.time_ns);
    w.u8(s.key.class);
    w.u64(s.key.origin);
    w.u64(s.key.seq);
    w.u64(s.switch);
    w.u64(s.event_id as u64);
    w.u64s(&s.args);
    w.u64(s.enq_ns);
    w.u64(s.root_ns);
}

fn decode_sched(
    r: &mut snap::Reader<'_>,
    prog: &CheckedProgram,
) -> Result<Scheduled, snap::SnapError> {
    let key = Key {
        time_ns: r.u64()?,
        class: r.u8()?,
        origin: r.u64()?,
        seq: r.u64()?,
    };
    let switch = r.u64()?;
    let event_id = r.u64()? as usize;
    let args = r.u64s()?;
    let enq_ns = r.u64()?;
    let root_ns = r.u64()?;
    let Some(ev) = prog.info.events.get(event_id) else {
        return Err(r.err(format!("queued event id {event_id} out of range")));
    };
    if ev.params.len() != args.len() {
        return Err(r.err(format!(
            "queued '{}' carries {} args for {} params",
            ev.name,
            args.len(),
            ev.params.len()
        )));
    }
    Ok(Scheduled {
        key,
        switch,
        event_id,
        args,
        enq_ns,
        root_ns,
    })
}

/// A queue's entries in deterministic (key) order — heap iteration order
/// is arbitrary and must never leak into snapshot bytes.
fn sorted_queue(q: &BinaryHeap<Reverse<Scheduled>>) -> Vec<&Scheduled> {
    let mut v: Vec<&Scheduled> = q.iter().map(|r| &r.0).collect();
    v.sort_by_key(|s| s.key);
    v
}

impl Interp {
    /// Encode the full dynamic world — clock, stats, trace, `printf`
    /// output, metrics, per-switch state, every pending queue, and the
    /// attached source's cursors — into a deterministic byte stream.
    /// Two worlds in the same state encode to identical bytes, whichever
    /// engine produced them. Fails (without writing) when a custom
    /// source does not support [`EventSource::save_state`].
    pub fn save_world(&self, out: &mut Vec<u8>) -> Result<(), String> {
        let mut src_bytes = None;
        if let Some(src) = &self.source {
            let mut bytes = Vec::new();
            if !src.save_state(&mut bytes) {
                return Err("attached event source does not support snapshots".to_string());
            }
            src_bytes = Some(bytes);
        }
        let mut w = snap::Writer::new();
        w.u64(WORLD_MAGIC);
        w.u64(self.now_ns);
        w.u64(self.inj_seq);
        w.u64(self.stats.processed);
        w.u64(self.stats.handled);
        w.u64(self.stats.recirculated);
        w.u64(self.stats.sent_remote);
        w.u64(self.stats.exported);
        w.u64(self.stats.dropped);
        let mut per_event: Vec<(&String, &u64)> = self.stats.per_event.iter().collect();
        per_event.sort();
        w.u64(per_event.len() as u64);
        for (name, n) in per_event {
            w.str(name);
            w.u64(*n);
        }
        w.u64(self.trace.len() as u64);
        for h in &self.trace {
            w.u64(h.time_ns);
            w.u64(h.switch);
            w.str(&h.event);
            w.u64s(&h.args);
        }
        w.u64(self.output.len() as u64);
        for line in &self.output {
            w.str(line);
        }
        w.u64s(&self.source_counts);
        w.u64(self.metrics_acc.len() as u64);
        for ((switch, event), hists) in &self.metrics_acc {
            w.u64(*switch);
            w.str(event);
            hists.encode(&mut w);
        }
        w.u64(self.shards.len() as u64);
        for (id, shard) in &self.shards {
            w.u64(*id);
            w.bool(shard.alive);
            w.u64(shard.now_ns);
            w.u64(shard.emit_seq);
            w.u64(shard.state.arrays.len() as u64);
            for arr in &shard.state.arrays {
                w.u64s(arr);
            }
            let parked = sorted_queue(&shard.queue);
            w.u64(parked.len() as u64);
            for s in parked {
                encode_sched(&mut w, s);
            }
        }
        let queued = sorted_queue(&self.queue);
        w.u64(queued.len() as u64);
        for s in queued {
            encode_sched(&mut w, s);
        }
        match src_bytes {
            None => w.bool(false),
            Some(bytes) => {
                w.bool(true);
                w.bytes(&bytes);
            }
        }
        out.extend_from_slice(&w.buf);
        Ok(())
    }

    /// Counterpart of [`Interp::save_world`]: overwrite this world's
    /// dynamic state from `bytes`. The world must have been built from
    /// the same program and topology (array geometry and switch ids are
    /// checked). Corrupted or mismatched bytes yield `Err` and leave the
    /// world unspecified-but-safe; they never panic.
    pub fn load_world(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.load_world_inner(bytes).map_err(|e| e.to_string())
    }

    fn load_world_inner(&mut self, bytes: &[u8]) -> Result<(), snap::SnapError> {
        let mut r = snap::Reader::new(bytes);
        let magic = r.u64()?;
        if magic != WORLD_MAGIC {
            return Err(r.err(format!("bad magic {magic:#018x}")));
        }
        self.now_ns = r.u64()?;
        self.inj_seq = r.u64()?;
        self.stats = Stats {
            processed: r.u64()?,
            handled: r.u64()?,
            recirculated: r.u64()?,
            sent_remote: r.u64()?,
            exported: r.u64()?,
            dropped: r.u64()?,
            per_event: HashMap::new(),
        };
        let n = r.len(9, "per-event stats")?;
        for _ in 0..n {
            let name = r.str()?;
            let count = r.u64()?;
            self.stats.per_event.insert(name, count);
        }
        // Trace records re-intern their event names: known events share
        // the world's interned `Arc<str>`s, names from an earlier program
        // epoch get their own allocation.
        let by_name: HashMap<&str, usize> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (&**n, i))
            .collect();
        let n = r.len(25, "trace")?;
        self.trace = Vec::with_capacity(n);
        for _ in 0..n {
            let time_ns = r.u64()?;
            let switch = r.u64()?;
            let name = r.str()?;
            let args = r.u64s()?;
            let event = match by_name.get(name.as_str()) {
                Some(&i) => self.names[i].clone(),
                None => Arc::from(name.as_str()),
            };
            self.trace.push(Handled {
                time_ns,
                switch,
                event,
                args,
            });
        }
        let n = r.len(8, "output")?;
        self.output = Vec::with_capacity(n);
        for _ in 0..n {
            self.output.push(r.str()?);
        }
        self.source_counts = r.u64s()?;
        let n = r.len(17, "metrics rows")?;
        self.metrics_acc = BTreeMap::new();
        for _ in 0..n {
            let switch = r.u64()?;
            let event = r.str()?;
            let hists = ClassHists::decode(&mut r)?;
            self.metrics_acc.insert((switch, event), hists);
        }
        let n = r.len(35, "shards")?;
        if n != self.shards.len() {
            return Err(r.err(format!(
                "snapshot has {n} switches, world has {}",
                self.shards.len()
            )));
        }
        for _ in 0..n {
            let id = r.u64()?;
            let Some(shard) = self.shards.get_mut(&id) else {
                return Err(r.err(format!("snapshot switch {id} not in this topology")));
            };
            shard.alive = r.bool()?;
            shard.now_ns = r.u64()?;
            shard.emit_seq = r.u64()?;
            let narr = r.len(8, "arrays")?;
            if narr != self.prog.info.globals.len() {
                return Err(r.err(format!(
                    "snapshot has {narr} arrays, program declares {}",
                    self.prog.info.globals.len()
                )));
            }
            let mut arrays = Vec::with_capacity(narr);
            for g in &self.prog.info.globals {
                let arr = r.u64s()?;
                if arr.len() as u64 != g.len {
                    return Err(r.err(format!(
                        "array '{}' has {} cells, program declares {}",
                        g.name,
                        arr.len(),
                        g.len
                    )));
                }
                arrays.push(arr);
            }
            shard.state.arrays = arrays;
            let nq = r.len(59, "parked events")?;
            shard.queue = BinaryHeap::with_capacity(nq);
            for _ in 0..nq {
                let s = decode_sched(&mut r, &self.prog)?;
                shard.queue.push(Reverse(s));
            }
        }
        let nq = r.len(59, "pending events")?;
        self.queue = BinaryHeap::with_capacity(nq);
        for _ in 0..nq {
            let s = decode_sched(&mut r, &self.prog)?;
            self.queue.push(Reverse(s));
        }
        if r.bool()? {
            let src_bytes = r.bytes()?;
            if self.source.is_none() {
                self.source = Some(Box::new(Workload::new(Vec::new(), None)));
            }
            let prog = Arc::clone(&self.prog);
            self.source
                .as_mut()
                .expect("just ensured")
                .load_state(&prog, src_bytes)
                .map_err(|msg| r.err(msg))?;
        } else {
            self.source = None;
        }
        r.expect_end()?;
        Ok(())
    }

    /// Hot-swap the running program for a new epoch, in place. State
    /// carries over where it can: per-switch arrays whose (name, cell
    /// width, length) match move across unchanged, pending events are
    /// remapped by event name where the arity still matches (arguments
    /// re-masked to the new widths) and dropped otherwise, and attached
    /// workload generators re-resolve their events. Stats, trace, and
    /// metrics accumulate across the swap — they are the session's
    /// history, not the epoch's.
    ///
    /// Must be called between runs (after [`Interp::run`] returned), when
    /// shard-local buffers are folded.
    pub fn swap_program(&mut self, new: Arc<CheckedProgram>) -> SwapStats {
        let mut st = SwapStats::default();
        // New global id → compatible old global id.
        let carry: Vec<Option<usize>> = new
            .info
            .globals
            .iter()
            .map(|g| {
                self.prog.info.globals_by_name.get(&g.name).and_then(|old| {
                    let og = &self.prog.info.globals[old.0];
                    (og.cell_width == g.cell_width && og.len == g.len).then_some(old.0)
                })
            })
            .collect();
        // Old event id → new event id (same name, same arity).
        let evmap: Vec<Option<usize>> = self
            .prog
            .info
            .events
            .iter()
            .map(|e| {
                new.info
                    .event(&e.name)
                    .and_then(|ne| (ne.params.len() == e.params.len()).then_some(ne.id))
            })
            .collect();
        let remap = |s: &mut Scheduled, st: &mut SwapStats| -> bool {
            match evmap.get(s.event_id).copied().flatten() {
                Some(nid) => {
                    s.event_id = nid;
                    for (a, p) in s.args.iter_mut().zip(&new.info.events[nid].params) {
                        *a = mask(*a, p.ty.int_width().unwrap_or(32));
                    }
                    st.queued_remapped += 1;
                    true
                }
                None => {
                    st.queued_dropped += 1;
                    false
                }
            }
        };
        let nevents = new.info.events.len();
        for shard in self.shards.values_mut() {
            let mut old: Vec<Option<Vec<u64>>> = std::mem::take(&mut shard.state.arrays)
                .into_iter()
                .map(Some)
                .collect();
            shard.state.arrays = carry
                .iter()
                .enumerate()
                .map(|(nid, c)| match c.and_then(|oid| old[oid].take()) {
                    Some(arr) => {
                        st.arrays_carried += 1;
                        arr
                    }
                    None => {
                        st.arrays_reset += 1;
                        vec![0; new.info.globals[nid].len as usize]
                    }
                })
                .collect();
            for Reverse(mut s) in std::mem::take(&mut shard.queue) {
                if remap(&mut s, &mut st) {
                    shard.queue.push(Reverse(s));
                }
            }
            shard.per_event_ids = vec![0; nevents];
            shard.metrics = ShardMetrics::new(nevents);
        }
        for Reverse(mut s) in std::mem::take(&mut self.queue) {
            if remap(&mut s, &mut st) {
                self.queue.push(Reverse(s));
            }
        }
        self.names = new
            .info
            .events
            .iter()
            .map(|e| Arc::from(e.name.as_str()))
            .collect();
        self.prog = new;
        self.compiled = None;
        self.ensure_compiled();
        if let Some(src) = self.source.as_mut() {
            let prog = Arc::clone(&self.prog);
            st.sources_disabled = src.remap_events(&prog);
        }
        st
    }

    /// Attach a generator spec to the running world mid-session (the
    /// serve `ingest` verb). Creates an empty [`Workload`] if no source
    /// is attached yet; the new generator claims the next source slot so
    /// existing per-source counters keep their positions.
    pub fn attach_generator(
        &mut self,
        spec: &GenSpec,
        scenario_seed: u64,
    ) -> Result<usize, String> {
        let Some(ev) = self.prog.info.event(&spec.event) else {
            return Err(format!("generator emits unknown event '{}'", spec.event));
        };
        if spec.args.len() != ev.params.len() {
            return Err(format!(
                "generator for '{}' draws {} args, event has {} params",
                spec.event,
                spec.args.len(),
                ev.params.len()
            ));
        }
        for &s in &spec.switches {
            if !self.shards.contains_key(&s) {
                return Err(format!("generator targets unknown switch {s}"));
            }
        }
        if spec.switches.is_empty() {
            return Err("generator targets no switches".to_string());
        }
        if self.source.is_none() {
            self.source = Some(Box::new(Workload::new(Vec::new(), None)));
        }
        let src = self.source.as_mut().expect("just ensured");
        let slot = src.source_count();
        let gen = spec.compile(&self.prog, scenario_seed, slot);
        if !src.attach_generator(gen) {
            return Err("attached event source cannot accept generators".to_string());
        }
        self.source_counts.resize(src.source_count(), 0);
        Ok(slot)
    }
}

/// K-way merge of key-sorted runs into `out`, dropping the keys and
/// mapping each record through `f` (the id-to-name resolution step).
/// Each run must be internally sorted (debug-asserted); equal keys can
/// only be adjacent records of one run (several printf lines from a
/// single handler activation) and keep their order — across runs every
/// [`Key`] is globally unique, so ties between runs are impossible.
fn merge_sorted_runs<T, U>(
    mut runs: Vec<Vec<(Key, T)>>,
    out: &mut Vec<U>,
    mut f: impl FnMut(T) -> U,
) {
    out.reserve(runs.iter().map(Vec::len).sum());
    runs.retain(|r| !r.is_empty());
    if let [run] = &mut runs[..] {
        // One non-empty run (every single-worker run): already in order.
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "run not sorted");
        out.extend(std::mem::take(run).into_iter().map(|(_, v)| f(v)));
        return;
    }
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<(Key, T)>>> = runs
        .into_iter()
        .map(|r| {
            debug_assert!(r.windows(2).all(|w| w[0].0 <= w[1].0), "run not sorted");
            r.into_iter().peekable()
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = iters
        .iter_mut()
        .enumerate()
        .filter_map(|(i, it)| it.peek().map(|(k, _)| Reverse((*k, i))))
        .collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let (_, v) = iters[i].next().expect("peeked");
        out.push(f(v));
        if let Some((k, _)) = iters[i].peek() {
            heap.push(Reverse((*k, i)));
        }
    }
}

fn value_of(ty: Ty, raw: u64) -> Value {
    match ty {
        Ty::Bool => Value::Bool(raw != 0),
        Ty::Int(w) => Value::int(raw, w),
        _ => Value::int(raw, 32),
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    if op.is_comparison() {
        let a = l.as_int().expect("checked");
        let b = r.as_int().expect("checked");
        return Value::Bool(match op {
            BinOp::Eq => a == b,
            BinOp::Neq => a != b,
            BinOp::Lt => a < b,
            BinOp::Gt => a > b,
            BinOp::Le => a <= b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        });
    }
    let (a, wa) = match l {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    let (b, wb) = match r {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    // Shifts keep the shifted operand's width (the checker types `a << b`
    // as `a`'s width regardless of `b`'s); everything else joins widths.
    let w = match op {
        BinOp::Shl | BinOp::Shr => wa,
        _ => wa.max(wb),
    };
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division by zero yields zero in the data plane.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        // A shift count at or past the operand width clears every bit of
        // a `width`-bit register; `wrapping_shl` alone would wrap the
        // count mod 64 and leave bits behind for 64-bit operands.
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
        _ => unreachable!(),
    };
    Value::int(v, w)
}

/// Minimal printf: `%d` decimal, `%x` hex, `%b` binary, `%%` literal.
pub(crate) fn format_printf(fmt: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut it = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') | None => {
                if let Some(v) = it.next() {
                    out.push_str(&v.to_string());
                }
            }
            Some('x') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:x}", v.as_int().unwrap_or(0)));
                }
            }
            Some('b') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:b}", v.as_int().unwrap_or(0)));
                }
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    fn checked(src: &str) -> CheckedProgram {
        match parse_and_check(src) {
            Ok(p) => p,
            Err(ds) => panic!("check failed:\n{ds}"),
        }
    }

    #[test]
    fn counter_program_counts() {
        let prog = checked(
            r#"
            global cts = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            event pkt(int idx);
            handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        for t in 0..5 {
            i.schedule(1, t * 100, "pkt", &[3]).unwrap();
        }
        i.schedule(1, 600, "pkt", &[5]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "cts")[3], 5);
        assert_eq!(i.array(1, "cts")[5], 1);
        assert_eq!(i.stats.handled, 6);
    }

    #[test]
    fn generate_recirculates_with_latency() {
        let prog = checked(
            r#"
            global hits = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            event ping(int n);
            handle ping(int n) {
                Array.setm(hits, 0, plus, 1);
                if (n > 0) { generate ping(n - 1); }
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "ping", &[3]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "hits")[0], 4);
        assert_eq!(i.stats.recirculated, 3);
        // 3 recirculations at 600 ns each.
        assert_eq!(i.trace.last().unwrap().time_ns, 3 * 600);
    }

    #[test]
    fn delay_combinator_shifts_execution_time() {
        let prog = checked(
            r#"
            event tick(int n);
            event noop();
            handle tick(int n) {
                generate Event.delay(noop(), 100);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "tick", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        // noop has no handler → exported; delay 100 µs + 600 ns recirc.
        let last = i.trace.last().unwrap();
        assert_eq!(&*last.event, "noop");
        assert_eq!(last.time_ns, 100_000 + 600);
        assert_eq!(i.stats.exported, 1);
    }

    #[test]
    fn locate_sends_to_other_switch() {
        let prog = checked(
            r#"
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) {
                Array.set(seen, 0, from);
            }
            event kick(int target);
            handle kick(int target) {
                generate Event.locate(probe(SELF), target);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(2));
        i.schedule(1, 0, "kick", &[2]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1, "switch 2 should record sender 1");
        assert_eq!(i.array(1, "seen")[0], 0);
        assert_eq!(i.stats.sent_remote, 1);
    }

    #[test]
    fn mlocate_broadcasts_to_group() {
        let prog = checked(
            r#"
            const group NEIGHBORS = {2, 3};
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) { Array.set(seen, 0, from); }
            event kick();
            handle kick() {
                mgenerate Event.mlocate(probe(SELF), NEIGHBORS);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(3));
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1);
        assert_eq!(i.array(3, "seen")[0], 1);
    }

    #[test]
    fn array_update_returns_old_and_writes_new() {
        let prog = checked(
            r#"
            global slots = new Array<<32>>(4);
            global log = new Array<<32>>(4);
            memop read(int m, int x) { return m; }
            memop write(int m, int x) { return x; }
            event swap(int idx, int v);
            handle swap(int idx, int v) {
                int old = Array.update(slots, idx, read, 0, write, v);
                Array.set(log, idx, old);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "swap", &[2, 77]).unwrap();
        i.schedule(1, 100, "swap", &[2, 88]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "slots")[2], 88);
        assert_eq!(
            i.array(1, "log")[2],
            77,
            "second swap must observe the first value"
        );
    }

    #[test]
    fn function_with_array_param_runs() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            fun int bump(Array<<32>> arr, int i) {
                return Array.update(arr, i, plus, 1, plus, 1);
            }
            event go(int i);
            handle go(int i) {
                int x = bump(a, i);
                int y = bump(b, i);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "a")[0], 1);
        assert_eq!(i.array(1, "b")[0], 1);
    }

    #[test]
    fn out_of_bounds_traps() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[9]).unwrap();
        let err = i.run_to_quiescence().unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::IndexOutOfBounds { index: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn runaway_recursion_hits_fuel() {
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(1_000, u64::MAX).unwrap_err();
        assert!(matches!(err.kind, InterpFault::FuelExhausted { .. }));
    }

    #[test]
    fn printf_formats() {
        let prog = checked(
            r#"
            event go(int x);
            handle go(int x) { printf("x=%d hex=%x pct=%%", x, x); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.output, vec!["x=255 hex=ff pct=%"]);
    }

    #[test]
    fn shift_by_width_or_more_clears_narrow_registers() {
        // `x << n` / `x >> n` keep x's width; a count at or past that
        // width must zero the register — not wrap the count mod 64, and
        // not widen the result to the count's width.
        let prog = checked(
            r#"
            global a = new Array<<8>>(1);
            global b = new Array<<8>>(1);
            global c = new Array<<8>>(1);
            global d = new Array<<8>>(1);
            event go(int<<8>> x, int n);
            handle go(int<<8>> x, int n) {
                Array.set(a, 0, x << 1);
                Array.set(b, 0, x << n);
                Array.set(c, 0, x >> n);
                Array.set(d, 0, x >> 2);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[0xAB, 9]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "a")[0], 0x56, "0xAB << 1 masked to 8 bits");
        assert_eq!(i.array(1, "b")[0], 0, "count 9 >= width 8 clears");
        assert_eq!(i.array(1, "c")[0], 0, "right shift past the width too");
        assert_eq!(i.array(1, "d")[0], 0x2A);
    }

    #[test]
    fn shift_by_64_or_more_clears_wide_registers() {
        // The 64-bit case is where `wrapping_shl` alone went wrong: a
        // count of 64 wraps to 0 and leaves the value untouched.
        let prog = checked(
            r#"
            global lo = new Array<<64>>(1);
            global hi = new Array<<64>>(1);
            event go(int<<64>> x, int n);
            handle go(int<<64>> x, int n) {
                Array.set(lo, 0, x << n);
                Array.set(hi, 0, x >> n);
            }
            "#,
        );
        for (n, want_shl) in [(63u64, 0x8000_0000_0000_0000u64), (64, 0), (200, 0)] {
            let mut i = Interp::single(&prog);
            i.schedule(1, 0, "go", &[1, n]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.array(1, "lo")[0], want_shl, "1 << {n}");
            assert_eq!(i.array(1, "hi")[0], 0, "1 >> {n}");
        }
    }

    #[test]
    fn narrow_width_arithmetic_wraps() {
        let prog = checked(
            r#"
            global out = new Array<<8>>(1);
            event go(int<<8>> x);
            handle go(int<<8>> x) { Array.set(out, 0, x + 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "out")[0], 0, "8-bit 255+1 wraps to 0");
    }

    #[test]
    fn events_to_unknown_switch_dropped() {
        let prog = checked(
            r#"
            event probe(int from);
            event kick();
            handle kick() { generate Event.locate(probe(SELF), 99); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.stats.dropped, 1);
    }

    #[test]
    fn time_advances_monotonically_in_trace() {
        let prog = checked(
            r#"
            event a(int n);
            handle a(int n) { if (n > 0) { generate a(n - 1); } }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 500, "a", &[5]).unwrap();
        i.schedule(1, 0, "a", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        let times: Vec<u64> = i.trace.iter().map(|h| h.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    // ------------------------------------------------- sharded engine

    /// A mesh program with heavy cross-switch traffic: every packet bumps
    /// a local sketch, then forwards to a hash-picked neighbor until its
    /// TTL drains. Exercises recirculation, remote sends, and timer ties.
    const MESH_MIX: &str = r#"
        global cnt = new Array<<32>>(64);
        global mix = new Array<<32>>(64);
        memop plus(int m, int x) { return m + x; }
        event pkt(int a, int b, int ttl);
        handle pkt(int a, int b, int ttl) {
            auto i = hash<<6>>(1, a, b);
            int c = Array.update(cnt, i, plus, 1, plus, 1);
            auto j = hash<<6>>(2, c, a);
            Array.setm(mix, j, plus, b);
            if (ttl > 0) {
                generate pkt(a + 1, b, ttl - 1);
                generate Event.locate(pkt(a, b + c, ttl - 1), ((a + b) & 7) + 1);
            }
        }
        "#;

    fn run_mesh(engine: Engine) -> (Vec<Vec<u64>>, Stats, Vec<Handled>, Vec<String>) {
        let prog = checked(MESH_MIX);
        let mut cfg = NetConfig::mesh(8);
        cfg.engine = engine;
        let mut i = Interp::new(&prog, cfg);
        for s in 1..=8u64 {
            for k in 0..6u64 {
                i.schedule(s, k * 400, "pkt", &[s * 17 + k, k, 4]).unwrap();
            }
        }
        i.run_to_quiescence().unwrap();
        let arrays: Vec<Vec<u64>> = (1..=8u64)
            .flat_map(|s| vec![i.array(s, "cnt").to_vec(), i.array(s, "mix").to_vec()])
            .collect();
        (arrays, i.stats.clone(), i.trace.clone(), i.output.clone())
    }

    #[test]
    fn sharded_engine_is_bit_identical_to_sequential() {
        let (seq_arrays, seq_stats, seq_trace, seq_out) = run_mesh(Engine::Sequential);
        let (sh_arrays, sh_stats, sh_trace, sh_out) = run_mesh(Engine::Sharded {
            workers: 4,
            epoch_ns: 0,
        });
        assert_eq!(seq_arrays, sh_arrays, "final array state must match");
        assert_eq!(seq_stats, sh_stats, "statistics must match");
        assert_eq!(seq_trace, sh_trace, "merged trace must match");
        assert_eq!(seq_out, sh_out);
        assert!(seq_stats.sent_remote > 100, "workload must cross switches");
    }

    #[test]
    fn sharded_engine_narrow_epoch_still_identical() {
        let (seq_arrays, seq_stats, ..) = run_mesh(Engine::Sequential);
        let (sh_arrays, sh_stats, ..) = run_mesh(Engine::Sharded {
            workers: 2,
            epoch_ns: 250,
        });
        assert_eq!(seq_arrays, sh_arrays);
        assert_eq!(seq_stats, sh_stats);
    }

    #[test]
    fn sharded_fuel_exhaustion_reports_error() {
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(1_000, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_zero_latency_loop_hits_fuel_instead_of_hanging() {
        // recirc_latency_ns == 0 lets a self-generating event stay inside
        // one epoch forever; the per-epoch budget must bound it.
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.recirc_latency_ns = 0;
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(500, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_overshoot_that_drains_the_queue_still_errs() {
        // 12 same-epoch events across 2 workers, budget 10: each worker
        // gets the full remaining budget, so the round drains the queue
        // while exceeding max_events — that must still be FuelExhausted,
        // as the sequential engine would have reported at event 11.
        let prog = checked(
            r#"
            global n = new Array<<32>>(1);
            memop plus(int m, int x) { return m + x; }
            event ping();
            handle ping() { Array.setm(n, 0, plus, 1); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        for s in [1u64, 2] {
            for k in 0..6u64 {
                i.schedule(s, k, "ping", &[]).unwrap();
            }
        }
        let err = i.run(10, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_runtime_fault_is_deterministic() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        );
        let mut cfg = NetConfig::mesh(4);
        cfg.engine = Engine::Sharded {
            workers: 4,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        // Two out-of-bounds faults in the same epoch: the smaller key
        // (earlier time) must win every run.
        i.schedule(3, 100, "go", &[9]).unwrap();
        i.schedule(2, 50, "go", &[7]).unwrap();
        let err = i.run_to_quiescence().unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::IndexOutOfBounds { index: 7, .. }),
            "{err}"
        );
    }

    #[test]
    fn failed_switch_drops_and_recovers_under_both_engines() {
        for engine in [
            Engine::Sequential,
            Engine::Sharded {
                workers: 2,
                epoch_ns: 0,
            },
        ] {
            let prog = checked(
                r#"
                global seen = new Array<<32>>(4);
                memop plus(int m, int x) { return m + x; }
                event pkt();
                handle pkt() { Array.setm(seen, 0, plus, 1); }
                "#,
            );
            let mut cfg = NetConfig::mesh(2);
            cfg.engine = engine;
            let mut i = Interp::new(&prog, cfg);
            i.fail_switch(2);
            i.schedule(2, 0, "pkt", &[]).unwrap();
            i.schedule(1, 0, "pkt", &[]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.stats.dropped, 1, "{engine:?}");
            assert_eq!(i.array(1, "seen")[0], 1);
            assert!(i.try_array(2, "seen").is_none());
            i.recover_switch(2);
            i.schedule(2, 10_000, "pkt", &[]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.array(2, "seen")[0], 1, "{engine:?}");
        }
    }

    #[test]
    fn resumed_runs_cross_engines() {
        // A run under the sequential engine can be resumed under the
        // sharded one: pending events survive in the global queue.
        let prog = checked(MESH_MIX);
        let mut i = Interp::new(&prog, NetConfig::mesh(8));
        for s in 1..=8u64 {
            i.schedule(s, 0, "pkt", &[s, 3, 6]).unwrap();
        }
        i.run(1_000_000, 2_000).unwrap();
        let mid_pending = i.pending();
        assert!(mid_pending > 0, "horizon must leave events queued");
        i.config.engine = Engine::Sharded {
            workers: 3,
            epoch_ns: 0,
        };
        i.run_to_quiescence().unwrap();
        assert_eq!(i.pending(), 0);

        let mut j = Interp::new(&prog, NetConfig::mesh(8));
        for s in 1..=8u64 {
            j.schedule(s, 0, "pkt", &[s, 3, 6]).unwrap();
        }
        j.run_to_quiescence().unwrap();
        for s in 1..=8u64 {
            assert_eq!(i.array(s, "cnt"), j.array(s, "cnt"));
            assert_eq!(i.array(s, "mix"), j.array(s, "mix"));
        }
        assert_eq!(i.stats, j.stats);
    }

    // --------------------------------------- mailbox/epoch stress tests

    /// Adversarial cross-shard traffic for the mailbox/epoch machinery:
    /// `spray` funnels every switch's emissions into one hotspot switch
    /// (all of a round's mail lands in a single mailbox), and `ping`
    /// bounces a chain between two switches with exactly one wire hop
    /// per step — the worst case for conservative horizons, where every
    /// dispatch depends on mail from the previous round.
    const STRESS: &str = r#"
        global hits = new Array<<32>>(16);
        memop plus(int m, int x) { return m + x; }
        event hot(int from);
        handle hot(int from) { Array.setm(hits, from & 15, plus, 1); }
        event spray(int from, int hub);
        handle spray(int from, int hub) {
            Array.setm(hits, 0, plus, 1);
            generate Event.locate(hot(from), hub);
        }
        event ping(int n, int me, int peer);
        handle ping(int n, int me, int peer) {
            Array.setm(hits, n & 15, plus, 1);
            if (n > 0) { generate Event.locate(ping(n - 1, peer, me), peer); }
        }
    "#;

    type Snapshot = (Vec<Vec<u64>>, Stats, Vec<Handled>, Vec<String>, u64);

    /// Run the stress schedule to quiescence; returns every observable
    /// plus the leftover queue depth (which must always be zero — a
    /// starved mailbox or a horizon that stopped advancing would leave
    /// events stranded).
    fn run_stress(
        engine: Engine,
        switches: u64,
        schedule: &[(u64, u64, &'static str, Vec<u64>)],
    ) -> (Snapshot, usize) {
        let prog = checked(STRESS);
        let mut cfg = NetConfig::mesh(switches);
        cfg.engine = engine;
        let mut i = Interp::new(&prog, cfg);
        for (sw, t, ev, args) in schedule {
            i.schedule(*sw, *t, ev, args).unwrap();
        }
        i.run_to_quiescence().unwrap();
        let arrays = (1..=switches)
            .map(|s| i.array(s, "hits").to_vec())
            .collect();
        (
            (
                arrays,
                i.stats.clone(),
                i.trace.clone(),
                i.output.clone(),
                i.metrics().digest(),
            ),
            i.pending(),
        )
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Hotspot + ping-pong + bursty phases, across worker counts and
        /// epoch overrides: the sharded engine must drain completely
        /// (no starvation) and reproduce the sequential run bit for bit.
        #[test]
        fn mailbox_stress_stays_deterministic_and_drains(
            switches in 2u64..=6,
            wsel in 0usize..6,
            esel in 0usize..4,
            // (silence before the phase, burst length, intra-burst spacing):
            // long gaps force the adaptive horizon to leap between
            // activity floors; spacing 0 lands whole bursts on one tick.
            bursts in proptest::collection::vec(
                (0u64..=20_000, 1usize..=12, 0u64..=3),
                1..5,
            ),
            // (chain length, endpoint selectors)
            pings in proptest::collection::vec(
                (1u64..=6, proptest::prelude::any::<u64>(), proptest::prelude::any::<u64>()),
                0..6,
            ),
        ) {
            let workers = [1usize, 2, 3, 4, 7, 8][wsel];
            let epoch_ns = [0u64, 1, 250, 1_000][esel];
            let mut schedule: Vec<(u64, u64, &'static str, Vec<u64>)> = Vec::new();
            let mut t = 0u64;
            for (k, (gap, n, spacing)) in bursts.iter().enumerate() {
                t += gap;
                // Rotate the hotspot between phases so ownership of the
                // hammered mailbox moves across workers.
                let hub = (k as u64 % switches) + 1;
                for j in 0..*n {
                    let from = (j as u64 % switches) + 1;
                    schedule.push((from, t, "spray", vec![from * 31 + j as u64, hub]));
                    t += spacing;
                }
            }
            for (k, (n, a, b)) in pings.iter().enumerate() {
                let me = (a % switches) + 1;
                let peer = (b % switches) + 1;
                schedule.push((me, (k as u64) * 500, "ping", vec![*n, me, peer]));
            }

            let (reference, seq_pending) = run_stress(Engine::Sequential, switches, &schedule);
            prop_assert_eq!(seq_pending, 0);
            let (got, pending) =
                run_stress(Engine::Sharded { workers, epoch_ns }, switches, &schedule);
            // A nonzero count here means the sharded run left events
            // stranded (starved mailbox / stuck horizon).
            prop_assert_eq!(pending, 0);
            prop_assert_eq!(&reference, &got);
        }
    }
}
