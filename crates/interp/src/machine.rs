//! The event-driven interpreter: a discrete-event simulation of one or more
//! Lucid switches and the network between them.
//!
//! This plays the role of the Lucid interpreter from the paper's artifact
//! ("enables rapid prototyping and testing of data-plane applications
//! without requiring access to the Tofino toolchain"), extended with the
//! timing model of §2: handler execution is one pass through a PISA
//! pipeline, `generate` to the local switch costs one recirculation
//! (~600 ns on a Tofino, Fig. 17), and events sent to a neighbor take a
//! ~1 µs wire hop.
//!
//! # Engines
//!
//! Per-switch state is an independent *shard*: its register arrays, its
//! event queue, and its emission counter. Two drivers execute the shards:
//!
//! * [`Engine::Sequential`] — the reference: one global queue, events
//!   dispatched strictly in `Key` order (virtual time, then origin).
//! * [`Engine::Sharded`] — a conservative parallel discrete-event
//!   simulation: each shard runs its own queue on a small worker pool,
//!   synchronizing at virtual-clock *epoch barriers* no wider than the
//!   wire latency. Because a cross-switch event can never arrive sooner
//!   than one wire hop, events exchanged at a barrier always belong to a
//!   later epoch, so each shard observes exactly the event order the
//!   sequential engine would produce. Successful runs are bit-identical
//!   between the two engines: final array state, statistics, trace, and
//!   printf output all match (the trace is merged back into global
//!   `Key` order at each run's end).
//!
//! Error runs differ in bookkeeping only: the sharded engine checks the
//! event budget at epoch barriers (so it may overshoot `max_events`
//! before reporting [`InterpFault::FuelExhausted`]), and a runtime fault
//! aborts the faulting shard's epoch while sibling shards finish theirs.
//! The *reported* error is still deterministic (the fault with the
//! smallest event key wins).

use crate::bytecode::{CompiledProg, ExecMode, OptLevel};
use crate::metrics::{ClassHists, Metrics, ShardMetrics};
use crate::value::{lucid_hash, EventVal, Location, Value};
use crate::workload::EventSource;
use lucid_check::{eval_memop, mask, CheckedProgram, GlobalId};
use lucid_frontend::ast::*;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;
use std::sync::{mpsc, Arc};

// The sharded engine shares `&CheckedProgram` across worker threads; this
// fails to compile if the checked AST ever grows thread-unsafe interior
// mutability (e.g. `Rc`).
fn _assert_prog_thread_safe() {
    fn check<T: Send + Sync>() {}
    check::<CheckedProgram>();
}

/// Which driver executes the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One global queue, one thread: the reference engine.
    #[default]
    Sequential,
    /// Epoch-barrier parallel execution on a worker pool.
    Sharded {
        /// Worker threads; `0` means one per available core (capped at
        /// the number of switches).
        workers: usize,
        /// Epoch width in sim-nanoseconds; `0` means "the wire latency"
        /// (the widest epoch that is still conservative). Values larger
        /// than the wire latency are clamped down to it.
        epoch_ns: u64,
    },
}

impl Engine {
    /// Parse a CLI/scenario engine name.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "sequential" | "seq" => Some(Engine::Sequential),
            "sharded" | "parallel" => Some(Engine::Sharded {
                workers: 0,
                epoch_ns: 0,
            }),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Sharded { .. } => "sharded",
        }
    }
}

/// Network and hardware timing parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Switch identifiers. Events located at unknown switches are dropped.
    pub switches: Vec<u64>,
    /// One-way latency between any two distinct switches, in nanoseconds.
    /// (§2.1: "sending a message from a switch's data-plane processor to
    /// its neighbor takes around 1 µs".)
    pub link_latency_ns: u64,
    /// Latency of one recirculation pass (§7.4: one recirculation ≈ 600 ns).
    pub recirc_latency_ns: u64,
    /// Which driver to run the shards with.
    pub engine: Engine,
    /// Which executor runs handler bodies (orthogonal to `engine`).
    pub exec: ExecMode,
    /// How hard the bytecode pipeline optimizes (ignored by the AST
    /// walker). Every level is bit-identical; the default is the full
    /// pipeline.
    pub opt: OptLevel,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            switches: vec![1],
            link_latency_ns: 1_000,
            recirc_latency_ns: 600,
            engine: Engine::Sequential,
            exec: ExecMode::Ast,
            opt: OptLevel::default(),
        }
    }
}

impl NetConfig {
    /// A single-switch network (the common case for app tests).
    pub fn single() -> Self {
        Self::default()
    }

    /// A fully-connected network of `n` switches with ids `1..=n`.
    pub fn mesh(n: u64) -> Self {
        NetConfig {
            switches: (1..=n).collect(),
            ..Self::default()
        }
    }

    /// Select the sharded parallel engine (`workers == 0`: one per core).
    pub fn sharded(mut self, workers: usize) -> Self {
        self.engine = Engine::Sharded {
            workers,
            epoch_ns: 0,
        };
        self
    }

    /// Select the bytecode executor.
    pub fn bytecode(mut self) -> Self {
        self.exec = ExecMode::Bytecode;
        self
    }
}

/// A record of one handled event, for assertions and tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handled {
    pub time_ns: u64,
    pub switch: u64,
    pub event: String,
    pub args: Vec<u64>,
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Events popped from a queue (handled + exported + dropped-at-switch).
    pub processed: u64,
    /// Events whose handler ran.
    pub handled: u64,
    /// Events generated to the local switch (each costs a recirculation).
    pub recirculated: u64,
    /// Events sent to other switches.
    pub sent_remote: u64,
    /// Events for which no handler exists (treated as exported packets).
    pub exported: u64,
    /// Events dropped because their destination switch does not exist or
    /// is failed.
    pub dropped: u64,
    /// Per-event-name counts of everything dispatched on a live switch
    /// (handled *and* exported events; dropped ones are not counted).
    pub per_event: HashMap<String, u64>,
}

impl Stats {
    /// Move `other`'s counts into `self`, leaving `other` zeroed.
    fn absorb(&mut self, other: &mut Stats) {
        self.processed += other.processed;
        self.handled += other.handled;
        self.recirculated += other.recirculated;
        self.sent_remote += other.sent_remote;
        self.exported += other.exported;
        self.dropped += other.dropped;
        for (name, n) in other.per_event.drain() {
            *self.per_event.entry(name).or_insert(0) += n;
        }
        *other = Stats {
            per_event: std::mem::take(&mut other.per_event),
            ..Stats::default()
        };
    }
}

/// What went wrong at runtime. The checker rules out type errors, so what
/// remains are data-dependent faults — exactly the ones a hardware target
/// would also hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpFault {
    /// Array index outside the declared length.
    IndexOutOfBounds { array: String, index: u64, len: u64 },
    /// The run exceeded its event budget (likely a runaway recursion).
    FuelExhausted { handled: u64 },
    /// An event was scheduled by name that does not exist.
    NoSuchEvent(String),
    /// Wrong number of arguments in an externally injected event.
    BadArity {
        event: String,
        want: usize,
        got: usize,
    },
}

/// Where a fault happened: the deterministic key of the event being
/// handled (or the injection being scheduled) plus its destination
/// switch, so a failing scenario points at the offending event instead
/// of a bare message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAt {
    /// Virtual time of the event, nanoseconds.
    pub time_ns: u64,
    /// Destination switch.
    pub switch: u64,
    /// Event name.
    pub event: String,
    /// `None` for externally injected events, `Some(src)` for events a
    /// handler on switch `src` generated.
    pub origin: Option<u64>,
    /// The event key's tie-breaker: the injection counter for external
    /// events, the per-source emission counter for generated ones.
    pub seq: u64,
}

impl fmt::Display for FaultAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` on switch {} at {}ns ({})",
            self.event,
            self.switch,
            self.time_ns,
            match self.origin {
                None => format!("injection #{}", self.seq),
                Some(src) => format!("generated by switch {src}, #{}", self.seq),
            }
        )
    }
}

/// Runtime failure: the fault itself plus, when known, the event whose
/// handling (or injection) triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    pub kind: InterpFault,
    pub at: Option<FaultAt>,
}

impl From<InterpFault> for InterpError {
    fn from(kind: InterpFault) -> Self {
        InterpError { kind, at: None }
    }
}

impl InterpError {
    /// Attach a fault location, keeping an earlier (more precise) one.
    pub(crate) fn located(mut self, at: FaultAt) -> Self {
        if self.at.is_none() {
            self.at = Some(at);
        }
        self
    }

    /// One-line JSON rendering (for `lucidc sim --json`).
    pub fn to_json(&self) -> String {
        let kind = match &self.kind {
            InterpFault::IndexOutOfBounds { .. } => "index_out_of_bounds",
            InterpFault::FuelExhausted { .. } => "fuel_exhausted",
            InterpFault::NoSuchEvent(_) => "no_such_event",
            InterpFault::BadArity { .. } => "bad_arity",
        };
        let at = match &self.at {
            None => "null".to_string(),
            Some(at) => format!(
                "{{\"time_ns\":{},\"switch\":{},\"event\":\"{}\",\"origin\":{},\"seq\":{}}}",
                at.time_ns,
                at.switch,
                crate::scenario::json_escape(&at.event),
                at.origin.map_or("null".to_string(), |o| o.to_string()),
                at.seq,
            ),
        };
        format!(
            "{{\"kind\":\"{kind}\",\"msg\":\"{}\",\"at\":{at}}}",
            crate::scenario::json_escape(&self.kind.to_string())
        )
    }
}

impl fmt::Display for InterpFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpFault::IndexOutOfBounds { array, index, len } => write!(
                f,
                "index {index} out of bounds for array `{array}` (len {len})"
            ),
            InterpFault::FuelExhausted { handled } => {
                write!(f, "event budget exhausted after {handled} events")
            }
            InterpFault::NoSuchEvent(n) => write!(f, "no event named `{n}`"),
            InterpFault::BadArity { event, want, got } => {
                write!(f, "event `{event}` wants {want} args, got {got}")
            }
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(at) = &self.at {
            write!(f, " — at {at}")?;
        }
        Ok(())
    }
}

impl std::error::Error for InterpError {}

/// Per-switch persistent state: one `Vec<u64>` per global array, in
/// declaration (= stage) order. Registers reset to zero, as on hardware.
#[derive(Debug, Clone)]
pub struct SwitchState {
    pub arrays: Vec<Vec<u64>>,
}

impl SwitchState {
    fn zeroed(prog: &CheckedProgram) -> Self {
        SwitchState {
            arrays: prog
                .info
                .globals
                .iter()
                .map(|g| vec![0u64; g.len as usize])
                .collect(),
        }
    }
}

/// The deterministic total order on events. Ties in virtual time break on
/// origin: externally injected events come first (in injection order),
/// then generated events by source switch and per-source emission count.
/// Both engines schedule with the same keys, which is what makes their
/// per-shard execution orders — and therefore their results — identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    time_ns: u64,
    /// 0 = externally injected, 1 = handler-generated.
    class: u8,
    /// Source switch for generated events; 0 for injections.
    origin: u64,
    /// Injection counter / per-source emission counter.
    seq: u64,
}

impl Key {
    /// The fault location this key describes, for error reports.
    fn fault_at(&self, switch: u64, event: &str) -> FaultAt {
        FaultAt {
            time_ns: self.time_ns,
            switch,
            event: event.to_string(),
            origin: (self.class == 1).then_some(self.origin),
            seq: self.seq,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Scheduled {
    key: Key,
    /// Destination switch.
    switch: u64,
    event_id: usize,
    args: Vec<u64>,
    /// Virtual instant this entry was enqueued: the emitting shard's
    /// clock for generated events, the arrival time itself for external
    /// injections. `key.time_ns - enq_ns` is the queue residency the
    /// metrics layer records. (Keys are unique, so these trailing fields
    /// never influence the derived `Ord`.)
    enq_ns: u64,
    /// Arrival time of the external injection at the root of this
    /// event's causal chain, inherited across `generate`.
    /// `key.time_ns - root_ns` is the dispatch latency.
    root_ns: u64,
}

/// Flow of control inside a handler body.
enum Flow {
    Normal,
    Returned(Value),
}

/// One switch's independent slice of the simulation: persistent arrays,
/// the local event queue, and run-local buffers that the drivers drain
/// back into the [`Interp`] at barriers.
#[derive(Debug)]
pub(crate) struct Shard {
    switch: u64,
    /// A failed switch keeps its shard (so queued events can be counted
    /// as dropped) but loses its state.
    alive: bool,
    pub(crate) state: SwitchState,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Per-source emission counter feeding [`Key::seq`].
    emit_seq: u64,
    /// This shard's virtual clock: the latest event time it has executed.
    pub(crate) now_ns: u64,
    trace: Vec<(Key, Handled)>,
    pub(crate) output: Vec<(Key, String)>,
    stats: Stats,
    /// Events generated for *other* switches, awaiting routing.
    outbox: Vec<Scheduled>,
    /// Reusable bytecode register / object-slot / hash-argument buffers.
    pub(crate) bc_regs: Vec<crate::bytecode::Rv>,
    pub(crate) bc_objs: Vec<crate::bytecode::Obj>,
    pub(crate) bc_hash: Vec<u64>,
    /// Per-event-id dispatch counts; folded into the name-keyed
    /// [`Stats::per_event`] once per run (keeps the dispatch hot path
    /// free of string allocation and hashing).
    per_event_ids: Vec<u64>,
    /// Per-event-id latency histograms, same id-indexed pattern as
    /// `per_event_ids`: lock-free on the dispatch path, folded into the
    /// interpreter-level [`Metrics`] once per run.
    metrics: ShardMetrics,
    /// Root-injection time of the event currently dispatching, so
    /// `generate` can thread the causal chain's root into its emissions.
    cur_root_ns: u64,
}

impl Shard {
    fn new(switch: u64, prog: &CheckedProgram) -> Self {
        Shard {
            switch,
            alive: true,
            state: SwitchState::zeroed(prog),
            queue: BinaryHeap::new(),
            emit_seq: 0,
            now_ns: 0,
            trace: Vec::new(),
            output: Vec::new(),
            stats: Stats::default(),
            outbox: Vec::new(),
            bc_regs: Vec::new(),
            bc_objs: Vec::new(),
            bc_hash: Vec::new(),
            per_event_ids: vec![0; prog.info.events.len()],
            metrics: ShardMetrics::new(prog.info.events.len()),
            cur_root_ns: 0,
        }
    }

    fn next_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(s)| s.key.time_ns)
    }
}

/// The handler-execution engine: immutable program + timing parameters.
/// It mutates exactly one shard at a time, which is what lets the worker
/// pool run shards concurrently.
#[derive(Clone)]
pub(crate) struct Exec<'p> {
    prog: &'p CheckedProgram,
    recirc_ns: u64,
    link_ns: u64,
    pub(crate) echo: bool,
    /// Sharded drivers want local recirculations straight on the shard's
    /// own queue (they can land within the current epoch); the sequential
    /// driver routes everything through its global queue via the outbox.
    local_to_queue: bool,
    /// Compiled bytecode when [`ExecMode::Bytecode`] is selected; `None`
    /// runs the AST walker (the reference semantics).
    compiled: Option<Arc<CompiledProg>>,
}

/// Execution context of one handler activation.
struct ExecCx {
    switch: u64,
    key: Key,
    env: HashMap<String, Value>,
    /// Array-typed function parameters in scope: name → resolved global.
    array_params: Vec<(String, GlobalId)>,
}

impl<'p> Exec<'p> {
    /// Declared event with no handler: it leaves the simulated network
    /// (e.g. a report exported to a collector). It still counts in
    /// `per_event`, so scenario expectations can assert on exported
    /// reports.
    fn note_exported(&self, shard: &mut Shard, name: String, sched: Scheduled) {
        shard.stats.exported += 1;
        shard.per_event_ids[sched.event_id] += 1;
        shard.trace.push((
            sched.key,
            Handled {
                time_ns: sched.key.time_ns,
                switch: sched.switch,
                event: name,
                args: sched.args,
            },
        ));
    }

    /// Record a handled event's trace entry. Called *after* the handler
    /// body ran (faulted or not) so the schedule entry's args move into
    /// the trace instead of being cloned — observably identical: the
    /// entry lands before the next event dispatches, faulting events
    /// included, and printf output lives in its own keyed buffer.
    fn note_handled(&self, shard: &mut Shard, name: &str, key: Key, switch: u64, args: Vec<u64>) {
        shard.stats.handled += 1;
        shard.trace.push((
            key,
            Handled {
                time_ns: key.time_ns,
                switch,
                event: name.to_string(),
                args,
            },
        ));
    }

    /// Run one event on its shard. The caller has already popped it from
    /// the shard queue and advanced the shard clock.
    fn dispatch(&self, shard: &mut Shard, sched: Scheduled) -> Result<(), InterpError> {
        // Borrow the event name from the program — the hot path never
        // clones it (only trace records and fault payloads allocate).
        let name = &self.prog.info.events[sched.event_id].name;
        if !shard.alive {
            shard.stats.dropped += 1;
            return Ok(());
        }

        // Metrics: both measurements are differences of deterministic
        // virtual instants (dispatch time is the event's own key time in
        // either engine), so sequential and sharded runs record
        // identical samples. Dropped events never dispatch and are not
        // measured; handled and exported events both are, matching
        // `per_event` counts. The root instant is parked on the shard so
        // any `generate` in the handler body inherits it.
        shard.metrics.record(
            sched.event_id,
            sched.key.time_ns - sched.root_ns,
            sched.key.time_ns - sched.enq_ns,
        );
        shard.cur_root_ns = sched.root_ns;

        // Bytecode fast path: flat dispatch over the compiled handler.
        if let Some(cp) = self.compiled.as_deref() {
            return match cp.handler(sched.event_id) {
                Some(h) => {
                    shard.per_event_ids[sched.event_id] += 1;
                    let (key, switch) = (sched.key, sched.switch);
                    let res = cp
                        .run_handler(h, self, shard, switch, key, &sched.args)
                        .map_err(|e| e.located(key.fault_at(switch, name)));
                    self.note_handled(shard, name, key, switch, sched.args);
                    res
                }
                None => {
                    self.note_exported(shard, name.clone(), sched);
                    Ok(())
                }
            };
        }

        let Some((params, body)) = self.prog.handler_body(name) else {
            self.note_exported(shard, name.clone(), sched);
            return Ok(());
        };

        shard.per_event_ids[sched.event_id] += 1;
        let mut env: HashMap<String, Value> = HashMap::new();
        for (p, a) in params.iter().zip(&sched.args) {
            env.insert(p.name.name.clone(), value_of(p.ty, *a));
        }
        let mut cx = ExecCx {
            switch: sched.switch,
            key: sched.key,
            env,
            array_params: Vec::new(),
        };
        let body = body.clone();
        let res = self
            .exec_block(shard, &body, &mut cx)
            .map_err(|e| e.located(sched.key.fault_at(sched.switch, name)));
        self.note_handled(shard, name, sched.key, sched.switch, sched.args);
        res?;
        Ok(())
    }

    // ------------------------------------------------------------ handlers

    fn exec_block(
        &self,
        shard: &mut Shard,
        b: &Block,
        cx: &mut ExecCx,
    ) -> Result<Flow, InterpError> {
        for s in &b.stmts {
            match self.exec_stmt(shard, s, cx)? {
                Flow::Normal => {}
                r @ Flow::Returned(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&self, shard: &mut Shard, s: &Stmt, cx: &mut ExecCx) -> Result<Flow, InterpError> {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let mut v = self.eval(shard, init, cx)?;
                if let (Some(Ty::Int(w)), Value::Int { v: x, .. }) = (ty, &v) {
                    v = Value::int(*x, *w);
                }
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { name, value } => {
                let v = self.eval(shard, value, cx)?;
                let v = match (cx.env.get(&name.name), v) {
                    (Some(Value::Int { width, .. }), Value::Int { v: x, .. }) => {
                        Value::int(x, *width)
                    }
                    (_, v) => v,
                };
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self
                    .eval(shard, cond, cx)?
                    .as_bool()
                    .expect("checked: bool");
                if c {
                    self.exec_block(shard, then_blk, cx)
                } else if let Some(e) = else_blk {
                    self.exec_block(shard, e, cx)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let v = self.eval(shard, e, cx)?;
                let Value::Event(ev) = v else {
                    panic!("checked: generate of non-event")
                };
                self.emit(shard, ev);
                Ok(Flow::Normal)
            }
            StmtKind::Return(None) => Ok(Flow::Returned(Value::Void)),
            StmtKind::Return(Some(e)) => {
                let v = self.eval(shard, e, cx)?;
                Ok(Flow::Returned(v))
            }
            StmtKind::Printf { fmt, args } => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(shard, a, cx)?);
                }
                let line = format_printf(fmt, &vals);
                if self.echo {
                    println!("[{} @{}ns] {}", cx.switch, shard.now_ns, line);
                }
                shard.output.push((cx.key, line));
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(shard, e, cx)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Schedule a generated event according to its location and delay.
    /// Local targets go straight onto the shard's queue (a recirculation
    /// can land within the current epoch); every other target goes to the
    /// outbox for the driver to route.
    pub(crate) fn emit(&self, shard: &mut Shard, mut ev: EventVal) {
        let from = shard.switch;
        let lat_to = |target: u64| {
            if target == from {
                self.recirc_ns
            } else {
                self.link_ns
            }
        };
        // Unicast (the overwhelmingly common case) moves the event's
        // args straight into the schedule entry: no clone, no target
        // vector. Multicast clones once per member.
        match std::mem::replace(&mut ev.location, Location::Here) {
            Location::Here => {
                let args = std::mem::take(&mut ev.args);
                self.emit_one(shard, from, self.recirc_ns, &ev, args);
            }
            Location::Switch(s) => {
                let args = std::mem::take(&mut ev.args);
                self.emit_one(shard, s, lat_to(s), &ev, args);
            }
            Location::Group(members) => {
                for &m in &members {
                    self.emit_one(shard, m, lat_to(m), &ev, ev.args.clone());
                }
            }
        }
    }

    /// Schedule one copy of a generated event at one target.
    fn emit_one(&self, shard: &mut Shard, target: u64, lat: u64, ev: &EventVal, args: Vec<u64>) {
        let from = shard.switch;
        shard.emit_seq += 1;
        let sched = Scheduled {
            key: Key {
                time_ns: shard.now_ns + lat + ev.delay_ns,
                class: 1,
                origin: from,
                seq: shard.emit_seq,
            },
            switch: target,
            event_id: ev.event_id,
            args,
            enq_ns: shard.now_ns,
            root_ns: shard.cur_root_ns,
        };
        if target == from {
            shard.stats.recirculated += 1;
            if self.local_to_queue {
                shard.queue.push(Reverse(sched));
            } else {
                shard.outbox.push(sched);
            }
        } else {
            shard.stats.sent_remote += 1;
            shard.outbox.push(sched);
        }
    }

    // --------------------------------------------------------- expressions

    fn eval(&self, shard: &mut Shard, e: &Expr, cx: &mut ExecCx) -> Result<Value, InterpError> {
        match &e.kind {
            ExprKind::Int { value, width } => Ok(Value::int(*value, width.unwrap_or(32))),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Var(id) => {
                if let Some(v) = cx.env.get(&id.name) {
                    return Ok(v.clone());
                }
                if id.name == "SELF" {
                    return Ok(Value::int(cx.switch, 32));
                }
                if let Some(c) = self.prog.info.consts.get(&id.name) {
                    return Ok(match c.ty {
                        Ty::Bool => Value::Bool(c.value != 0),
                        Ty::Int(w) => Value::int(c.value, w),
                        _ => Value::int(c.value, 32),
                    });
                }
                if let Some(g) = self.prog.info.groups.get(&id.name) {
                    return Ok(Value::Group(g.members.clone()));
                }
                panic!("checked program has unbound var `{}`", id.name)
            }
            ExprKind::Unary { op, arg } => {
                let v = self.eval(shard, arg, cx)?;
                Ok(match op {
                    UnOp::Not => Value::Bool(!v.as_bool().expect("checked")),
                    UnOp::Neg => match v {
                        Value::Int { v, width } => Value::int(v.wrapping_neg(), width),
                        _ => panic!("checked"),
                    },
                    UnOp::BitNot => match v {
                        Value::Int { v, width } => Value::int(!v, width),
                        _ => panic!("checked"),
                    },
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit the logical connectives.
                if *op == BinOp::And {
                    let l = self.eval(shard, lhs, cx)?.as_bool().expect("checked");
                    if !l {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(
                        self.eval(shard, rhs, cx)?.as_bool().expect("checked"),
                    ));
                }
                if *op == BinOp::Or {
                    let l = self.eval(shard, lhs, cx)?.as_bool().expect("checked");
                    if l {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(
                        self.eval(shard, rhs, cx)?.as_bool().expect("checked"),
                    ));
                }
                let l = self.eval(shard, lhs, cx)?;
                let r = self.eval(shard, rhs, cx)?;
                Ok(eval_binop(*op, &l, &r))
            }
            ExprKind::Cast { width, arg } => {
                let v = self.eval(shard, arg, cx)?.as_int().expect("checked");
                Ok(Value::int(v, *width))
            }
            ExprKind::Hash { width, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(shard, a, cx)?.as_int().expect("checked"));
                }
                let (seed, rest) = vals.split_first().expect("parser: nonempty");
                Ok(Value::int(lucid_hash(*width, *seed, rest), *width))
            }
            ExprKind::Call { callee, args } => {
                // Event constructor.
                if let Some(ev) = self.prog.info.event(&callee.name) {
                    let id = ev.id;
                    let widths: Vec<u32> = ev
                        .params
                        .iter()
                        .map(|p| p.ty.int_width().unwrap_or(32))
                        .collect();
                    let name: std::sync::Arc<str> = ev.name.as_str().into();
                    let mut vals = Vec::with_capacity(args.len());
                    for (a, w) in args.iter().zip(widths) {
                        vals.push(mask(self.eval(shard, a, cx)?.as_int().expect("checked"), w));
                    }
                    return Ok(Value::Event(EventVal {
                        event_id: id,
                        name,
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    }));
                }
                // User function: evaluate args, bind, run body.
                let (_, params, body) = self
                    .prog
                    .fun_body(&callee.name)
                    .expect("checked: function exists");
                let params = params.clone();
                let body = body.clone();
                let mut env = HashMap::new();
                for (p, a) in params.iter().zip(args) {
                    match p.ty {
                        Ty::Array(_) => {
                            // Resolve the array argument to a name usable by
                            // nested Array.* calls: store as a marker value.
                            let gid = self.resolve_array(a, cx);
                            env.insert(p.name.name.clone(), Value::int(gid.0 as u64, 32));
                            cx.array_params.push((p.name.name.clone(), gid));
                        }
                        _ => {
                            let v = self.eval(shard, a, cx)?;
                            env.insert(p.name.name.clone(), v);
                        }
                    }
                }
                let saved_env = std::mem::replace(&mut cx.env, env);
                let array_params_mark = cx.array_params.len();
                let flow = self.exec_block(shard, &body, cx)?;
                cx.env = saved_env;
                cx.array_params.truncate(
                    array_params_mark.saturating_sub(
                        params
                            .iter()
                            .filter(|p| matches!(p.ty, Ty::Array(_)))
                            .count(),
                    ),
                );
                Ok(match flow {
                    Flow::Returned(v) => v,
                    Flow::Normal => Value::Void,
                })
            }
            ExprKind::BuiltinCall { builtin, args, .. } => {
                self.eval_builtin(shard, *builtin, args, cx)
            }
        }
    }

    fn resolve_array(&self, e: &Expr, cx: &ExecCx) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => {
                // A function's array parameter shadows globals.
                if let Some((_, gid)) = cx.array_params.iter().rev().find(|(n, _)| *n == id.name) {
                    return *gid;
                }
                self.prog.info.globals_by_name[&id.name]
            }
            _ => panic!("checked: array argument is a name"),
        }
    }

    fn eval_builtin(
        &self,
        shard: &mut Shard,
        builtin: Builtin,
        args: &[Expr],
        cx: &mut ExecCx,
    ) -> Result<Value, InterpError> {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let gid = self.resolve_array(&args[0], cx);
                let g = self.prog.info.globals[gid.0].clone();
                let idx = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if idx >= g.len {
                    return Err(InterpFault::IndexOutOfBounds {
                        array: g.name.clone(),
                        index: idx,
                        len: g.len,
                    }
                    .into());
                }
                let cur = shard.state.arrays[gid.0][idx as usize];
                let w = g.cell_width;
                match builtin {
                    Builtin::ArrayGet => Ok(Value::int(cur, w)),
                    Builtin::ArrayGetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        Ok(Value::int(eval_memop(&m, cur, local, w), w))
                    }
                    Builtin::ArraySet => {
                        let v = self.eval(shard, &args[2], cx)?.as_int().expect("checked");
                        shard.state.arrays[gid.0][idx as usize] = mask(v, w);
                        Ok(Value::Void)
                    }
                    Builtin::ArraySetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        shard.state.arrays[gid.0][idx as usize] = eval_memop(&m, cur, local, w);
                        Ok(Value::Void)
                    }
                    Builtin::ArrayUpdate => {
                        let getop = self.memop_of(&args[2]);
                        let getarg = self.eval(shard, &args[3], cx)?.as_int().expect("checked");
                        let setop = self.memop_of(&args[4]);
                        let setarg = self.eval(shard, &args[5], cx)?.as_int().expect("checked");
                        let ret = eval_memop(&getop, cur, getarg, w);
                        shard.state.arrays[gid.0][idx as usize] =
                            eval_memop(&setop, cur, setarg, w);
                        Ok(Value::int(ret, w))
                    }
                    _ => unreachable!(),
                }
            }
            Builtin::EventDelay => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let d_us = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.delay_ns += d_us * 1_000;
                }
                Ok(v)
            }
            Builtin::EventLocate => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let loc = self.eval(shard, &args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Switch(loc);
                }
                Ok(v)
            }
            Builtin::EventMLocate => {
                let mut v = self.eval(shard, &args[0], cx)?;
                let Value::Group(g) = self.eval(shard, &args[1], cx)? else {
                    panic!("checked: group")
                };
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Group(g);
                }
                Ok(v)
            }
            Builtin::SysTime => Ok(Value::int(shard.now_ns / 1_000, 32)),
            Builtin::SysSelf => Ok(Value::int(cx.switch, 32)),
            Builtin::SysPort => Ok(Value::int(0, 32)),
        }
    }

    fn memop_of(&self, e: &Expr) -> lucid_check::MemopIr {
        match &e.kind {
            ExprKind::Var(id) => self.prog.memops[&id.name].clone(),
            _ => panic!("checked: memop position holds a name"),
        }
    }
}

// ------------------------------------------------------------------ pool

/// One barrier round's instructions to a worker.
enum Cmd {
    Epoch {
        /// Exclusive virtual-time horizon of this epoch.
        end_ns: u64,
        /// Maximum events this worker may process in the epoch — the
        /// liveness bound for zero-latency recirculation loops, which
        /// would otherwise never leave the epoch.
        budget: u64,
        /// Cross-shard events routed to this worker's shards.
        deliveries: Vec<Scheduled>,
    },
    Stop,
}

/// One worker's barrier report.
#[derive(Default)]
struct Rsp {
    processed: u64,
    outbox: Vec<Scheduled>,
    next_ns: Option<u64>,
    error: Option<(Key, InterpError)>,
    /// The worker panicked; the coordinator must stop and join.
    died: bool,
}

/// Sends a `died` report if its worker unwinds, so the coordinator's
/// barrier `recv` cannot block forever on a panicked worker.
struct DeathWatch {
    tx: mpsc::Sender<Rsp>,
    armed: bool,
}

impl Drop for DeathWatch {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            let _ = self.tx.send(Rsp {
                died: true,
                ..Rsp::default()
            });
        }
    }
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The interpreter. Borrows the checked program; owns all simulation state.
pub struct Interp<'p> {
    prog: &'p CheckedProgram,
    pub config: NetConfig,
    /// One shard per configured switch, keyed by switch id.
    shards: BTreeMap<u64, Shard>,
    /// Pending events between runs (and the sequential driver's queue).
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Injection counter feeding [`Key::seq`] for external events.
    inj_seq: u64,
    /// Simulation clock, nanoseconds.
    pub now_ns: u64,
    /// Every handled event, in deterministic `Key` order. Cleared with
    /// [`Interp::clear_trace`].
    pub trace: Vec<Handled>,
    /// `printf` output lines, in the same deterministic order.
    pub output: Vec<String>,
    pub stats: Stats,
    /// When true, `printf` also writes to stdout.
    pub echo: bool,
    /// Lazily compiled bytecode, populated when [`NetConfig::exec`] is
    /// [`ExecMode::Bytecode`] (shared with the worker pool).
    compiled: Option<Arc<CompiledProg>>,
    /// Attached streaming injection source ([`Interp::set_source`]). Both
    /// drivers drain it lazily — events materialize only when due, so a
    /// ten-million-event workload never builds an event vector.
    source: Option<Box<dyn EventSource>>,
    /// Events injected per source index (for per-generator report rows).
    source_counts: Vec<u64>,
    /// Per-class latency histograms folded out of the shards once per
    /// run, keyed (switch, event name) for deterministic order. Each
    /// class lives on exactly one shard and histogram merge commutes, so
    /// both engines accumulate bit-identical content here.
    metrics_acc: BTreeMap<(u64, String), ClassHists>,
}

impl<'p> Interp<'p> {
    pub fn new(prog: &'p CheckedProgram, config: NetConfig) -> Self {
        let shards = config
            .switches
            .iter()
            .map(|&s| (s, Shard::new(s, prog)))
            .collect();
        let mut interp = Interp {
            prog,
            config,
            shards,
            queue: BinaryHeap::new(),
            inj_seq: 0,
            now_ns: 0,
            trace: Vec::new(),
            output: Vec::new(),
            stats: Stats::default(),
            echo: false,
            compiled: None,
            source: None,
            source_counts: Vec::new(),
            metrics_acc: BTreeMap::new(),
        };
        interp.ensure_compiled();
        interp
    }

    /// Single-switch interpreter with default timing.
    pub fn single(prog: &'p CheckedProgram) -> Self {
        Interp::new(prog, NetConfig::single())
    }

    /// Compile the program once if the bytecode executor is selected.
    /// `config` is public, so re-check on every run: flipping
    /// [`NetConfig::exec`] (or [`NetConfig::opt`]) between runs is
    /// supported — a cached artifact compiled at a different level is
    /// recompiled.
    fn ensure_compiled(&mut self) {
        if self.config.exec == ExecMode::Bytecode
            && self
                .compiled
                .as_ref()
                .is_none_or(|cp| cp.opt_level() != self.config.opt)
        {
            self.compiled = Some(Arc::new(CompiledProg::compile_opt(
                self.prog,
                self.config.opt,
            )));
        }
    }

    fn exec(&self, local_to_queue: bool) -> Exec<'p> {
        Exec {
            prog: self.prog,
            recirc_ns: self.config.recirc_latency_ns,
            link_ns: self.config.link_latency_ns,
            echo: self.echo,
            local_to_queue,
            compiled: if self.config.exec == ExecMode::Bytecode {
                self.compiled.clone()
            } else {
                None
            },
        }
    }

    /// Schedule an externally injected event (e.g. a packet arrival) by
    /// name at an absolute time. Injections to switches outside the
    /// configured topology are counted as dropped immediately.
    pub fn schedule(
        &mut self,
        switch: u64,
        time_ns: u64,
        event: &str,
        args: &[u64],
    ) -> Result<(), InterpError> {
        // Failed injections point at themselves: the offending time,
        // switch, and name, so a scenario error names the bad line.
        let at = FaultAt {
            time_ns,
            switch,
            event: event.to_string(),
            origin: None,
            seq: self.inj_seq + 1,
        };
        let ev = self.prog.info.event(event).ok_or_else(|| {
            InterpError::from(InterpFault::NoSuchEvent(event.to_string())).located(at.clone())
        })?;
        if ev.params.len() != args.len() {
            return Err(InterpError::from(InterpFault::BadArity {
                event: event.to_string(),
                want: ev.params.len(),
                got: args.len(),
            })
            .located(at));
        }
        let masked: Vec<u64> = ev
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| mask(*a, p.ty.int_width().unwrap_or(32)))
            .collect();
        if !self.shards.contains_key(&switch) {
            self.stats.dropped += 1;
            return Ok(());
        }
        self.inj_seq += 1;
        self.queue.push(Reverse(Scheduled {
            key: Key {
                time_ns,
                class: 0,
                origin: 0,
                seq: self.inj_seq,
            },
            switch,
            event_id: ev.id,
            args: masked,
            // An injection roots its own causal chain and spends no
            // virtual time queued (it is scheduled at its arrival
            // instant), so both metric baselines are the key time.
            enq_ns: time_ns,
            root_ns: time_ns,
        }));
        Ok(())
    }

    /// Attach a streaming injection source. Subsequent [`Interp::run`]
    /// calls drain it lazily, interleaved with explicitly scheduled
    /// events in deterministic key order (sourced events are class-0
    /// injections, sequenced in pull order). The source persists across
    /// runs until exhausted or replaced.
    pub fn set_source(&mut self, source: Box<dyn EventSource>) {
        self.source_counts = vec![0; source.source_count()];
        self.source = Some(source);
    }

    /// Whether the attached source still has events to emit.
    pub fn source_pending(&self) -> bool {
        self.source.as_ref().is_some_and(|s| s.peek_ns().is_some())
    }

    /// Events injected so far per source index (empty without a source).
    pub fn source_counts(&self) -> &[u64] {
        &self.source_counts
    }

    /// Pull one event from the attached source and shape it into a
    /// scheduled injection. Events bound for switches `known` rejects are
    /// dropped (counted) and skipped, mirroring [`Interp::schedule`].
    /// `None` means the source is exhausted.
    fn pull_sourced(&mut self, known: impl Fn(u64) -> bool) -> Option<Scheduled> {
        loop {
            let ev = self.source.as_mut()?.next_event()?;
            if let Some(n) = self.source_counts.get_mut(ev.source) {
                *n += 1;
            }
            if !known(ev.switch) {
                self.stats.dropped += 1;
                continue;
            }
            self.inj_seq += 1;
            let params = &self.prog.info.events[ev.event_id].params;
            // Exactly one value per parameter, masked to its width —
            // short custom-source arg lists pad with zeros rather than
            // leaving handler parameters unbound.
            let args = params
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    mask(
                        ev.args.get(i).copied().unwrap_or(0),
                        p.ty.int_width().unwrap_or(32),
                    )
                })
                .collect();
            return Some(Scheduled {
                key: Key {
                    time_ns: ev.time_ns,
                    class: 0,
                    origin: 0,
                    seq: self.inj_seq,
                },
                switch: ev.switch,
                event_id: ev.event_id,
                args,
                enq_ns: ev.time_ns,
                root_ns: ev.time_ns,
            });
        }
    }

    /// The source's next event time, if any.
    fn source_peek(&self) -> Option<u64> {
        self.source.as_ref().and_then(|s| s.peek_ns())
    }

    /// Read a global array on a switch (for assertions). Panics if the
    /// switch is unknown or currently failed; see [`Interp::try_array`].
    pub fn array(&self, switch: u64, name: &str) -> &[u64] {
        self.try_array(switch, name)
            .unwrap_or_else(|| panic!("switch {switch} is unknown or failed"))
    }

    /// Read a global array on a switch, `None` when the switch is unknown
    /// or failed.
    pub fn try_array(&self, switch: u64, name: &str) -> Option<&[u64]> {
        let gid = self.prog.info.globals_by_name[name];
        let shard = self.shards.get(&switch)?;
        if !shard.alive {
            return None;
        }
        Some(&shard.state.arrays[gid.0])
    }

    /// Whether a switch is configured and currently alive.
    pub fn alive(&self, switch: u64) -> bool {
        self.shards.get(&switch).is_some_and(|s| s.alive)
    }

    /// Overwrite a global array cell (test setup / fault injection).
    pub fn poke(&mut self, switch: u64, name: &str, index: usize, value: u64) {
        let gid = self.prog.info.globals_by_name[name];
        let g = &self.prog.info.globals[gid.0];
        let v = mask(value, g.cell_width);
        self.shards
            .get_mut(&switch)
            .expect("switch exists")
            .state
            .arrays[gid.0][index] = v;
    }

    /// Fault injection: take a switch offline. Its state is lost and any
    /// event destined to it is dropped (counted in [`Stats::dropped`]),
    /// exactly like a dead box on the wire.
    pub fn fail_switch(&mut self, id: u64) {
        if let Some(shard) = self.shards.get_mut(&id) {
            shard.alive = false;
            shard.state = SwitchState::zeroed(self.prog);
        }
    }

    /// Bring a previously failed switch back with zeroed registers (a
    /// rebooted switch does not remember its arrays).
    pub fn recover_switch(&mut self, id: u64) {
        if let Some(shard) = self.shards.get_mut(&id) {
            shard.alive = true;
            shard.state = SwitchState::zeroed(self.prog);
        }
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.shards.values().map(|s| s.queue.len()).sum::<usize>()
    }

    pub fn clear_trace(&mut self) {
        self.trace.clear();
        self.output.clear();
    }

    /// Run until the queue drains, `max_events` have been handled, or the
    /// clock passes `max_time_ns` (events after the horizon stay queued).
    /// Dispatches to the driver named by [`NetConfig::engine`].
    pub fn run(&mut self, max_events: u64, max_time_ns: u64) -> Result<(), InterpError> {
        self.ensure_compiled();
        let res = match self.config.engine {
            Engine::Sequential => self.run_sequential(max_events, max_time_ns),
            Engine::Sharded { workers, epoch_ns } => {
                self.run_sharded(max_events, max_time_ns, workers, epoch_ns)
            }
        };
        // Per-event counts accumulate as plain id-indexed counters on
        // the shards (the dispatch path never touches a hash map); they
        // materialize into `Stats::per_event` once per run — faulted
        // runs included, since tests compare those stats too.
        self.fold_per_event_counts();
        self.fold_metrics();
        res
    }

    /// Fold every shard's id-indexed per-event counters into the
    /// name-keyed [`Stats::per_event`] map, zeroing the counters (safe
    /// to call any number of times).
    fn fold_per_event_counts(&mut self) {
        for shard in self.shards.values_mut() {
            for (id, n) in shard.per_event_ids.iter_mut().enumerate() {
                if *n > 0 {
                    *self
                        .stats
                        .per_event
                        .entry(self.prog.info.events[id].name.clone())
                        .or_insert(0) += *n;
                    *n = 0;
                }
            }
        }
    }

    /// Fold every shard's per-event histograms into the metrics
    /// accumulator, zeroing the shard collectors (safe to call any
    /// number of times; accumulates across segmented runs the way a
    /// failure schedule drives them).
    fn fold_metrics(&mut self) {
        for shard in self.shards.values_mut() {
            Metrics::absorb_shard(
                &mut self.metrics_acc,
                shard.switch,
                &mut shard.metrics,
                |id| self.prog.info.events[id].name.clone(),
            );
        }
    }

    /// The per-event-class latency metrics accumulated so far, one row
    /// per (switch, event) class in sorted order. Deterministic and
    /// engine-independent: both engines yield bit-identical metrics
    /// ([`Metrics::digest`]) on successful runs, same contract as state,
    /// stats, and trace.
    pub fn metrics(&self) -> Metrics {
        Metrics::from_acc(&self.metrics_acc)
    }

    /// Run with a generous default budget; most tests use this.
    pub fn run_to_quiescence(&mut self) -> Result<(), InterpError> {
        self.run(1_000_000, u64::MAX)
    }

    // ------------------------------------------------- sequential driver

    fn run_sequential(&mut self, max_events: u64, max_time_ns: u64) -> Result<(), InterpError> {
        let exec = self.exec(false);
        let known: std::collections::HashSet<u64> = self.shards.keys().copied().collect();
        let mut processed_this_run = 0u64;
        loop {
            // Lazy refill: materialize exactly the sourced injections due
            // at or before the queue head (all of them when the queue is
            // empty would pull the whole stream, so pull one and re-check).
            // Memory stays bounded by the in-flight frontier.
            while let Some(t) = self.source_peek() {
                if t > max_time_ns {
                    break;
                }
                if let Some(Reverse(h)) = self.queue.peek() {
                    if h.key.time_ns < t {
                        break;
                    }
                }
                if let Some(s) = self.pull_sourced(|sw| known.contains(&sw)) {
                    self.queue.push(Reverse(s));
                }
            }
            let Some(Reverse(next)) = self.queue.peek() else {
                return Ok(());
            };
            if next.key.time_ns > max_time_ns {
                return Ok(());
            }
            if processed_this_run >= max_events {
                return Err(InterpFault::FuelExhausted {
                    handled: processed_this_run,
                }
                .into());
            }
            let Reverse(sched) = self.queue.pop().expect("peeked");
            processed_this_run += 1;
            self.stats.processed += 1;
            self.now_ns = self.now_ns.max(sched.key.time_ns);
            let shard = self
                .shards
                .get_mut(&sched.switch)
                .expect("routed to known switch");
            shard.now_ns = shard.now_ns.max(sched.key.time_ns);
            let res = exec.dispatch(shard, sched);
            // Route everything the handler produced (local and remote —
            // the sequential exec sends both through the outbox) back to
            // the global queue, and surface the shard's buffers
            // immediately (the pop order already is the deterministic
            // key order).
            let mut dropped_unknown = 0;
            for ev in shard.outbox.drain(..) {
                if known.contains(&ev.switch) {
                    self.queue.push(Reverse(ev));
                } else {
                    dropped_unknown += 1;
                }
            }
            self.trace.extend(shard.trace.drain(..).map(|(_, h)| h));
            self.output.extend(shard.output.drain(..).map(|(_, s)| s));
            self.stats.absorb(&mut shard.stats);
            self.stats.dropped += dropped_unknown;
            res?;
        }
    }

    /// Move every shard's run-local buffers into the interpreter-level
    /// trace/output/stats, in deterministic key order.
    fn drain_all_buffers(&mut self) {
        let mut trace: Vec<(Key, Handled)> = Vec::new();
        let mut output: Vec<(Key, String)> = Vec::new();
        for shard in self.shards.values_mut() {
            trace.append(&mut shard.trace);
            output.append(&mut shard.output);
            self.stats.absorb(&mut shard.stats);
            self.now_ns = self.now_ns.max(shard.now_ns);
        }
        trace.sort_by_key(|(k, _)| *k);
        output.sort_by_key(|(k, _)| *k);
        self.trace.extend(trace.into_iter().map(|(_, h)| h));
        self.output.extend(output.into_iter().map(|(_, s)| s));
    }

    // ---------------------------------------------------- sharded driver

    fn run_sharded(
        &mut self,
        max_events: u64,
        max_time_ns: u64,
        workers: usize,
        epoch_ns: u64,
    ) -> Result<(), InterpError> {
        let link = self.config.link_latency_ns;
        // A zero-latency wire admits no conservative epoch; a single shard
        // has nothing to parallelize. Fall back to the reference engine.
        if link == 0 || self.shards.len() <= 1 {
            return self.run_sequential(max_events, max_time_ns);
        }
        let epoch = if epoch_ns == 0 {
            link
        } else {
            epoch_ns.min(link)
        };
        let nworkers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            workers
        }
        .clamp(1, self.shards.len());

        // Distribute pending events onto their shards' queues.
        let mut q = std::mem::take(&mut self.queue);
        for Reverse(ev) in q.drain() {
            match self.shards.get_mut(&ev.switch) {
                Some(sh) => sh.queue.push(Reverse(ev)),
                None => self.stats.dropped += 1,
            }
        }

        // Static partition: shard i (in switch-id order) → worker i % W.
        let shard_map = std::mem::take(&mut self.shards);
        let mut owner: HashMap<u64, usize> = HashMap::new();
        let mut partitions: Vec<Vec<Shard>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut next_ns: Option<u64> = None;
        for (i, (id, shard)) in shard_map.into_iter().enumerate() {
            next_ns = min_opt(next_ns, shard.next_time());
            owner.insert(id, i % nworkers);
            partitions[i % nworkers].push(shard);
        }
        next_ns = min_opt(next_ns, self.source_peek());

        let exec = self.exec(true);
        let mut total_processed = 0u64;
        let mut first_error: Option<(Key, InterpError)> = None;
        let mut fuel_exhausted = false;
        let mut returned: Vec<Vec<Shard>> = Vec::new();

        std::thread::scope(|scope| {
            let (rsp_tx, rsp_rx) = mpsc::channel::<Rsp>();
            let mut cmd_txs = Vec::with_capacity(nworkers);
            let mut handles = Vec::with_capacity(nworkers);
            for mut shards in partitions.into_iter() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                cmd_txs.push(cmd_tx);
                let rsp_tx = rsp_tx.clone();
                let exec = exec.clone();
                handles.push(scope.spawn(move || {
                    // If this worker unwinds, tell the coordinator rather
                    // than leaving it blocked on a response forever.
                    let mut watch = DeathWatch {
                        tx: rsp_tx.clone(),
                        armed: true,
                    };
                    while let Ok(cmd) = cmd_rx.recv() {
                        let Cmd::Epoch {
                            end_ns,
                            budget,
                            deliveries,
                        } = cmd
                        else {
                            break;
                        };
                        for ev in deliveries {
                            let sh = shards
                                .iter_mut()
                                .find(|s| s.switch == ev.switch)
                                .expect("routed to owned shard");
                            sh.queue.push(Reverse(ev));
                        }
                        let mut rsp = Rsp::default();
                        for shard in &mut shards {
                            while let Some(Reverse(head)) = shard.queue.peek() {
                                // The per-epoch budget keeps zero-latency
                                // recirculation loops from spinning forever
                                // inside one epoch; leftover events simply
                                // surface at the barrier as fuel exhaustion.
                                if head.key.time_ns >= end_ns || rsp.processed >= budget {
                                    break;
                                }
                                let Reverse(sched) = shard.queue.pop().expect("peeked");
                                shard.now_ns = shard.now_ns.max(sched.key.time_ns);
                                rsp.processed += 1;
                                let key = sched.key;
                                if let Err(e) = exec.dispatch(shard, sched) {
                                    // Keep the smallest-key fault; abandon
                                    // this shard's epoch.
                                    if rsp.error.as_ref().is_none_or(|(k, _)| key < *k) {
                                        rsp.error = Some((key, e));
                                    }
                                    break;
                                }
                            }
                            rsp.outbox.append(&mut shard.outbox);
                            rsp.next_ns = min_opt(rsp.next_ns, shard.next_time());
                        }
                        if rsp_tx.send(rsp).is_err() {
                            break;
                        }
                    }
                    watch.armed = false;
                    shards
                }));
            }
            drop(rsp_tx);

            let mut deliveries: Vec<Vec<Scheduled>> = (0..nworkers).map(|_| Vec::new()).collect();
            let mut dropped_unknown = 0u64;
            while let Some(t) = next_ns {
                if t > max_time_ns {
                    break;
                }
                if total_processed >= max_events {
                    fuel_exhausted = true;
                    break;
                }
                let end_ns = t.saturating_add(epoch).min(max_time_ns.saturating_add(1));
                // Materialize the sourced injections due inside this epoch
                // and route them with the epoch's deliveries. Pull order is
                // global time order — the same order the sequential driver
                // pulls in — so the assigned keys (and therefore execution)
                // are engine-independent.
                while let Some(st) = self.source_peek() {
                    if st >= end_ns {
                        break;
                    }
                    if let Some(s) = self.pull_sourced(|sw| owner.contains_key(&sw)) {
                        deliveries[owner[&s.switch]].push(s);
                    }
                }
                let budget = max_events.saturating_sub(total_processed);
                for (w, tx) in cmd_txs.iter().enumerate() {
                    let cmd = Cmd::Epoch {
                        end_ns,
                        budget,
                        deliveries: std::mem::take(&mut deliveries[w]),
                    };
                    // A send only fails when the worker died; its
                    // DeathWatch message is (or will be) in the response
                    // queue, so the recv loop below still completes.
                    let _ = tx.send(cmd);
                }
                let mut round_next: Option<u64> = None;
                let mut ok = true;
                for _ in 0..nworkers {
                    let Ok(rsp) = rsp_rx.recv() else {
                        ok = false;
                        break;
                    };
                    if rsp.died {
                        // A worker panicked; joining below re-raises it.
                        ok = false;
                        break;
                    }
                    total_processed += rsp.processed;
                    round_next = min_opt(round_next, rsp.next_ns);
                    if let Some((k, e)) = rsp.error {
                        if first_error.as_ref().is_none_or(|(fk, _)| k < *fk) {
                            first_error = Some((k, e));
                        }
                    }
                    for ev in rsp.outbox {
                        match owner.get(&ev.switch) {
                            Some(&w) => {
                                round_next = min_opt(round_next, Some(ev.key.time_ns));
                                deliveries[w].push(ev);
                            }
                            None => dropped_unknown += 1,
                        }
                    }
                }
                if !ok || first_error.is_some() {
                    break;
                }
                next_ns = min_opt(round_next, self.source_peek());
                // Workers each get the full remaining budget, so a round
                // can overshoot it even while draining the queue; report
                // that as fuel exhaustion exactly like the sequential
                // engine would have at event `max_events + 1`.
                if total_processed > max_events {
                    fuel_exhausted = true;
                    break;
                }
            }

            for tx in &cmd_txs {
                let _ = tx.send(Cmd::Stop);
            }
            drop(cmd_txs);
            // Undelivered cross-shard events stay pending for a later run.
            self.stats.dropped += dropped_unknown;
            for handle in handles {
                returned.push(handle.join().expect("worker panicked"));
            }
            for (w, devs) in deliveries.into_iter().enumerate() {
                for ev in devs {
                    let sh = returned[w]
                        .iter_mut()
                        .find(|s| s.switch == ev.switch)
                        .expect("owned shard returned");
                    sh.queue.push(Reverse(ev));
                }
            }
        });

        for shard in returned.into_iter().flatten() {
            self.shards.insert(shard.switch, shard);
        }
        self.stats.processed += total_processed;
        self.drain_all_buffers();
        // Park leftover shard-queue events back on the global queue so a
        // later run (under either engine) sees them.
        for shard in self.shards.values_mut() {
            while let Some(ev) = shard.queue.pop() {
                self.queue.push(ev);
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        if fuel_exhausted {
            return Err(InterpFault::FuelExhausted {
                handled: total_processed,
            }
            .into());
        }
        Ok(())
    }
}

fn value_of(ty: Ty, raw: u64) -> Value {
    match ty {
        Ty::Bool => Value::Bool(raw != 0),
        Ty::Int(w) => Value::int(raw, w),
        _ => Value::int(raw, 32),
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    if op.is_comparison() {
        let a = l.as_int().expect("checked");
        let b = r.as_int().expect("checked");
        return Value::Bool(match op {
            BinOp::Eq => a == b,
            BinOp::Neq => a != b,
            BinOp::Lt => a < b,
            BinOp::Gt => a > b,
            BinOp::Le => a <= b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        });
    }
    let (a, wa) = match l {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    let (b, wb) = match r {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    // Shifts keep the shifted operand's width (the checker types `a << b`
    // as `a`'s width regardless of `b`'s); everything else joins widths.
    let w = match op {
        BinOp::Shl | BinOp::Shr => wa,
        _ => wa.max(wb),
    };
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division by zero yields zero in the data plane.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        // A shift count at or past the operand width clears every bit of
        // a `width`-bit register; `wrapping_shl` alone would wrap the
        // count mod 64 and leave bits behind for 64-bit operands.
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
        _ => unreachable!(),
    };
    Value::int(v, w)
}

/// Minimal printf: `%d` decimal, `%x` hex, `%b` binary, `%%` literal.
pub(crate) fn format_printf(fmt: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut it = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') | None => {
                if let Some(v) = it.next() {
                    out.push_str(&v.to_string());
                }
            }
            Some('x') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:x}", v.as_int().unwrap_or(0)));
                }
            }
            Some('b') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:b}", v.as_int().unwrap_or(0)));
                }
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    fn checked(src: &str) -> CheckedProgram {
        match parse_and_check(src) {
            Ok(p) => p,
            Err(ds) => panic!("check failed:\n{ds}"),
        }
    }

    #[test]
    fn counter_program_counts() {
        let prog = checked(
            r#"
            global cts = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            event pkt(int idx);
            handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        for t in 0..5 {
            i.schedule(1, t * 100, "pkt", &[3]).unwrap();
        }
        i.schedule(1, 600, "pkt", &[5]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "cts")[3], 5);
        assert_eq!(i.array(1, "cts")[5], 1);
        assert_eq!(i.stats.handled, 6);
    }

    #[test]
    fn generate_recirculates_with_latency() {
        let prog = checked(
            r#"
            global hits = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            event ping(int n);
            handle ping(int n) {
                Array.setm(hits, 0, plus, 1);
                if (n > 0) { generate ping(n - 1); }
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "ping", &[3]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "hits")[0], 4);
        assert_eq!(i.stats.recirculated, 3);
        // 3 recirculations at 600 ns each.
        assert_eq!(i.trace.last().unwrap().time_ns, 3 * 600);
    }

    #[test]
    fn delay_combinator_shifts_execution_time() {
        let prog = checked(
            r#"
            event tick(int n);
            event noop();
            handle tick(int n) {
                generate Event.delay(noop(), 100);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "tick", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        // noop has no handler → exported; delay 100 µs + 600 ns recirc.
        let last = i.trace.last().unwrap();
        assert_eq!(last.event, "noop");
        assert_eq!(last.time_ns, 100_000 + 600);
        assert_eq!(i.stats.exported, 1);
    }

    #[test]
    fn locate_sends_to_other_switch() {
        let prog = checked(
            r#"
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) {
                Array.set(seen, 0, from);
            }
            event kick(int target);
            handle kick(int target) {
                generate Event.locate(probe(SELF), target);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(2));
        i.schedule(1, 0, "kick", &[2]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1, "switch 2 should record sender 1");
        assert_eq!(i.array(1, "seen")[0], 0);
        assert_eq!(i.stats.sent_remote, 1);
    }

    #[test]
    fn mlocate_broadcasts_to_group() {
        let prog = checked(
            r#"
            const group NEIGHBORS = {2, 3};
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) { Array.set(seen, 0, from); }
            event kick();
            handle kick() {
                mgenerate Event.mlocate(probe(SELF), NEIGHBORS);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(3));
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1);
        assert_eq!(i.array(3, "seen")[0], 1);
    }

    #[test]
    fn array_update_returns_old_and_writes_new() {
        let prog = checked(
            r#"
            global slots = new Array<<32>>(4);
            global log = new Array<<32>>(4);
            memop read(int m, int x) { return m; }
            memop write(int m, int x) { return x; }
            event swap(int idx, int v);
            handle swap(int idx, int v) {
                int old = Array.update(slots, idx, read, 0, write, v);
                Array.set(log, idx, old);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "swap", &[2, 77]).unwrap();
        i.schedule(1, 100, "swap", &[2, 88]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "slots")[2], 88);
        assert_eq!(
            i.array(1, "log")[2],
            77,
            "second swap must observe the first value"
        );
    }

    #[test]
    fn function_with_array_param_runs() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            fun int bump(Array<<32>> arr, int i) {
                return Array.update(arr, i, plus, 1, plus, 1);
            }
            event go(int i);
            handle go(int i) {
                int x = bump(a, i);
                int y = bump(b, i);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "a")[0], 1);
        assert_eq!(i.array(1, "b")[0], 1);
    }

    #[test]
    fn out_of_bounds_traps() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[9]).unwrap();
        let err = i.run_to_quiescence().unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::IndexOutOfBounds { index: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn runaway_recursion_hits_fuel() {
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(1_000, u64::MAX).unwrap_err();
        assert!(matches!(err.kind, InterpFault::FuelExhausted { .. }));
    }

    #[test]
    fn printf_formats() {
        let prog = checked(
            r#"
            event go(int x);
            handle go(int x) { printf("x=%d hex=%x pct=%%", x, x); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.output, vec!["x=255 hex=ff pct=%"]);
    }

    #[test]
    fn shift_by_width_or_more_clears_narrow_registers() {
        // `x << n` / `x >> n` keep x's width; a count at or past that
        // width must zero the register — not wrap the count mod 64, and
        // not widen the result to the count's width.
        let prog = checked(
            r#"
            global a = new Array<<8>>(1);
            global b = new Array<<8>>(1);
            global c = new Array<<8>>(1);
            global d = new Array<<8>>(1);
            event go(int<<8>> x, int n);
            handle go(int<<8>> x, int n) {
                Array.set(a, 0, x << 1);
                Array.set(b, 0, x << n);
                Array.set(c, 0, x >> n);
                Array.set(d, 0, x >> 2);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[0xAB, 9]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "a")[0], 0x56, "0xAB << 1 masked to 8 bits");
        assert_eq!(i.array(1, "b")[0], 0, "count 9 >= width 8 clears");
        assert_eq!(i.array(1, "c")[0], 0, "right shift past the width too");
        assert_eq!(i.array(1, "d")[0], 0x2A);
    }

    #[test]
    fn shift_by_64_or_more_clears_wide_registers() {
        // The 64-bit case is where `wrapping_shl` alone went wrong: a
        // count of 64 wraps to 0 and leaves the value untouched.
        let prog = checked(
            r#"
            global lo = new Array<<64>>(1);
            global hi = new Array<<64>>(1);
            event go(int<<64>> x, int n);
            handle go(int<<64>> x, int n) {
                Array.set(lo, 0, x << n);
                Array.set(hi, 0, x >> n);
            }
            "#,
        );
        for (n, want_shl) in [(63u64, 0x8000_0000_0000_0000u64), (64, 0), (200, 0)] {
            let mut i = Interp::single(&prog);
            i.schedule(1, 0, "go", &[1, n]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.array(1, "lo")[0], want_shl, "1 << {n}");
            assert_eq!(i.array(1, "hi")[0], 0, "1 >> {n}");
        }
    }

    #[test]
    fn narrow_width_arithmetic_wraps() {
        let prog = checked(
            r#"
            global out = new Array<<8>>(1);
            event go(int<<8>> x);
            handle go(int<<8>> x) { Array.set(out, 0, x + 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "out")[0], 0, "8-bit 255+1 wraps to 0");
    }

    #[test]
    fn events_to_unknown_switch_dropped() {
        let prog = checked(
            r#"
            event probe(int from);
            event kick();
            handle kick() { generate Event.locate(probe(SELF), 99); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.stats.dropped, 1);
    }

    #[test]
    fn time_advances_monotonically_in_trace() {
        let prog = checked(
            r#"
            event a(int n);
            handle a(int n) { if (n > 0) { generate a(n - 1); } }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 500, "a", &[5]).unwrap();
        i.schedule(1, 0, "a", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        let times: Vec<u64> = i.trace.iter().map(|h| h.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    // ------------------------------------------------- sharded engine

    /// A mesh program with heavy cross-switch traffic: every packet bumps
    /// a local sketch, then forwards to a hash-picked neighbor until its
    /// TTL drains. Exercises recirculation, remote sends, and timer ties.
    const MESH_MIX: &str = r#"
        global cnt = new Array<<32>>(64);
        global mix = new Array<<32>>(64);
        memop plus(int m, int x) { return m + x; }
        event pkt(int a, int b, int ttl);
        handle pkt(int a, int b, int ttl) {
            auto i = hash<<6>>(1, a, b);
            int c = Array.update(cnt, i, plus, 1, plus, 1);
            auto j = hash<<6>>(2, c, a);
            Array.setm(mix, j, plus, b);
            if (ttl > 0) {
                generate pkt(a + 1, b, ttl - 1);
                generate Event.locate(pkt(a, b + c, ttl - 1), ((a + b) & 7) + 1);
            }
        }
        "#;

    fn run_mesh(engine: Engine) -> (Vec<Vec<u64>>, Stats, Vec<Handled>, Vec<String>) {
        let prog = checked(MESH_MIX);
        let mut cfg = NetConfig::mesh(8);
        cfg.engine = engine;
        let mut i = Interp::new(&prog, cfg);
        for s in 1..=8u64 {
            for k in 0..6u64 {
                i.schedule(s, k * 400, "pkt", &[s * 17 + k, k, 4]).unwrap();
            }
        }
        i.run_to_quiescence().unwrap();
        let arrays: Vec<Vec<u64>> = (1..=8u64)
            .flat_map(|s| vec![i.array(s, "cnt").to_vec(), i.array(s, "mix").to_vec()])
            .collect();
        (arrays, i.stats.clone(), i.trace.clone(), i.output.clone())
    }

    #[test]
    fn sharded_engine_is_bit_identical_to_sequential() {
        let (seq_arrays, seq_stats, seq_trace, seq_out) = run_mesh(Engine::Sequential);
        let (sh_arrays, sh_stats, sh_trace, sh_out) = run_mesh(Engine::Sharded {
            workers: 4,
            epoch_ns: 0,
        });
        assert_eq!(seq_arrays, sh_arrays, "final array state must match");
        assert_eq!(seq_stats, sh_stats, "statistics must match");
        assert_eq!(seq_trace, sh_trace, "merged trace must match");
        assert_eq!(seq_out, sh_out);
        assert!(seq_stats.sent_remote > 100, "workload must cross switches");
    }

    #[test]
    fn sharded_engine_narrow_epoch_still_identical() {
        let (seq_arrays, seq_stats, ..) = run_mesh(Engine::Sequential);
        let (sh_arrays, sh_stats, ..) = run_mesh(Engine::Sharded {
            workers: 2,
            epoch_ns: 250,
        });
        assert_eq!(seq_arrays, sh_arrays);
        assert_eq!(seq_stats, sh_stats);
    }

    #[test]
    fn sharded_fuel_exhaustion_reports_error() {
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(1_000, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_zero_latency_loop_hits_fuel_instead_of_hanging() {
        // recirc_latency_ns == 0 lets a self-generating event stay inside
        // one epoch forever; the per-epoch budget must bound it.
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.recirc_latency_ns = 0;
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(500, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_overshoot_that_drains_the_queue_still_errs() {
        // 12 same-epoch events across 2 workers, budget 10: each worker
        // gets the full remaining budget, so the round drains the queue
        // while exceeding max_events — that must still be FuelExhausted,
        // as the sequential engine would have reported at event 11.
        let prog = checked(
            r#"
            global n = new Array<<32>>(1);
            memop plus(int m, int x) { return m + x; }
            event ping();
            handle ping() { Array.setm(n, 0, plus, 1); }
            "#,
        );
        let mut cfg = NetConfig::mesh(2);
        cfg.engine = Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        for s in [1u64, 2] {
            for k in 0..6u64 {
                i.schedule(s, k, "ping", &[]).unwrap();
            }
        }
        let err = i.run(10, u64::MAX).unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::FuelExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn sharded_runtime_fault_is_deterministic() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        );
        let mut cfg = NetConfig::mesh(4);
        cfg.engine = Engine::Sharded {
            workers: 4,
            epoch_ns: 0,
        };
        let mut i = Interp::new(&prog, cfg);
        // Two out-of-bounds faults in the same epoch: the smaller key
        // (earlier time) must win every run.
        i.schedule(3, 100, "go", &[9]).unwrap();
        i.schedule(2, 50, "go", &[7]).unwrap();
        let err = i.run_to_quiescence().unwrap_err();
        assert!(
            matches!(err.kind, InterpFault::IndexOutOfBounds { index: 7, .. }),
            "{err}"
        );
    }

    #[test]
    fn failed_switch_drops_and_recovers_under_both_engines() {
        for engine in [
            Engine::Sequential,
            Engine::Sharded {
                workers: 2,
                epoch_ns: 0,
            },
        ] {
            let prog = checked(
                r#"
                global seen = new Array<<32>>(4);
                memop plus(int m, int x) { return m + x; }
                event pkt();
                handle pkt() { Array.setm(seen, 0, plus, 1); }
                "#,
            );
            let mut cfg = NetConfig::mesh(2);
            cfg.engine = engine;
            let mut i = Interp::new(&prog, cfg);
            i.fail_switch(2);
            i.schedule(2, 0, "pkt", &[]).unwrap();
            i.schedule(1, 0, "pkt", &[]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.stats.dropped, 1, "{engine:?}");
            assert_eq!(i.array(1, "seen")[0], 1);
            assert!(i.try_array(2, "seen").is_none());
            i.recover_switch(2);
            i.schedule(2, 10_000, "pkt", &[]).unwrap();
            i.run_to_quiescence().unwrap();
            assert_eq!(i.array(2, "seen")[0], 1, "{engine:?}");
        }
    }

    #[test]
    fn resumed_runs_cross_engines() {
        // A run under the sequential engine can be resumed under the
        // sharded one: pending events survive in the global queue.
        let prog = checked(MESH_MIX);
        let mut i = Interp::new(&prog, NetConfig::mesh(8));
        for s in 1..=8u64 {
            i.schedule(s, 0, "pkt", &[s, 3, 6]).unwrap();
        }
        i.run(1_000_000, 2_000).unwrap();
        let mid_pending = i.pending();
        assert!(mid_pending > 0, "horizon must leave events queued");
        i.config.engine = Engine::Sharded {
            workers: 3,
            epoch_ns: 0,
        };
        i.run_to_quiescence().unwrap();
        assert_eq!(i.pending(), 0);

        let mut j = Interp::new(&prog, NetConfig::mesh(8));
        for s in 1..=8u64 {
            j.schedule(s, 0, "pkt", &[s, 3, 6]).unwrap();
        }
        j.run_to_quiescence().unwrap();
        for s in 1..=8u64 {
            assert_eq!(i.array(s, "cnt"), j.array(s, "cnt"));
            assert_eq!(i.array(s, "mix"), j.array(s, "mix"));
        }
        assert_eq!(i.stats, j.stats);
    }
}
