//! The event-driven interpreter: a discrete-event simulation of one or more
//! Lucid switches and the network between them.
//!
//! This plays the role of the Lucid interpreter from the paper's artifact
//! ("enables rapid prototyping and testing of data-plane applications
//! without requiring access to the Tofino toolchain"), extended with the
//! timing model of §2: handler execution is one pass through a PISA
//! pipeline, `generate` to the local switch costs one recirculation
//! (~600 ns on a Tofino, Fig. 17), and events sent to a neighbor take a
//! ~1 µs wire hop.

use crate::value::{lucid_hash, EventVal, Location, Value};
use lucid_check::{eval_memop, mask, CheckedProgram, GlobalId};
use lucid_frontend::ast::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Network and hardware timing parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Switch identifiers. Events located at unknown switches are dropped.
    pub switches: Vec<u64>,
    /// One-way latency between any two distinct switches, in nanoseconds.
    /// (§2.1: "sending a message from a switch's data-plane processor to
    /// its neighbor takes around 1 µs".)
    pub link_latency_ns: u64,
    /// Latency of one recirculation pass (§7.4: one recirculation ≈ 600 ns).
    pub recirc_latency_ns: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            switches: vec![1],
            link_latency_ns: 1_000,
            recirc_latency_ns: 600,
        }
    }
}

impl NetConfig {
    /// A single-switch network (the common case for app tests).
    pub fn single() -> Self {
        Self::default()
    }

    /// A fully-connected network of `n` switches with ids `1..=n`.
    pub fn mesh(n: u64) -> Self {
        NetConfig {
            switches: (1..=n).collect(),
            ..Self::default()
        }
    }
}

/// A record of one handled event, for assertions and tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handled {
    pub time_ns: u64,
    pub switch: u64,
    pub event: String,
    pub args: Vec<u64>,
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Events whose handler ran.
    pub handled: u64,
    /// Events generated to the local switch (each costs a recirculation).
    pub recirculated: u64,
    /// Events sent to other switches.
    pub sent_remote: u64,
    /// Events for which no handler exists (treated as exported packets).
    pub exported: u64,
    /// Events dropped because their destination switch does not exist.
    pub dropped: u64,
    /// Handled-event counts per event name.
    pub per_event: HashMap<String, u64>,
}

/// Runtime failure. The checker rules out type errors, so what remains are
/// data-dependent faults — exactly the ones a hardware target would also
/// hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Array index outside the declared length.
    IndexOutOfBounds {
        array: String,
        index: u64,
        len: u64,
        switch: u64,
    },
    /// The run exceeded its event budget (likely a runaway recursion).
    FuelExhausted { handled: u64 },
    /// An event was scheduled by name that does not exist.
    NoSuchEvent(String),
    /// Wrong number of arguments in an externally injected event.
    BadArity {
        event: String,
        want: usize,
        got: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::IndexOutOfBounds {
                array,
                index,
                len,
                switch,
            } => write!(
                f,
                "index {index} out of bounds for array `{array}` (len {len}) on switch {switch}"
            ),
            InterpError::FuelExhausted { handled } => {
                write!(f, "event budget exhausted after {handled} events")
            }
            InterpError::NoSuchEvent(n) => write!(f, "no event named `{n}`"),
            InterpError::BadArity { event, want, got } => {
                write!(f, "event `{event}` wants {want} args, got {got}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Per-switch persistent state: one `Vec<u64>` per global array, in
/// declaration (= stage) order. Registers reset to zero, as on hardware.
#[derive(Debug, Clone)]
pub struct SwitchState {
    pub arrays: Vec<Vec<u64>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    time_ns: u64,
    seq: u64,
    switch: u64,
    event_id: usize,
    args: Vec<u64>,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Flow of control inside a handler body.
enum Flow {
    Normal,
    Returned(Value),
}

/// The interpreter. Borrows the checked program; owns all simulation state.
pub struct Interp<'p> {
    prog: &'p CheckedProgram,
    pub config: NetConfig,
    states: HashMap<u64, SwitchState>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    /// Simulation clock, nanoseconds.
    pub now_ns: u64,
    /// Every handled event, in order. Cleared with [`Interp::clear_trace`].
    pub trace: Vec<Handled>,
    /// `printf` output lines.
    pub output: Vec<String>,
    pub stats: Stats,
    /// When true, `printf` also writes to stdout.
    pub echo: bool,
}

impl<'p> Interp<'p> {
    pub fn new(prog: &'p CheckedProgram, config: NetConfig) -> Self {
        let state = SwitchState {
            arrays: prog
                .info
                .globals
                .iter()
                .map(|g| vec![0u64; g.len as usize])
                .collect(),
        };
        let states = config
            .switches
            .iter()
            .map(|&s| (s, state.clone()))
            .collect();
        Interp {
            prog,
            config,
            states,
            queue: BinaryHeap::new(),
            seq: 0,
            now_ns: 0,
            trace: Vec::new(),
            output: Vec::new(),
            stats: Stats::default(),
            echo: false,
        }
    }

    /// Single-switch interpreter with default timing.
    pub fn single(prog: &'p CheckedProgram) -> Self {
        Interp::new(prog, NetConfig::single())
    }

    /// Schedule an externally injected event (e.g. a packet arrival) by
    /// name at an absolute time.
    pub fn schedule(
        &mut self,
        switch: u64,
        time_ns: u64,
        event: &str,
        args: &[u64],
    ) -> Result<(), InterpError> {
        let ev = self
            .prog
            .info
            .event(event)
            .ok_or_else(|| InterpError::NoSuchEvent(event.to_string()))?;
        if ev.params.len() != args.len() {
            return Err(InterpError::BadArity {
                event: event.to_string(),
                want: ev.params.len(),
                got: args.len(),
            });
        }
        let masked: Vec<u64> = ev
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| mask(*a, p.ty.int_width().unwrap_or(32)))
            .collect();
        self.push(Scheduled {
            time_ns,
            seq: 0,
            switch,
            event_id: ev.id,
            args: masked,
        });
        Ok(())
    }

    fn push(&mut self, mut s: Scheduled) {
        self.seq += 1;
        s.seq = self.seq;
        self.queue.push(Reverse(s));
    }

    /// Read a global array on a switch (for assertions).
    pub fn array(&self, switch: u64, name: &str) -> &[u64] {
        let gid = self.prog.info.globals_by_name[name];
        &self.states[&switch].arrays[gid.0]
    }

    /// Overwrite a global array cell (test setup / fault injection).
    pub fn poke(&mut self, switch: u64, name: &str, index: usize, value: u64) {
        let gid = self.prog.info.globals_by_name[name];
        let g = &self.prog.info.globals[gid.0];
        let v = mask(value, g.cell_width);
        self.states.get_mut(&switch).expect("switch exists").arrays[gid.0][index] = v;
    }

    /// Fault injection: take a switch offline. Its state is lost and any
    /// event destined to it is dropped (counted in [`Stats::dropped`]),
    /// exactly like a dead box on the wire.
    pub fn fail_switch(&mut self, id: u64) {
        self.states.remove(&id);
    }

    /// Bring a previously failed switch back with zeroed registers (a
    /// rebooted switch does not remember its arrays).
    pub fn recover_switch(&mut self, id: u64) {
        let state = SwitchState {
            arrays: self
                .prog
                .info
                .globals
                .iter()
                .map(|g| vec![0u64; g.len as usize])
                .collect(),
        };
        self.states.insert(id, state);
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn clear_trace(&mut self) {
        self.trace.clear();
        self.output.clear();
    }

    /// Run until the queue drains, `max_events` have been handled, or the
    /// clock passes `max_time_ns` (events after the horizon stay queued).
    pub fn run(&mut self, max_events: u64, max_time_ns: u64) -> Result<(), InterpError> {
        let mut handled_this_run = 0u64;
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.time_ns > max_time_ns {
                return Ok(());
            }
            if handled_this_run >= max_events {
                return Err(InterpError::FuelExhausted {
                    handled: handled_this_run,
                });
            }
            let Reverse(sched) = self.queue.pop().expect("peeked");
            self.now_ns = self.now_ns.max(sched.time_ns);
            handled_this_run += 1;
            self.dispatch(sched)?;
        }
        Ok(())
    }

    /// Run with a generous default budget; most tests use this.
    pub fn run_to_quiescence(&mut self) -> Result<(), InterpError> {
        self.run(1_000_000, u64::MAX)
    }

    fn dispatch(&mut self, sched: Scheduled) -> Result<(), InterpError> {
        let ev = &self.prog.info.events[sched.event_id];
        let name = ev.name.clone();
        if !self.states.contains_key(&sched.switch) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let Some((params, body)) = self.prog.handler_body(&name) else {
            // Declared event with no handler: it leaves the simulated
            // network (e.g. a report exported to a collector).
            self.stats.exported += 1;
            self.trace.push(Handled {
                time_ns: sched.time_ns,
                switch: sched.switch,
                event: name,
                args: sched.args,
            });
            return Ok(());
        };

        self.stats.handled += 1;
        *self.stats.per_event.entry(name.clone()).or_insert(0) += 1;
        self.trace.push(Handled {
            time_ns: sched.time_ns,
            switch: sched.switch,
            event: name,
            args: sched.args.clone(),
        });

        let mut env: HashMap<String, Value> = HashMap::new();
        for (p, a) in params.iter().zip(&sched.args) {
            env.insert(p.name.name.clone(), value_of(p.ty, *a));
        }
        let mut cx = ExecCx::new(sched.switch, env);
        let body = body.clone();
        self.exec_block(&body, &mut cx)?;
        Ok(())
    }

    // ------------------------------------------------------------ handlers

    fn exec_block(&mut self, b: &Block, cx: &mut ExecCx) -> Result<Flow, InterpError> {
        for s in &b.stmts {
            match self.exec_stmt(s, cx)? {
                Flow::Normal => {}
                r @ Flow::Returned(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, cx: &mut ExecCx) -> Result<Flow, InterpError> {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let mut v = self.eval(init, cx)?;
                if let (Some(Ty::Int(w)), Value::Int { v: x, .. }) = (ty, &v) {
                    v = Value::int(*x, *w);
                }
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { name, value } => {
                let v = self.eval(value, cx)?;
                let v = match (cx.env.get(&name.name), v) {
                    (Some(Value::Int { width, .. }), Value::Int { v: x, .. }) => {
                        Value::int(x, *width)
                    }
                    (_, v) => v,
                };
                cx.env.insert(name.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(cond, cx)?.as_bool().expect("checked: bool");
                if c {
                    self.exec_block(then_blk, cx)
                } else if let Some(e) = else_blk {
                    self.exec_block(e, cx)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let v = self.eval(e, cx)?;
                let Value::Event(ev) = v else {
                    panic!("checked: generate of non-event")
                };
                self.emit(cx.switch, ev);
                Ok(Flow::Normal)
            }
            StmtKind::Return(None) => Ok(Flow::Returned(Value::Void)),
            StmtKind::Return(Some(e)) => {
                let v = self.eval(e, cx)?;
                Ok(Flow::Returned(v))
            }
            StmtKind::Printf { fmt, args } => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, cx)?);
                }
                let line = format_printf(fmt, &vals);
                if self.echo {
                    println!("[{} @{}ns] {}", cx.switch, self.now_ns, line);
                }
                self.output.push(line);
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e, cx)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Schedule a generated event according to its location and delay.
    fn emit(&mut self, from: u64, ev: EventVal) {
        let targets: Vec<(u64, u64)> = match &ev.location {
            Location::Here => vec![(from, self.config.recirc_latency_ns)],
            Location::Switch(s) => {
                let lat = if *s == from {
                    self.config.recirc_latency_ns
                } else {
                    self.config.link_latency_ns
                };
                vec![(*s, lat)]
            }
            Location::Group(members) => members
                .iter()
                .map(|&m| {
                    let lat = if m == from {
                        self.config.recirc_latency_ns
                    } else {
                        self.config.link_latency_ns
                    };
                    (m, lat)
                })
                .collect(),
        };
        for (target, lat) in targets {
            if target == from {
                self.stats.recirculated += 1;
            } else {
                self.stats.sent_remote += 1;
            }
            let time_ns = self.now_ns + lat + ev.delay_ns;
            self.push(Scheduled {
                time_ns,
                seq: 0,
                switch: target,
                event_id: ev.event_id,
                args: ev.args.clone(),
            });
        }
    }

    // --------------------------------------------------------- expressions

    fn eval(&mut self, e: &Expr, cx: &mut ExecCx) -> Result<Value, InterpError> {
        match &e.kind {
            ExprKind::Int { value, width } => Ok(Value::int(*value, width.unwrap_or(32))),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Var(id) => {
                if let Some(v) = cx.env.get(&id.name) {
                    return Ok(v.clone());
                }
                if id.name == "SELF" {
                    return Ok(Value::int(cx.switch, 32));
                }
                if let Some(c) = self.prog.info.consts.get(&id.name) {
                    return Ok(match c.ty {
                        Ty::Bool => Value::Bool(c.value != 0),
                        Ty::Int(w) => Value::int(c.value, w),
                        _ => Value::int(c.value, 32),
                    });
                }
                if let Some(g) = self.prog.info.groups.get(&id.name) {
                    return Ok(Value::Group(g.members.clone()));
                }
                panic!("checked program has unbound var `{}`", id.name)
            }
            ExprKind::Unary { op, arg } => {
                let v = self.eval(arg, cx)?;
                Ok(match op {
                    UnOp::Not => Value::Bool(!v.as_bool().expect("checked")),
                    UnOp::Neg => match v {
                        Value::Int { v, width } => Value::int(v.wrapping_neg(), width),
                        _ => panic!("checked"),
                    },
                    UnOp::BitNot => match v {
                        Value::Int { v, width } => Value::int(!v, width),
                        _ => panic!("checked"),
                    },
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit the logical connectives.
                if *op == BinOp::And {
                    let l = self.eval(lhs, cx)?.as_bool().expect("checked");
                    if !l {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(self.eval(rhs, cx)?.as_bool().expect("checked")));
                }
                if *op == BinOp::Or {
                    let l = self.eval(lhs, cx)?.as_bool().expect("checked");
                    if l {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(self.eval(rhs, cx)?.as_bool().expect("checked")));
                }
                let l = self.eval(lhs, cx)?;
                let r = self.eval(rhs, cx)?;
                Ok(eval_binop(*op, &l, &r))
            }
            ExprKind::Cast { width, arg } => {
                let v = self.eval(arg, cx)?.as_int().expect("checked");
                Ok(Value::int(v, *width))
            }
            ExprKind::Hash { width, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, cx)?.as_int().expect("checked"));
                }
                let (seed, rest) = vals.split_first().expect("parser: nonempty");
                Ok(Value::int(lucid_hash(*width, *seed, rest), *width))
            }
            ExprKind::Call { callee, args } => {
                // Event constructor.
                if let Some(ev) = self.prog.info.event(&callee.name) {
                    let id = ev.id;
                    let widths: Vec<u32> = ev
                        .params
                        .iter()
                        .map(|p| p.ty.int_width().unwrap_or(32))
                        .collect();
                    let name = ev.name.clone();
                    let mut vals = Vec::with_capacity(args.len());
                    for (a, w) in args.iter().zip(widths) {
                        vals.push(mask(self.eval(a, cx)?.as_int().expect("checked"), w));
                    }
                    return Ok(Value::Event(EventVal {
                        event_id: id,
                        name,
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    }));
                }
                // User function: evaluate args, bind, run body.
                let (_, params, body) = self
                    .prog
                    .fun_body(&callee.name)
                    .expect("checked: function exists");
                let params = params.clone();
                let body = body.clone();
                let mut env = HashMap::new();
                for (p, a) in params.iter().zip(args) {
                    match p.ty {
                        Ty::Array(_) => {
                            // Resolve the array argument to a name usable by
                            // nested Array.* calls: store as a marker value.
                            let gid = self.resolve_array(a, cx);
                            env.insert(p.name.name.clone(), Value::int(gid.0 as u64, 32));
                            cx.array_params.push((p.name.name.clone(), gid));
                        }
                        _ => {
                            let v = self.eval(a, cx)?;
                            env.insert(p.name.name.clone(), v);
                        }
                    }
                }
                let saved_env = std::mem::replace(&mut cx.env, env);
                let array_params_mark = cx.array_params.len();
                let flow = self.exec_block(&body, cx)?;
                cx.env = saved_env;
                cx.array_params.truncate(
                    array_params_mark.saturating_sub(
                        params
                            .iter()
                            .filter(|p| matches!(p.ty, Ty::Array(_)))
                            .count(),
                    ),
                );
                Ok(match flow {
                    Flow::Returned(v) => v,
                    Flow::Normal => Value::Void,
                })
            }
            ExprKind::BuiltinCall { builtin, args, .. } => self.eval_builtin(*builtin, args, cx),
        }
    }

    fn resolve_array(&self, e: &Expr, cx: &ExecCx) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => {
                // A function's array parameter shadows globals.
                if let Some((_, gid)) = cx.array_params.iter().rev().find(|(n, _)| *n == id.name) {
                    return *gid;
                }
                self.prog.info.globals_by_name[&id.name]
            }
            _ => panic!("checked: array argument is a name"),
        }
    }

    fn eval_builtin(
        &mut self,
        builtin: Builtin,
        args: &[Expr],
        cx: &mut ExecCx,
    ) -> Result<Value, InterpError> {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let gid = self.resolve_array(&args[0], cx);
                let g = self.prog.info.globals[gid.0].clone();
                let idx = self.eval(&args[1], cx)?.as_int().expect("checked");
                if idx >= g.len {
                    return Err(InterpError::IndexOutOfBounds {
                        array: g.name.clone(),
                        index: idx,
                        len: g.len,
                        switch: cx.switch,
                    });
                }
                let cur = self.states[&cx.switch].arrays[gid.0][idx as usize];
                let w = g.cell_width;
                match builtin {
                    Builtin::ArrayGet => Ok(Value::int(cur, w)),
                    Builtin::ArrayGetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(&args[3], cx)?.as_int().expect("checked");
                        Ok(Value::int(eval_memop(&m, cur, local, w), w))
                    }
                    Builtin::ArraySet => {
                        let v = self.eval(&args[2], cx)?.as_int().expect("checked");
                        self.store(cx.switch, gid, idx as usize, mask(v, w));
                        Ok(Value::Void)
                    }
                    Builtin::ArraySetm => {
                        let m = self.memop_of(&args[2]);
                        let local = self.eval(&args[3], cx)?.as_int().expect("checked");
                        self.store(cx.switch, gid, idx as usize, eval_memop(&m, cur, local, w));
                        Ok(Value::Void)
                    }
                    Builtin::ArrayUpdate => {
                        let getop = self.memop_of(&args[2]);
                        let getarg = self.eval(&args[3], cx)?.as_int().expect("checked");
                        let setop = self.memop_of(&args[4]);
                        let setarg = self.eval(&args[5], cx)?.as_int().expect("checked");
                        let ret = eval_memop(&getop, cur, getarg, w);
                        self.store(
                            cx.switch,
                            gid,
                            idx as usize,
                            eval_memop(&setop, cur, setarg, w),
                        );
                        Ok(Value::int(ret, w))
                    }
                    _ => unreachable!(),
                }
            }
            Builtin::EventDelay => {
                let mut v = self.eval(&args[0], cx)?;
                let d_us = self.eval(&args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.delay_ns += d_us * 1_000;
                }
                Ok(v)
            }
            Builtin::EventLocate => {
                let mut v = self.eval(&args[0], cx)?;
                let loc = self.eval(&args[1], cx)?.as_int().expect("checked");
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Switch(loc);
                }
                Ok(v)
            }
            Builtin::EventMLocate => {
                let mut v = self.eval(&args[0], cx)?;
                let g = match self.eval(&args[1], cx)? {
                    Value::Group(g) => g,
                    _ => panic!("checked: group"),
                };
                if let Value::Event(ev) = &mut v {
                    ev.location = Location::Group(g);
                }
                Ok(v)
            }
            Builtin::SysTime => Ok(Value::int(self.now_ns / 1_000, 32)),
            Builtin::SysSelf => Ok(Value::int(cx.switch, 32)),
            Builtin::SysPort => Ok(Value::int(0, 32)),
        }
    }

    fn memop_of(&self, e: &Expr) -> lucid_check::MemopIr {
        match &e.kind {
            ExprKind::Var(id) => self.prog.memops[&id.name].clone(),
            _ => panic!("checked: memop position holds a name"),
        }
    }

    fn store(&mut self, switch: u64, gid: GlobalId, idx: usize, v: u64) {
        self.states.get_mut(&switch).expect("switch exists").arrays[gid.0][idx] = v;
    }
}

/// Execution context of one handler activation.
struct ExecCx {
    switch: u64,
    env: HashMap<String, Value>,
    /// Array-typed function parameters in scope: name → resolved global.
    array_params: Vec<(String, GlobalId)>,
}

impl ExecCx {
    fn new(switch: u64, env: HashMap<String, Value>) -> Self {
        ExecCx {
            switch,
            env,
            array_params: Vec::new(),
        }
    }
}

// Allow struct-literal construction in dispatch (kept in sync with new()).
impl From<(u64, HashMap<String, Value>)> for ExecCx {
    fn from((switch, env): (u64, HashMap<String, Value>)) -> Self {
        ExecCx::new(switch, env)
    }
}

fn value_of(ty: Ty, raw: u64) -> Value {
    match ty {
        Ty::Bool => Value::Bool(raw != 0),
        Ty::Int(w) => Value::int(raw, w),
        _ => Value::int(raw, 32),
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    if op.is_comparison() {
        let a = l.as_int().expect("checked");
        let b = r.as_int().expect("checked");
        return Value::Bool(match op {
            BinOp::Eq => a == b,
            BinOp::Neq => a != b,
            BinOp::Lt => a < b,
            BinOp::Gt => a > b,
            BinOp::Le => a <= b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        });
    }
    let (a, wa) = match l {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    let (b, wb) = match r {
        Value::Int { v, width } => (*v, *width),
        Value::Bool(b) => (*b as u64, 1),
        _ => panic!("checked: arithmetic on non-int"),
    };
    let w = wa.max(wb);
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division by zero yields zero in the data plane.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
        _ => unreachable!(),
    };
    Value::int(v, w)
}

/// Minimal printf: `%d` decimal, `%x` hex, `%b` binary, `%%` literal.
fn format_printf(fmt: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut it = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') | None => {
                if let Some(v) = it.next() {
                    out.push_str(&v.to_string());
                }
            }
            Some('x') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:x}", v.as_int().unwrap_or(0)));
                }
            }
            Some('b') => {
                if let Some(v) = it.next() {
                    out.push_str(&format!("{:b}", v.as_int().unwrap_or(0)));
                }
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    fn checked(src: &str) -> CheckedProgram {
        match parse_and_check(src) {
            Ok(p) => p,
            Err(ds) => panic!("check failed:\n{ds}"),
        }
    }

    #[test]
    fn counter_program_counts() {
        let prog = checked(
            r#"
            global cts = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            event pkt(int idx);
            handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        for t in 0..5 {
            i.schedule(1, t * 100, "pkt", &[3]).unwrap();
        }
        i.schedule(1, 600, "pkt", &[5]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "cts")[3], 5);
        assert_eq!(i.array(1, "cts")[5], 1);
        assert_eq!(i.stats.handled, 6);
    }

    #[test]
    fn generate_recirculates_with_latency() {
        let prog = checked(
            r#"
            global hits = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            event ping(int n);
            handle ping(int n) {
                Array.setm(hits, 0, plus, 1);
                if (n > 0) { generate ping(n - 1); }
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "ping", &[3]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "hits")[0], 4);
        assert_eq!(i.stats.recirculated, 3);
        // 3 recirculations at 600 ns each.
        assert_eq!(i.trace.last().unwrap().time_ns, 3 * 600);
    }

    #[test]
    fn delay_combinator_shifts_execution_time() {
        let prog = checked(
            r#"
            event tick(int n);
            event noop();
            handle tick(int n) {
                generate Event.delay(noop(), 100);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "tick", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        // noop has no handler → exported; delay 100 µs + 600 ns recirc.
        let last = i.trace.last().unwrap();
        assert_eq!(last.event, "noop");
        assert_eq!(last.time_ns, 100_000 + 600);
        assert_eq!(i.stats.exported, 1);
    }

    #[test]
    fn locate_sends_to_other_switch() {
        let prog = checked(
            r#"
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) {
                Array.set(seen, 0, from);
            }
            event kick(int target);
            handle kick(int target) {
                generate Event.locate(probe(SELF), target);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(2));
        i.schedule(1, 0, "kick", &[2]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1, "switch 2 should record sender 1");
        assert_eq!(i.array(1, "seen")[0], 0);
        assert_eq!(i.stats.sent_remote, 1);
    }

    #[test]
    fn mlocate_broadcasts_to_group() {
        let prog = checked(
            r#"
            const group NEIGHBORS = {2, 3};
            global seen = new Array<<32>>(4);
            event probe(int from);
            handle probe(int from) { Array.set(seen, 0, from); }
            event kick();
            handle kick() {
                mgenerate Event.mlocate(probe(SELF), NEIGHBORS);
            }
            "#,
        );
        let mut i = Interp::new(&prog, NetConfig::mesh(3));
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(2, "seen")[0], 1);
        assert_eq!(i.array(3, "seen")[0], 1);
    }

    #[test]
    fn array_update_returns_old_and_writes_new() {
        let prog = checked(
            r#"
            global slots = new Array<<32>>(4);
            global log = new Array<<32>>(4);
            memop read(int m, int x) { return m; }
            memop write(int m, int x) { return x; }
            event swap(int idx, int v);
            handle swap(int idx, int v) {
                int old = Array.update(slots, idx, read, 0, write, v);
                Array.set(log, idx, old);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "swap", &[2, 77]).unwrap();
        i.schedule(1, 100, "swap", &[2, 88]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "slots")[2], 88);
        assert_eq!(
            i.array(1, "log")[2],
            77,
            "second swap must observe the first value"
        );
    }

    #[test]
    fn function_with_array_param_runs() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            fun int bump(Array<<32>> arr, int i) {
                return Array.update(arr, i, plus, 1, plus, 1);
            }
            event go(int i);
            handle go(int i) {
                int x = bump(a, i);
                int y = bump(b, i);
            }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "a")[0], 1);
        assert_eq!(i.array(1, "b")[0], 1);
    }

    #[test]
    fn out_of_bounds_traps() {
        let prog = checked(
            r#"
            global a = new Array<<32>>(4);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[9]).unwrap();
        let err = i.run_to_quiescence().unwrap_err();
        assert!(
            matches!(err, InterpError::IndexOutOfBounds { index: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn runaway_recursion_hits_fuel() {
        let prog = checked(
            r#"
            event spin();
            handle spin() { generate spin(); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "spin", &[]).unwrap();
        let err = i.run(1_000, u64::MAX).unwrap_err();
        assert!(matches!(err, InterpError::FuelExhausted { .. }));
    }

    #[test]
    fn printf_formats() {
        let prog = checked(
            r#"
            event go(int x);
            handle go(int x) { printf("x=%d hex=%x pct=%%", x, x); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.output, vec!["x=255 hex=ff pct=%"]);
    }

    #[test]
    fn narrow_width_arithmetic_wraps() {
        let prog = checked(
            r#"
            global out = new Array<<8>>(1);
            event go(int<<8>> x);
            handle go(int<<8>> x) { Array.set(out, 0, x + 1); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "go", &[255]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.array(1, "out")[0], 0, "8-bit 255+1 wraps to 0");
    }

    #[test]
    fn events_to_unknown_switch_dropped() {
        let prog = checked(
            r#"
            event probe(int from);
            event kick();
            handle kick() { generate Event.locate(probe(SELF), 99); }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 0, "kick", &[]).unwrap();
        i.run_to_quiescence().unwrap();
        assert_eq!(i.stats.dropped, 1);
    }

    #[test]
    fn time_advances_monotonically_in_trace() {
        let prog = checked(
            r#"
            event a(int n);
            handle a(int n) { if (n > 0) { generate a(n - 1); } }
            "#,
        );
        let mut i = Interp::single(&prog);
        i.schedule(1, 500, "a", &[5]).unwrap();
        i.schedule(1, 0, "a", &[0]).unwrap();
        i.run_to_quiescence().unwrap();
        let times: Vec<u64> = i.trace.iter().map(|h| h.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }
}
