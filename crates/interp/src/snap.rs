//! Deterministic byte codec for world snapshots.
//!
//! A snapshot is a flat little-endian byte stream: fixed-width `u64`s,
//! length-prefixed strings, and `f64`s stored as their IEEE-754 bit
//! patterns. No varints, no alignment, no map iteration order — every
//! collection is written in a sorted or declaration order, so the same
//! world always encodes to the same bytes (the property the serve-gate
//! diffs rely on).
//!
//! Decoding is fully bounds-checked: a truncated or corrupted snapshot
//! yields a [`SnapError`] naming the offset, never a panic.

use std::fmt;

/// A malformed snapshot: what was expected and where in the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt snapshot at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for SnapError {}

/// Append-only snapshot encoder.
#[derive(Default)]
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    /// Length-prefix a nested section so a reader can skip or isolate it.
    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        self.buf.extend_from_slice(bs);
    }
}

/// Cursor-based snapshot decoder; every read is bounds-checked.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> SnapError {
        SnapError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.err("length overflow"))?;
        if end > self.buf.len() {
            return Err(self.err(format!(
                "truncated: need {n} bytes for {what}, have {}",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("bad bool byte {b}"))),
        }
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Read a length prefix for `what`, refusing anything that could not
    /// possibly fit in the remaining bytes (`min_item` bytes per entry) —
    /// the guard that keeps a corrupted length from driving a huge
    /// allocation before the truncation is even noticed.
    pub(crate) fn len(&mut self, min_item: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let cap = (self.buf.len() - self.pos) / min_item.max(1);
        if n as usize > cap {
            return Err(self.err(format!("{what} length {n} exceeds remaining bytes")));
        }
        Ok(n as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapError> {
        let n = self.len(1, "string")?;
        let b = self.take(n, "string")?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err("string is not UTF-8"))
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.len(8, "u64 vector")?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len(1, "byte section")?;
        self.take(n, "byte section")
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        w.u32(7);
        w.bool(true);
        w.f64(1.25);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.str("héllo");
        w.u64s(&[1, 2, 3]);
        w.bytes(&[0xAB, 0xCD]);
        let buf = w.buf;
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), 1.25);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.bytes().unwrap(), &[0xAB, 0xCD]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_bad_lengths_are_errors_not_panics() {
        let mut w = Writer::new();
        w.u64s(&[1, 2, 3]);
        let buf = w.buf;
        // Truncate mid-vector.
        let mut r = Reader::new(&buf[..12]);
        assert!(r.u64s().is_err());
        // A length prefix far beyond the remaining bytes.
        let mut w = Writer::new();
        w.u64(u64::MAX / 2);
        let buf = w.buf;
        let mut r = Reader::new(&buf);
        assert!(r.u64s().is_err());
        // Bad bool byte.
        let mut r = Reader::new(&[7]);
        assert!(r.bool().is_err());
    }
}
