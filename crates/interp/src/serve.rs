//! The `lucidc serve` protocol: a long-lived daemon owning simulation
//! sessions, driven by line-delimited JSON requests over stdin/stdout or
//! a Unix socket.
//!
//! Every request is one line: an object with an `op` field and the
//! verb's arguments. Every reply is one line: `{"ok":true,...}` or
//! `{"ok":false,"error":{"kind":...,"msg":...}}`. The verbs — `open`,
//! `ingest`, `advance`, `query`, `snapshot`, `restore`, `swap`, `drain`,
//! `close`, `shutdown` — are documented field-by-field in
//! `docs/serve-protocol.md`.
//!
//! The protocol core is [`handle_line`]: a pure request → reply function
//! over a [`ServeState`] and a [`ProgramHost`], so golden-transcript
//! tests can drive it without any I/O. [`serve_lines`] wraps it around a
//! reader/writer pair (the stdin/stdout daemon); `serve_unix` (Unix
//! only) accepts concurrent connections on a socket, serializing request
//! handling over one shared world.
//!
//! Program compilation is behind the [`ProgramHost`] trait because this
//! crate sits below the build pipeline: the CLI plugs in a host backed
//! by `lucid_core::Build` (re-elaborating without re-parsing on `swap`),
//! while [`CheckHost`] compiles from scratch and keeps tests and
//! benchmarks dependency-light. A host error on `swap` leaves the
//! session untouched — a program that fails typecheck never reaches the
//! running world.

use crate::bytecode::{ExecMode, OptLevel};
use crate::machine::Engine;
use crate::scenario::{
    generators_of, get, injections_of, json, json_escape, obj, req, str_of, u64_of, Scenario,
    ScenarioError, SimOptions, SimRunError,
};
use crate::session::{SessionStatus, SimSession};
use lucid_check::CheckedProgram;
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

// ------------------------------------------------------------ the host

/// Compiles program source on behalf of the protocol. Implementations
/// may cache per-session build state keyed by the session id (the CLI's
/// `Build`-backed host reuses the parse across `swap` epochs).
pub trait ProgramHost {
    /// Compile the program a new session opens with.
    fn open_program(&mut self, session: u64, source: &str) -> Result<Arc<CheckedProgram>, String>;

    /// Compile a replacement program for a hot-swap. An `Err` rejects
    /// the swap; the session keeps running its current program.
    fn swap_program(&mut self, session: u64, source: &str) -> Result<Arc<CheckedProgram>, String>;

    /// The session closed; drop any cached build state.
    fn drop_session(&mut self, _session: u64) {}
}

/// The dependency-light [`ProgramHost`]: parse + typecheck from scratch
/// on every compile, no caching. Tests and in-crate tools use it; the
/// CLI substitutes a `Build`-backed host.
#[derive(Debug, Default)]
pub struct CheckHost;

impl ProgramHost for CheckHost {
    fn open_program(&mut self, _session: u64, source: &str) -> Result<Arc<CheckedProgram>, String> {
        lucid_check::parse_and_check(source)
            .map(Arc::new)
            .map_err(|ds| ds.to_string().trim_end().to_string())
    }

    fn swap_program(&mut self, session: u64, source: &str) -> Result<Arc<CheckedProgram>, String> {
        self.open_program(session, source)
    }
}

// ---------------------------------------------------------- error model

/// Which layer a request failed in. The kind is machine-readable so a
/// driver can branch (retry, re-open, give up) without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is malformed (bad JSON, missing field,
    /// unknown op, unreadable file path).
    Protocol,
    /// The program failed to parse or typecheck on `open`.
    Compile,
    /// The scenario failed to parse or does not fit the program.
    Scenario,
    /// The simulation faulted while advancing.
    Runtime,
    /// A snapshot could not be taken or a restore was refused.
    Snapshot,
    /// A hot-swap was rejected; the session keeps its current program.
    Swap,
    /// The request names a session id that is not open.
    UnknownSession,
}

impl ErrorKind {
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Compile => "compile",
            ErrorKind::Scenario => "scenario",
            ErrorKind::Runtime => "runtime",
            ErrorKind::Snapshot => "snapshot",
            ErrorKind::Swap => "swap",
            ErrorKind::UnknownSession => "unknown_session",
        }
    }
}

/// A structured protocol error: every failure path — corrupted
/// snapshots included — comes back as one of these, never a panic.
#[derive(Debug, Clone)]
pub struct ServeError {
    pub kind: ErrorKind,
    pub msg: String,
}

impl ServeError {
    fn new(kind: ErrorKind, msg: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            msg: msg.into(),
        }
    }

    /// The inner `{"kind":...,"msg":...}` object.
    fn body(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"msg\":\"{}\"}}",
            self.kind.label(),
            json_escape(&self.msg)
        )
    }

    /// The full error reply line.
    pub fn to_json(&self) -> String {
        format!("{{\"ok\":false,\"error\":{}}}", self.body())
    }
}

impl From<SimRunError> for ServeError {
    fn from(e: SimRunError) -> ServeError {
        let kind = match &e {
            SimRunError::Scenario(_) => ErrorKind::Scenario,
            SimRunError::Runtime(_) => ErrorKind::Runtime,
            SimRunError::Snapshot(_) => ErrorKind::Snapshot,
            SimRunError::Swap(_) => ErrorKind::Swap,
        };
        ServeError::new(kind, e.to_string())
    }
}

/// Map a request-shape error (the accessors reuse the scenario schema
/// machinery) to a protocol error.
fn proto<T>(r: Result<T, ScenarioError>) -> Result<T, ServeError> {
    r.map_err(|e| ServeError::new(ErrorKind::Protocol, e.to_string()))
}

// ------------------------------------------------------------ the state

/// The daemon's world: every open session, keyed by id. Ids are assigned
/// once and never reused within a daemon's lifetime.
#[derive(Default)]
pub struct ServeState {
    sessions: BTreeMap<u64, SimSession>,
    next_id: u64,
}

impl ServeState {
    pub fn new() -> ServeState {
        ServeState {
            sessions: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Direct access to an open session (for in-process drivers like the
    /// serve benchmark's sanity checks).
    pub fn session(&self, id: u64) -> Option<&SimSession> {
        self.sessions.get(&id)
    }
}

/// What [`handle_line`] decided: reply and keep serving, or reply and
/// stop the daemon (the `shutdown` verb).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    Reply(String),
    Shutdown(String),
}

impl Outcome {
    /// The reply line, whichever way the daemon goes afterwards.
    pub fn reply(&self) -> &str {
        match self {
            Outcome::Reply(s) | Outcome::Shutdown(s) => s,
        }
    }
}

// -------------------------------------------------------------- dispatch

/// Handle one request line: parse, dispatch, and render the reply. Pure
/// over `(state, host)` — no I/O — so transcripts are testable
/// byte-for-byte.
pub fn handle_line(state: &mut ServeState, host: &mut dyn ProgramHost, line: &str) -> Outcome {
    match dispatch(state, host, line) {
        Ok(outcome) => outcome,
        Err(e) => Outcome::Reply(e.to_json()),
    }
}

fn dispatch(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    line: &str,
) -> Result<Outcome, ServeError> {
    let doc = proto(json::parse(line))?;
    let fields = proto(obj(&doc, "$"))?;
    let op = proto(str_of(proto(req(fields, "op", "$"))?, "$.op"))?;
    match op {
        "open" => op_open(state, host, fields).map(Outcome::Reply),
        "ingest" => op_ingest(state, fields).map(Outcome::Reply),
        "advance" => op_advance(state, fields).map(Outcome::Reply),
        "query" => op_query(state, fields).map(Outcome::Reply),
        "snapshot" => op_snapshot(state, fields).map(Outcome::Reply),
        "restore" => op_restore(state, fields).map(Outcome::Reply),
        "swap" => op_swap(state, host, fields).map(Outcome::Reply),
        "drain" => op_drain(state, host, fields).map(Outcome::Reply),
        "close" => op_close(state, host, fields).map(Outcome::Reply),
        "shutdown" => op_shutdown(state, host).map(Outcome::Shutdown),
        other => Err(ServeError::new(
            ErrorKind::Protocol,
            format!(
                "unknown op `{other}` (expected open, ingest, advance, query, \
                 snapshot, restore, swap, drain, close, or shutdown)"
            ),
        )),
    }
}

// ------------------------------------------------------- request helpers

/// Resolve a source field that may be inline (`key`) or a file path
/// (`key_path`).
fn source_of(
    fields: &[(String, json::Json)],
    key: &str,
    path_key: &str,
    what: &str,
) -> Result<Option<String>, ServeError> {
    if let Some(j) = get(fields, key) {
        return Ok(Some(proto(str_of(j, &format!("$.{key}")))?.to_string()));
    }
    if let Some(j) = get(fields, path_key) {
        let path = proto(str_of(j, &format!("$.{path_key}")))?;
        return std::fs::read_to_string(path).map(Some).map_err(|e| {
            ServeError::new(
                ErrorKind::Protocol,
                format!("cannot read {what} `{path}`: {e}"),
            )
        });
    }
    Ok(None)
}

fn session_id(state: &ServeState, fields: &[(String, json::Json)]) -> Result<u64, ServeError> {
    let id = proto(u64_of(proto(req(fields, "session", "$"))?, "$.session"))?;
    if !state.sessions.contains_key(&id) {
        return Err(ServeError::new(
            ErrorKind::UnknownSession,
            format!("no open session {id}"),
        ));
    }
    Ok(id)
}

fn session_mut<'a>(
    state: &'a mut ServeState,
    fields: &[(String, json::Json)],
) -> Result<(u64, &'a mut SimSession), ServeError> {
    let id = session_id(state, fields)?;
    Ok((id, state.sessions.get_mut(&id).expect("checked")))
}

/// Parse the `open` verb's `options` object into [`SimOptions`] — the
/// same knobs `lucidc sim` takes, resolved the same way.
fn options_of(fields: &[(String, json::Json)]) -> Result<SimOptions, ServeError> {
    let Some(j) = get(fields, "options") else {
        return Ok(SimOptions::default());
    };
    let of = proto(obj(j, "$.options"))?;
    proto(crate::scenario::check_keys(
        of,
        &[
            "engine",
            "exec",
            "opt",
            "workers",
            "seed",
            "events",
            "record_trace",
        ],
        "$.options",
    ))?;
    let mut opts = SimOptions::default();
    if let Some(v) = get(of, "engine") {
        let name = proto(str_of(v, "$.options.engine"))?;
        opts.engine = Some(Engine::parse(name).ok_or_else(|| {
            ServeError::new(
                ErrorKind::Protocol,
                format!("unknown engine `{name}` (expected `sequential` or `sharded`)"),
            )
        })?);
    }
    if let Some(v) = get(of, "exec") {
        let name = proto(str_of(v, "$.options.exec"))?;
        opts.exec = Some(ExecMode::parse(name).ok_or_else(|| {
            ServeError::new(
                ErrorKind::Protocol,
                format!("unknown exec `{name}` (expected `ast` or `bytecode`)"),
            )
        })?);
    }
    if let Some(v) = get(of, "opt") {
        let n = proto(u64_of(v, "$.options.opt"))?;
        opts.opt = Some(OptLevel::parse(&n.to_string()).ok_or_else(|| {
            ServeError::new(
                ErrorKind::Protocol,
                format!("unknown opt level {n} (expected 0, 1, or 2)"),
            )
        })?);
    }
    if let Some(v) = get(of, "workers") {
        let w = proto(u64_of(v, "$.options.workers"))?;
        if matches!(opts.engine, Some(Engine::Sequential)) {
            // Mirror the CLI: `--workers` beside `--engine=sequential`
            // is a contradiction, not a silent override.
            return Err(ServeError::new(
                ErrorKind::Protocol,
                "`workers` only applies to the sharded engine",
            ));
        }
        opts.workers = Some(w as usize);
    }
    if let Some(v) = get(of, "seed") {
        opts.seed = Some(proto(u64_of(v, "$.options.seed"))?);
    }
    if let Some(v) = get(of, "events") {
        opts.events = Some(proto(u64_of(v, "$.options.events"))?);
    }
    if let Some(v) = get(of, "record_trace") {
        match v {
            json::Json::Bool(b) => opts.record_trace = Some(*b),
            other => {
                return Err(ServeError::new(
                    ErrorKind::Protocol,
                    format!(
                        "$.options.record_trace: expected a bool, found {}",
                        other.kind()
                    ),
                ))
            }
        }
    }
    Ok(opts)
}

/// The status fields shared by `advance`, `query`, and `restore` replies.
fn status_fields(id: u64, st: &SessionStatus) -> String {
    format!(
        "\"session\":{id},\"now_ns\":{},\"pending\":{},\"source_pending\":{},\
         \"processed\":{},\"handled\":{},\"dropped\":{},\
         \"state_digest\":\"{:016x}\",\"metrics_digest\":\"{:016x}\"",
        st.now_ns,
        st.pending,
        st.source_pending,
        st.processed,
        st.handled,
        st.dropped,
        st.state_digest,
        st.metrics_digest
    )
}

// ----------------------------------------------------------------- verbs

fn op_open(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let program = source_of(fields, "program", "program_path", "program")?.ok_or_else(|| {
        ServeError::new(
            ErrorKind::Protocol,
            "open needs `program` or `program_path`",
        )
    })?;
    let scenario_src =
        source_of(fields, "scenario", "scenario_path", "scenario")?.ok_or_else(|| {
            ServeError::new(
                ErrorKind::Protocol,
                "open needs `scenario` or `scenario_path`",
            )
        })?;
    let opts = options_of(fields)?;
    let sc = Scenario::from_json(&scenario_src)
        .map_err(|e| ServeError::new(ErrorKind::Scenario, e.to_string()))?;
    let id = state.next_id;
    let prog = host
        .open_program(id, &program)
        .map_err(|msg| ServeError::new(ErrorKind::Compile, msg))?;
    let session = SimSession::open_arc(prog, &sc, &opts).map_err(|e| {
        host.drop_session(id);
        ServeError::from(e)
    })?;
    state.next_id += 1;
    let (engine, exec, opt) = session.labels();
    let reply = format!(
        "{{\"ok\":true,\"session\":{id},\"scenario\":\"{}\",\"switches\":{},\
         \"engine\":\"{engine}\",\"exec\":\"{exec}\",\"opt\":{opt}}}",
        json_escape(&sc.name),
        sc.switches.len()
    );
    state.sessions.insert(id, session);
    Ok(reply)
}

fn op_ingest(
    state: &mut ServeState,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let (id, session) = session_mut(state, fields)?;
    let mut ingested = 0usize;
    let mut attached = 0usize;
    if let Some(j) = get(fields, "events") {
        let events = proto(injections_of(j, "$.events"))?;
        ingested = events.len();
        session.ingest(&events)?;
    }
    if let Some(j) = get(fields, "generators") {
        let specs = proto(generators_of(j, "$.generators"))?;
        for spec in &specs {
            session.attach_generator(spec)?;
            attached += 1;
        }
    }
    Ok(format!(
        "{{\"ok\":true,\"session\":{id},\"ingested\":{ingested},\"generators_attached\":{attached}}}"
    ))
}

fn op_advance(
    state: &mut ServeState,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let (id, session) = session_mut(state, fields)?;
    let to_ns = proto(u64_of(proto(req(fields, "to_ns", "$"))?, "$.to_ns"))?;
    session.advance(to_ns)?;
    Ok(format!(
        "{{\"ok\":true,{}}}",
        status_fields(id, &session.status())
    ))
}

fn op_query(state: &mut ServeState, fields: &[(String, json::Json)]) -> Result<String, ServeError> {
    let (id, session) = session_mut(state, fields)?;
    let mut extra = String::new();
    if let Some(j) = get(fields, "array") {
        let af = proto(obj(j, "$.array"))?;
        let switch = proto(u64_of(
            proto(req(af, "switch", "$.array"))?,
            "$.array.switch",
        ))?;
        let name = proto(str_of(proto(req(af, "name", "$.array"))?, "$.array.name"))?;
        if !session.program().info.globals_by_name.contains_key(name) {
            return Err(ServeError::new(
                ErrorKind::Protocol,
                format!("the program has no array `{name}`"),
            ));
        }
        let cells = session.world().try_array(switch, name).ok_or_else(|| {
            ServeError::new(
                ErrorKind::Protocol,
                format!("switch {switch} is unknown or failed"),
            )
        })?;
        let rendered: Vec<String> = cells.iter().map(u64::to_string).collect();
        extra.push_str(&format!(",\"array\":[{}]", rendered.join(",")));
    }
    if matches!(get(fields, "metrics"), Some(json::Json::Bool(true))) {
        extra.push_str(&format!(
            ",\"metrics\":{}",
            session.world().metrics().to_json()
        ));
    }
    Ok(format!(
        "{{\"ok\":true,{}{extra}}}",
        status_fields(id, &session.status())
    ))
}

fn op_snapshot(
    state: &mut ServeState,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let (id, session) = session_mut(state, fields)?;
    let bytes = session.snapshot()?;
    Ok(format!(
        "{{\"ok\":true,\"session\":{id},\"len\":{},\"bytes\":\"{}\"}}",
        bytes.len(),
        hex_encode(&bytes)
    ))
}

fn op_restore(
    state: &mut ServeState,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let (id, session) = session_mut(state, fields)?;
    let hex = proto(str_of(proto(req(fields, "bytes", "$"))?, "$.bytes"))?;
    let bytes = hex_decode(hex).map_err(|msg| ServeError::new(ErrorKind::Snapshot, msg))?;
    session.restore(&bytes)?;
    Ok(format!(
        "{{\"ok\":true,{}}}",
        status_fields(id, &session.status())
    ))
}

fn op_swap(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let id = session_id(state, fields)?;
    let source = source_of(fields, "program", "program_path", "program")?.ok_or_else(|| {
        ServeError::new(
            ErrorKind::Protocol,
            "swap needs `program` or `program_path`",
        )
    })?;
    let prog = host
        .swap_program(id, &source)
        .map_err(|msg| ServeError::new(ErrorKind::Swap, msg))?;
    let session = state.sessions.get_mut(&id).expect("checked");
    let stats = session.swap(prog);
    Ok(format!(
        "{{\"ok\":true,\"session\":{id},\"arrays_carried\":{},\"arrays_reset\":{},\
         \"queued_remapped\":{},\"queued_dropped\":{},\"sources_disabled\":{}}}",
        stats.arrays_carried,
        stats.arrays_reset,
        stats.queued_remapped,
        stats.queued_dropped,
        stats.sources_disabled
    ))
}

fn op_drain(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let id = session_id(state, fields)?;
    // An error mid-drain (runtime fault, unmet `--events` target) leaves
    // the session open so the caller can still query or close it.
    let report = state.sessions.get_mut(&id).expect("checked").drain()?;
    state.sessions.remove(&id);
    host.drop_session(id);
    Ok(format!(
        "{{\"ok\":true,\"session\":{id},\"report\":{}}}",
        report.to_json()
    ))
}

fn op_close(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    fields: &[(String, json::Json)],
) -> Result<String, ServeError> {
    let id = session_id(state, fields)?;
    state.sessions.remove(&id);
    host.drop_session(id);
    Ok(format!("{{\"ok\":true,\"session\":{id},\"closed\":true}}"))
}

fn op_shutdown(state: &mut ServeState, host: &mut dyn ProgramHost) -> Result<String, ServeError> {
    let ids: Vec<u64> = state.sessions.keys().copied().collect();
    let mut reports = Vec::with_capacity(ids.len());
    for id in ids {
        let mut session = state.sessions.remove(&id).expect("listed");
        match session.drain() {
            Ok(report) => reports.push(format!(
                "{{\"session\":{id},\"report\":{}}}",
                report.to_json()
            )),
            Err(e) => reports.push(format!(
                "{{\"session\":{id},\"error\":{}}}",
                ServeError::from(e).body()
            )),
        }
        host.drop_session(id);
    }
    Ok(format!(
        "{{\"ok\":true,\"shutdown\":true,\"reports\":[{}]}}",
        reports.join(",")
    ))
}

// ------------------------------------------------------------- transport

/// The stdin/stdout daemon loop: one request line in, one reply line
/// out, until EOF or `shutdown`. Returns whether `shutdown` was the
/// reason for stopping.
pub fn serve_lines<R: BufRead, W: Write>(
    state: &mut ServeState,
    host: &mut dyn ProgramHost,
    input: R,
    mut output: W,
) -> io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(state, host, &line) {
            Outcome::Reply(reply) => {
                writeln!(output, "{reply}")?;
                output.flush()?;
            }
            Outcome::Shutdown(reply) => {
                writeln!(output, "{reply}")?;
                output.flush()?;
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Unix-socket transport: concurrent connections over one shared world.
#[cfg(unix)]
pub mod socket {
    use super::{handle_line, Outcome, ProgramHost, ServeState};
    use std::io::{self, BufRead, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<H> {
        state: ServeState,
        host: H,
    }

    /// Bind `path` and serve until some connection issues `shutdown`.
    /// Connections are handled on their own threads; request handling is
    /// serialized over the shared state, so interleaved clients see a
    /// consistent world.
    pub fn serve_unix<H: ProgramHost + Send + 'static>(path: &Path, host: H) -> io::Result<()> {
        // A stale socket file from a dead daemon would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let shared = Arc::new(Mutex::new(Shared {
            state: ServeState::new(),
            host,
        }));
        let done = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for conn in listener.incoming() {
            if done.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            let sock = path.to_path_buf();
            workers.push(std::thread::spawn(move || {
                let _ = serve_conn(stream, &shared, &done, &sock);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    fn serve_conn<H: ProgramHost>(
        stream: UnixStream,
        shared: &Mutex<Shared<H>>,
        done: &AtomicBool,
        sock: &Path,
    ) -> io::Result<()> {
        let reader = io::BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if done.load(Ordering::SeqCst) {
                break;
            }
            let outcome = {
                let mut guard = shared.lock().expect("serve state poisoned");
                let Shared { state, host } = &mut *guard;
                handle_line(state, host, &line)
            };
            match outcome {
                Outcome::Reply(reply) => writeln!(writer, "{reply}")?,
                Outcome::Shutdown(reply) => {
                    writeln!(writer, "{reply}")?;
                    done.store(true, Ordering::SeqCst);
                    // The accept loop is blocked; a throwaway connection
                    // wakes it so it can observe the flag and stop.
                    let _ = UnixStream::connect(sock);
                    break;
                }
            }
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- hex

/// Lowercase hex, two digits per byte (snapshots ride inside JSON
/// strings; base64 would save bytes but cost a dependency or a table).
pub fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex_encode`]; accepts either case, rejects everything
/// else with a message naming the offending character.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = nibble(pair[0]);
        let lo = nibble(pair[1]);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push((h << 4) | l),
            _ => {
                return Err(format!(
                    "bad hex at byte {}: `{}{}`",
                    out.len() * 2,
                    pair[0] as char,
                    pair[1] as char
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(
            hex_decode("DEADbeef").unwrap(),
            vec![0xDE, 0xAD, 0xBE, 0xEF]
        );
    }

    #[test]
    fn malformed_requests_get_protocol_errors() {
        let mut state = ServeState::new();
        let mut host = CheckHost;
        let r = handle_line(&mut state, &mut host, "not json");
        assert!(r.reply().contains("\"kind\":\"protocol\""));
        let r = handle_line(&mut state, &mut host, "{\"op\":\"warp\"}");
        assert!(r.reply().contains("unknown op `warp`"));
        let r = handle_line(
            &mut state,
            &mut host,
            "{\"op\":\"advance\",\"session\":9,\"to_ns\":1}",
        );
        assert!(r.reply().contains("\"kind\":\"unknown_session\""));
    }
}
