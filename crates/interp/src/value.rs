//! Runtime values for the Lucid interpreter.

use std::fmt;

/// Where an event is destined to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The switch that generates it (the default): the event recirculates.
    Here,
    /// A specific switch.
    Switch(u64),
    /// Every member of a multicast group.
    Group(Vec<u64>),
}

/// An event value: the four-tuple of §3.1 — name (by id), data, time
/// (as a relative delay until generated), and place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventVal {
    /// Index into [`ProgramInfo::events`](lucid_check::ProgramInfo).
    pub event_id: usize,
    /// Shared, not owned: event values are constructed on the hot path,
    /// and an `Arc<str>` clone is a refcount bump instead of a heap
    /// allocation per `generate`.
    pub name: std::sync::Arc<str>,
    /// Carried data, already masked to each parameter's width.
    pub args: Vec<u64>,
    /// Extra delay accumulated from `Event.delay`, in nanoseconds.
    pub delay_ns: u64,
    pub location: Location,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A fixed-width unsigned integer.
    Int {
        v: u64,
        width: u32,
    },
    Bool(bool),
    Event(EventVal),
    Group(Vec<u64>),
    /// Result of `Array.set` and void function calls.
    Void,
}

impl Value {
    pub fn int(v: u64, width: u32) -> Value {
        Value::Int {
            v: lucid_check::mask(v, width),
            width,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int { v, .. } => Some(*v),
            Value::Bool(b) => Some(*b as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int { v, .. } => Some(*v != 0),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int { v, .. } => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Event(e) => {
                let args: Vec<String> = e.args.iter().map(ToString::to_string).collect();
                write!(f, "{}({})", e.name, args.join(", "))
            }
            Value::Group(g) => write!(
                f,
                "{{{}}}",
                g.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Value::Void => write!(f, "()"),
        }
    }
}

/// The deterministic hash used by `hash<<w>>(seed, args..)` in both the
/// interpreter and the Tofino model: a 64-bit FNV-1a-style mix, truncated.
/// Determinism matters — the same program must behave identically in the
/// interpreter and in simulation-backed benches.
pub fn lucid_hash(width: u32, seed: u64, args: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &a in args {
        for i in 0..8 {
            let byte = (a >> (8 * i)) & 0xff;
            h ^= byte;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    // Final avalanche so low-entropy inputs spread over narrow widths.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    lucid_check::mask(h, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_masks_on_construction() {
        assert_eq!(Value::int(0x1ff, 8), Value::Int { v: 0xff, width: 8 });
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let a = lucid_hash(16, 1, &[10, 20]);
        let b = lucid_hash(16, 1, &[10, 20]);
        let c = lucid_hash(16, 2, &[10, 20]);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different hashes");
        assert!(a < (1 << 16));
    }

    #[test]
    fn hash_distributes_over_narrow_width() {
        // All 256 single-byte inputs through an 8-bit hash should hit a
        // reasonable number of distinct buckets.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            seen.insert(lucid_hash(8, 0, &[i]));
        }
        assert!(seen.len() > 140, "only {} distinct buckets", seen.len());
    }

    #[test]
    fn as_int_accepts_bools() {
        assert_eq!(Value::Bool(true).as_int(), Some(1));
    }
}
