//! # lucid-interp
//!
//! An event-driven interpreter for checked Lucid programs: a discrete-event
//! simulation of a network of PISA switches, mirroring the Lucid
//! interpreter the paper's artifact ships for "rapid prototyping and
//! testing ... without requiring access to the Tofino toolchain".
//!
//! * Events are the unit of work: externally injected (packet arrivals,
//!   `Interp::schedule`) or produced by handlers (`generate`).
//! * Handler execution is atomic, as on hardware (§2.4): one handler's
//!   reads and writes never interleave with another's.
//! * Time is modeled at nanosecond resolution: local `generate` costs one
//!   recirculation pass (default 600 ns, §7.4), a located event costs a
//!   wire hop (default 1 µs, §2.1), and `Event.delay(e, us)` adds the given
//!   number of microseconds.
//!
//! ```
//! use lucid_check::parse_and_check;
//! use lucid_interp::{Interp, NetConfig};
//!
//! let prog = parse_and_check(r#"
//!     global cts = new Array<<32>>(16);
//!     memop plus(int m, int x) { return m + x; }
//!     event pkt(int idx);
//!     handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
//! "#).unwrap();
//! let mut sim = Interp::single(&prog);
//! sim.schedule(1, 0, "pkt", &[7]).unwrap();
//! sim.run_to_quiescence().unwrap();
//! assert_eq!(sim.array(1, "cts")[7], 1);
//! ```

#![forbid(unsafe_code)]

pub mod bytecode;
pub mod machine;
pub mod metrics;
pub mod scenario;
pub mod serve;
pub mod session;
mod snap;
pub mod value;
pub mod workload;

pub use bytecode::{
    disassemble, disassemble_opt, violations_to_diagnostics, CompiledProg, ExecMode, OptLevel,
    Violation,
};
pub use machine::SwapStats;
pub use machine::{
    Engine, FaultAt, Handled, Interp, InterpError, InterpFault, NetConfig, Stats, SwitchState,
};
pub use metrics::{ClassHists, ClassMetrics, Histogram, MetricSel, Metrics};
#[allow(deprecated)]
pub use scenario::SimOverrides;
pub use scenario::{
    json_escape, run_scenario, run_scenario_with, CmpOp, MetricExpect, Mismatch, Scenario,
    ScenarioError, SimOptions, SimReport, SimRunError,
};
pub use serve::{
    handle_line, hex_decode, hex_encode, serve_lines, CheckHost, ErrorKind, Outcome, ProgramHost,
    ServeError, ServeState,
};
pub use session::{SessionStatus, SimSession};
pub use snap::SnapError;
pub use value::{lucid_hash, EventVal, Location, Value};
pub use workload::{ArgDist, EventSource, GenSpec, Generator, Phase, SourcedEvent, Workload};
