//! Bytecode compilation, optimization, and execution for the
//! interpreter's hot path.
//!
//! The AST walker in [`machine`](crate::machine) is the reference
//! semantics: it re-clones handler bodies and threads a `HashMap` of
//! locals through every event. This module lowers each checked handler
//! once, at [`Interp`](crate::Interp) construction, into a compact
//! register bytecode that a flat dispatch loop executes with no
//! allocation beyond what the program itself asks for (event values,
//! printf lines). Selecting it is [`ExecMode::Bytecode`] on
//! [`NetConfig`](crate::NetConfig); results are bit-identical to the
//! walker — state, statistics, trace, and printf output — which the
//! differential property suite in `tests/tests/differential.rs` and the
//! `fig_sim_throughput` bench both enforce.
//!
//! The module tree mirrors the pipeline:
//!
//! * `lower` — one pass over the checked AST per handler, producing
//!   raw bytecode (what [`OptLevel::O0`] executes);
//! * `opt` — the optimizer: a peephole/superinstruction pass
//!   ([`OptLevel::O1`]) that elides provably-safe bounds checks and
//!   fuses the dominant handler patterns (hash-then-index, checked
//!   memop load/modify/store, compare-and-branch, const-operand
//!   arithmetic) into single opcodes, then a linear-scan register
//!   allocation pass ([`OptLevel::O2`], the default) that coalesces
//!   moves and shrinks the per-shard scratch frame;
//! * `exec` — the flat dispatch loop;
//! * `disasm` — the stable listing golden-file tests pin
//!   (`lucidc sim --dump-bytecode`).
//!
//! Every optimization level is bit-identical to the walker; the
//! differential suites sweep the full engine × exec × opt matrix.
//!
//! # The ISA
//!
//! * **Registers** (`r0`, `r1`, ...) hold a 64-bit value *and its bit
//!   width*. The reference walker gives every integer a dynamic width
//!   (literals default to 32 bits regardless of what the checker
//!   inferred, binary operators take the wider operand, casts re-mask),
//!   so widths travel with values at runtime rather than being guessed
//!   at compile time — this is what makes the two engines agree bit for
//!   bit even on width-mixing programs.
//! * **Object slots** (`o0`, `o1`, ...) hold event values and multicast
//!   groups — things a register cannot.
//! * **Handlers** are straight-line code with forward jumps only (Lucid
//!   has no loops; iteration happens through `generate`). Handler
//!   parameters arrive pre-masked in `r0..rN`.
//! * **Functions are inlined per call site**, mirroring the checker's
//!   per-instantiation analysis: array-typed parameters resolve to
//!   concrete global ids at compile time, value parameters become
//!   registers, `return` becomes a jump to the inlined epilogue.
//!
//! Array lengths, cell widths, memop bodies, event signatures, group
//! memberships, and printf format strings live in per-program pools so
//! instructions stay small.

mod disasm;
mod exec;
mod lower;
mod opt;
pub mod verify;
mod word;

pub use disasm::{disassemble, disassemble_opt};
pub use verify::{violations_to_diagnostics, Violation};
pub use word::{DecodeError, SideTables, Word};

use crate::value::EventVal;
use lucid_check::{CheckedProgram, MemopIr};
use lucid_frontend::ast::*;

/// Which executor runs handler bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tree-walk the checked AST — the reference semantics.
    #[default]
    Ast,
    /// Flat dispatch loop over compiled register bytecode.
    Bytecode,
}

impl ExecMode {
    /// Parse a CLI/scenario exec-mode name.
    pub fn parse(name: &str) -> Option<ExecMode> {
        match name {
            "ast" | "walker" => Some(ExecMode::Ast),
            "bytecode" | "bc" => Some(ExecMode::Bytecode),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Ast => "ast",
            ExecMode::Bytecode => "bytecode",
        }
    }
}

/// How hard the bytecode pipeline optimizes between lowering and
/// execution. Every level is bit-identical to the AST walker; higher
/// levels only run faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// Raw lowering, exactly as `lower` emits it.
    O0,
    /// Peephole/superinstruction pass: bounds-check elision and the
    /// fused opcodes (hash-then-index, checked array ops,
    /// compare-and-branch, const-operand arithmetic).
    O1,
    /// Peephole plus linear-scan register allocation (move coalescing,
    /// dead-register reuse, smaller scratch frames). The default.
    #[default]
    O2,
}

impl OptLevel {
    /// Parse a CLI/scenario opt-level (`0`, `1`, or `2`).
    pub fn parse(name: &str) -> Option<OptLevel> {
        match name {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// The numeric level (`"0"`, `"1"`, `"2"`).
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::O0 => "0",
            OptLevel::O1 => "1",
            OptLevel::O2 => "2",
        }
    }
}

/// A register value: the payload and its current bit width (the same
/// pair [`Value::Int`](crate::value::Value) carries in the walker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rv {
    pub v: u64,
    pub w: u32,
}

impl Default for Rv {
    fn default() -> Self {
        Rv { v: 0, w: 32 }
    }
}

/// An object slot: an event value, a multicast group, or empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) enum Obj {
    #[default]
    None,
    Ev(EventVal),
    Group(Vec<u64>),
}

/// One printf argument: which register, and whether the walker would
/// have held a `bool` there (bools print as `true`/`false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrintArg {
    reg: u16,
    is_bool: bool,
}

/// One bytecode instruction. `dst`/`a`/`b`/... index registers; `obj`
/// fields index object slots; `gid`, `memop`, `group`, `fmt`, and
/// `event_id` index the per-program pools. The `Chk*`, `*Imm`, `JCmp*`,
/// and `HashChk` variants are superinstructions: `lower` never emits
/// them, the `opt` peephole pass fuses them out of the raw patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `r[dst] = (imm, w)`.
    Const {
        dst: u16,
        imm: u64,
        w: u32,
    },
    /// `r[dst] = r[src]` (value and width).
    Mov {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(r[src], r[dst].w)` — assignment keeps the
    /// destination variable's width, as the walker does.
    StoreMasked {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = (r[src] != 0, 1)` — normalize to a boolean.
    BoolOf {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = (r[src] == 0, 1)` — logical not.
    Not {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(-r[src], r[src].w)`.
    Neg {
        dst: u16,
        src: u16,
    },
    /// `r[dst] = mask(!r[src], r[src].w)`.
    BitNot {
        dst: u16,
        src: u16,
    },
    /// Arithmetic/bitwise/shift op; result width is the wider operand's.
    Bin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Fused `Const` + `Bin`: `r[dst] = r[a] op (imm, w)`. Identical
    /// width/masking rules to `Bin` with a `(imm, w)` right operand.
    BinImm {
        op: BinOp,
        dst: u16,
        a: u16,
        imm: u64,
        w: u32,
    },
    /// Comparison; result is a boolean.
    Cmp {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Fused `Const` + `Cmp`: `r[dst] = (r[a] op imm, 1)`.
    CmpImm {
        op: BinOp,
        dst: u16,
        a: u16,
        imm: u64,
    },
    /// `r[dst] = (mask(r[src], w), w)` — cast / typed-local write.
    MaskW {
        dst: u16,
        src: u16,
        w: u32,
    },
    /// `r[dst] = (hash<<w>>(args[0]; args[1..]), w)`.
    Hash {
        dst: u16,
        w: u32,
        args: Box<[u16]>,
    },
    /// Fused `Hash` + `ArrCheck` on the hash result (the hash-then-index
    /// hot path): hash into `dst`, then bounds-check it against `gid`.
    HashChk {
        dst: u16,
        w: u32,
        args: Box<[u16]>,
        gid: u32,
    },
    Jmp {
        to: u32,
    },
    /// Jump when `r[cond] == 0`.
    Jz {
        cond: u16,
        to: u32,
    },
    /// Jump when `r[cond] != 0`.
    Jnz {
        cond: u16,
        to: u32,
    },
    /// Fused compare-and-branch: jump when `(r[a] op r[b]) == when`.
    JCmp {
        op: BinOp,
        a: u16,
        b: u16,
        when: bool,
        to: u32,
    },
    /// Fused compare-immediate-and-branch: jump when
    /// `(r[a] op imm) == when`.
    JCmpImm {
        op: BinOp,
        a: u16,
        imm: u64,
        when: bool,
        to: u32,
    },
    /// Bounds-check `r[idx]` against array `gid` (faults exactly where
    /// the walker would, before any memop argument evaluates).
    ArrCheck {
        gid: u32,
        idx: u16,
    },
    /// `r[dst] = (cells[r[idx]], cell_w)`.
    ArrGet {
        dst: u16,
        gid: u32,
        idx: u16,
    },
    /// `cells[r[idx]] = mask(r[val], cell_w)`.
    ArrSet {
        gid: u32,
        idx: u16,
        val: u16,
    },
    /// `r[dst] = (mask(memop(cell, r[local]), cell_w), cell_w)`.
    ArrGetm {
        dst: u16,
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// `cells[r[idx]] = memop(cell, r[local])`.
    ArrSetm {
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// Parallel read-and-write through two memops.
    ArrUpdate {
        dst: u16,
        gid: u32,
        idx: u16,
        getop: u16,
        getarg: u16,
        setop: u16,
        setarg: u16,
    },
    /// Fused `ArrCheck` + `ArrGet`.
    ChkGet {
        dst: u16,
        gid: u32,
        idx: u16,
    },
    /// Fused `ArrCheck` + `ArrSet`.
    ChkSet {
        gid: u32,
        idx: u16,
        val: u16,
    },
    /// Fused `ArrCheck` + `ArrGetm` (the memop load/modify hot path).
    ChkGetm {
        dst: u16,
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// Fused `ArrCheck` + `ArrSetm` (the memop modify/store hot path).
    ChkSetm {
        gid: u32,
        idx: u16,
        memop: u16,
        local: u16,
    },
    /// Fused `ArrCheck` + `ArrUpdate`.
    ChkUpdate {
        dst: u16,
        gid: u32,
        idx: u16,
        getop: u16,
        getarg: u16,
        setop: u16,
        setarg: u16,
    },
    /// `o[dst] = event_id(args...)` — args masked to parameter widths.
    MkEvent {
        dst: u16,
        event_id: u32,
        args: Box<[u16]>,
    },
    /// `o[dst] = o[src].clone()`.
    ObjCopy {
        dst: u16,
        src: u16,
    },
    /// `o[dst] = groups[group].clone()`.
    LoadGroup {
        dst: u16,
        group: u16,
    },
    /// `o[obj].delay_ns += r[us] * 1000` (events only; others pass).
    EvDelay {
        obj: u16,
        us: u16,
    },
    /// `o[obj].location = Switch(r[loc])`.
    EvLocate {
        obj: u16,
        loc: u16,
    },
    /// `o[obj].location = Group(o[group])`.
    EvMLocate {
        obj: u16,
        group: u16,
    },
    /// Emit `o[obj]` into the shard's schedule (consumes the slot).
    Generate {
        obj: u16,
    },
    /// `r[dst] = (switch_id, 32)`.
    LoadSelf {
        dst: u16,
    },
    /// `r[dst] = (mask(now_ns / 1000, 32), 32)`.
    LoadTime {
        dst: u16,
    },
    /// `r[dst] = (0, 32)` — `Sys.port()` is always 0 in the simulator.
    LoadPort {
        dst: u16,
    },
    /// Format `fmts[fmt]` with the given registers and record the line.
    Printf {
        fmt: u16,
        args: Box<[PrintArg]>,
    },
    /// End of handler.
    Halt,
}

/// How one handler parameter binds into its register at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamBind {
    /// `(raw, w)` — raw values arrive pre-masked from the scheduler.
    Int(u32),
    /// `(raw != 0, 1)` — the walker's `value_of(Ty::Bool, raw)`.
    Bool,
}

/// An elision proof: the O1 upper-bound analysis deleted the runtime
/// bounds check for accesses to array `gid` through register `idx`
/// because the register provably holds a value below `bound`
/// (exclusive) — and `bound` fits the array. The [`verify`] pass
/// re-derives the bound with its own dataflow; an access whose check
/// merely vanished, with no proof or with a proof the verifier cannot
/// reproduce, is a `V0009` violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elision {
    pub gid: u32,
    pub idx: u16,
    pub bound: u128,
}

/// One handler's compiled body: packed instruction words plus the side
/// tables their overflow operands index into (see the `word` module
/// docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerCode {
    event_id: usize,
    name: String,
    /// Parameter names, for the disassembly header.
    param_names: Vec<String>,
    binds: Vec<ParamBind>,
    nregs: usize,
    nobjs: usize,
    /// The handler span as packed 64-bit words.
    code: Vec<Word>,
    /// Wide-immediate and ext-operand pools the words reference.
    tables: SideTables,
    /// Bounds-check elision proofs recorded by the optimizer (empty at
    /// `O0`; regalloc remaps the index registers along with the code).
    elisions: Vec<Elision>,
}

impl HandlerCode {
    /// Decode the packed span back into the structured instruction view
    /// (the optimizer, verifier, and disassembler work on this; the
    /// executor dispatches on the raw words). Panics on a corrupted
    /// encoding — callers that must not panic go through the `word`
    /// module's `decode` and get the structured error instead.
    pub fn instrs(&self) -> Vec<Instr> {
        word::decode_all(&self.code, &self.tables)
            .unwrap_or_else(|(pc, e)| panic!("undecodable word at pc {pc}: {e}"))
    }

    /// The packed instruction words (with [`HandlerCode::tables`], the
    /// complete executable form).
    pub fn words(&self) -> &[Word] {
        &self.code
    }

    /// The side tables backing [`HandlerCode::words`].
    pub fn tables(&self) -> &SideTables {
        &self.tables
    }

    /// Replace the handler span, re-encoding through fresh side tables
    /// (dead pool entries from rewritten instructions are dropped).
    fn set_instrs(&mut self, code: &[Instr]) {
        let (words, tables) = word::encode_all(code);
        self.code = words;
        self.tables = tables;
    }

    /// The handler's event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register-frame size (what each shard's scratch buffer resizes to
    /// per activation — the quantity regalloc shrinks).
    pub fn nregs(&self) -> usize {
        self.nregs
    }

    /// Object-slot frame size.
    pub fn nobjs(&self) -> usize {
        self.nobjs
    }

    /// The bounds-check elision proofs the optimizer recorded.
    pub fn elisions(&self) -> &[Elision] {
        &self.elisions
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ArrayMeta {
    name: String,
    len: u64,
    width: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EventMeta {
    /// Shared with every [`EventVal`] the executor constructs (refcount
    /// bump per `MkEvent`, not a string allocation).
    name: std::sync::Arc<str>,
    widths: Box<[u32]>,
}

/// A whole checked program lowered to bytecode: per-event handler code
/// plus the pools instructions index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProg {
    /// Indexed by event id; `None` = declared event with no handler.
    handlers: Vec<Option<HandlerCode>>,
    arrays: Vec<ArrayMeta>,
    events: Vec<EventMeta>,
    memops: Vec<MemopIr>,
    groups: Vec<(String, Vec<u64>)>,
    fmts: Vec<String>,
    /// The level the handlers were optimized at.
    opt: OptLevel,
}

impl CompiledProg {
    /// Lower every handler of a checked program and optimize at the
    /// default level ([`OptLevel::O2`]).
    pub fn compile(prog: &CheckedProgram) -> CompiledProg {
        CompiledProg::compile_opt(prog, OptLevel::default())
    }

    /// Lower every handler and run the optimizer pipeline at `level`.
    ///
    /// In debug builds (all tests, CI) every handler is re-verified
    /// after lowering and after each optimizer pass — a violation here
    /// is a compiler bug, so it panics with the rendered violations.
    /// Release builds skip verification on this path (it is compile-time
    /// work, but the perf gate pins end-to-end build+run time); use
    /// [`CompiledProg::compile_verified`] to verify explicitly.
    pub fn compile_opt(prog: &CheckedProgram, level: OptLevel) -> CompiledProg {
        match Self::compile_inner(prog, level, cfg!(debug_assertions)) {
            Ok(cp) => cp,
            Err(violations) => {
                let list: Vec<String> = violations.iter().map(ToString::to_string).collect();
                panic!(
                    "bytecode verifier rejected the compiler's own output:\n{}",
                    list.join("\n")
                );
            }
        }
    }

    /// Lower and optimize at `level`, verifying after lowering and
    /// after each optimizer pass regardless of build profile. The error
    /// names the pass that produced the first ill-formed handler.
    pub fn compile_verified(
        prog: &CheckedProgram,
        level: OptLevel,
    ) -> Result<CompiledProg, Vec<Violation>> {
        Self::compile_inner(prog, level, true)
    }

    fn compile_inner(
        prog: &CheckedProgram,
        level: OptLevel,
        verify: bool,
    ) -> Result<CompiledProg, Vec<Violation>> {
        let arrays = prog
            .info
            .globals
            .iter()
            .map(|g| ArrayMeta {
                name: g.name.clone(),
                len: g.len,
                width: g.cell_width,
            })
            .collect();
        let events = prog
            .info
            .events
            .iter()
            .map(|e| EventMeta {
                name: e.name.as_str().into(),
                widths: e
                    .params
                    .iter()
                    .map(|p| p.ty.int_width().unwrap_or(32))
                    .collect(),
            })
            .collect();
        let mut cp = CompiledProg {
            handlers: Vec::new(),
            arrays,
            events,
            memops: Vec::new(),
            groups: Vec::new(),
            fmts: Vec::new(),
            opt: level,
        };
        // Event-id order keeps pool numbering (and the disassembly)
        // deterministic.
        let mut violations = Vec::new();
        for id in 0..prog.info.events.len() {
            let name = prog.info.events[id].name.clone();
            let code = prog.handler_body(&name).map(|(params, body)| {
                let mut h = lower::compile_handler(prog, &mut cp, id, &name, params, body);
                if verify {
                    violations.extend(verify::verify_handler(&h, &cp, "lower"));
                }
                if level >= OptLevel::O1 {
                    opt::peephole(&mut h, &cp);
                    if verify {
                        violations.extend(verify::verify_handler(&h, &cp, "peephole"));
                    }
                }
                if level >= OptLevel::O2 {
                    opt::regalloc(&mut h);
                    if verify {
                        violations.extend(verify::verify_handler(&h, &cp, "regalloc"));
                    }
                }
                h
            });
            cp.handlers.push(code);
        }
        if violations.is_empty() {
            Ok(cp)
        } else {
            Err(violations)
        }
    }

    /// Re-verify every compiled handler as-is (pass name `"final"`).
    /// This is the entry point the mutation smoke tests corrupt
    /// bytecode against, and what `lucidc sim --verify-bytecode` runs.
    pub fn verify(&self) -> Vec<Violation> {
        self.handlers
            .iter()
            .flatten()
            .flat_map(|h| verify::verify_handler(h, self, "final"))
            .collect()
    }

    /// The level this program was optimized at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// The compiled code for an event, if it has a handler.
    pub fn handler(&self, event_id: usize) -> Option<&HandlerCode> {
        self.handlers.get(event_id).and_then(|h| h.as_ref())
    }

    /// Every compiled handler, in event-id order.
    pub fn handlers(&self) -> impl Iterator<Item = &HandlerCode> {
        self.handlers.iter().flatten()
    }

    fn memop_id(&mut self, m: &MemopIr) -> u16 {
        match self.memops.iter().position(|x| x.name == m.name) {
            Some(i) => i as u16,
            None => {
                self.memops.push(m.clone());
                (self.memops.len() - 1) as u16
            }
        }
    }

    fn group_id(&mut self, name: &str, members: &[u64]) -> u16 {
        match self.groups.iter().position(|(n, _)| n == name) {
            Some(i) => i as u16,
            None => {
                self.groups.push((name.to_string(), members.to_vec()));
                (self.groups.len() - 1) as u16
            }
        }
    }

    /// The interned `printf` format string behind an id, for the driver
    /// rendering deferred output records at a run's merge point.
    pub(crate) fn fmt_str(&self, fmt: u16) -> &str {
        &self.fmts[fmt as usize]
    }

    fn fmt_id(&mut self, fmt: &str) -> u16 {
        match self.fmts.iter().position(|f| f == fmt) {
            Some(i) => i as u16,
            None => {
                self.fmts.push(fmt.to_string());
                (self.fmts.len() - 1) as u16
            }
        }
    }
}

#[cfg(test)]
mod tests;
