//! The bytecode optimizer: a peephole/superinstruction pass
//! ([`OptLevel::O1`]) followed by linear-scan register allocation
//! ([`OptLevel::O2`]).
//!
//! Everything here leans on one structural property of lowered
//! handlers: **jumps are forward-only** (Lucid has no loops). That
//! makes a single reverse pass a complete liveness fixpoint, makes
//! whole-span linear-scan register intervals sound (no dynamic path can
//! revisit an earlier pc), and bounds every rewrite loop.
//!
//! The peephole pipeline, iterated to a fixpoint (which is what makes
//! the pass idempotent — a property the tests assert):
//!
//! 1. **Bounds-check elision** — a per-register upper-bound dataflow
//!    over straight-line segments deletes `ArrCheck`s that can never
//!    fire (e.g. an index produced by `hash<<w>>` into an array of at
//!    least `2^w` cells, or masked by `& (len-1)`).
//! 2. **Check sinking** — an `ArrCheck` may drift past register-pure,
//!    non-faulting instructions (never past a jump, a jump target, an
//!    observable effect, another potential fault, or a write to the
//!    index register) until it abuts the array op it guards. Faults
//!    stay bit-identical: the instructions crossed cannot fault or be
//!    observed, and the scratch registers they write are not part of a
//!    faulted run's observable state.
//! 3. **Fusion** — adjacent pairs become single superinstructions:
//!    `Hash`+`ArrCheck` (hash-then-index), `ArrCheck`+array op (the
//!    memop load/modify/store path), `Const`+`Bin`/`Cmp`
//!    (const-operand arithmetic), and `Cmp`/`CmpImm`/`BoolOf`/`Not`
//!    followed by a conditional jump (compare-and-branch). Pairs fuse
//!    only when the intermediate register is dead afterwards and the
//!    second instruction is not a jump target.
//!
//! Register allocation then repacks the frame: whole-span intervals per
//! register, smallest-free-first assignment, and `Mov` coalescing when
//! the source dies exactly where the destination is born. The new frame
//! is never larger than the old one (also asserted by tests).

use super::{CompiledProg, Elision, HandlerCode, Instr};
use lucid_frontend::ast::BinOp;
use std::collections::HashMap;

/// The peephole/superinstruction pass, iterated to a fixpoint. Each
/// sub-pass can expose patterns for the others (a deleted `Const` makes
/// a `Cmp` adjacent to its branch, a sunk check abuts its array op), and
/// every sub-pass strictly deletes instructions or moves a check later,
/// so the loop terminates.
///
/// The packed span is decoded once, rewritten in the structured
/// [`Instr`] view, and re-encoded through fresh side tables at the end
/// — re-encoding is deterministic, so running the pass again on its own
/// output reproduces the same words bit for bit (idempotence, asserted
/// by tests).
pub(super) fn peephole(h: &mut HandlerCode, pools: &CompiledProg) {
    let mut code = h.instrs();
    loop {
        let mut changed = elide_checks(&mut code, &mut h.elisions, pools);
        changed |= sink_checks(&mut code);
        changed |= fuse(&mut code, h.nregs);
        if !changed {
            break;
        }
    }
    h.set_instrs(&code);
}

// -------------------------------------------------------------- analysis

/// The register an instruction writes, if any.
pub(super) fn def(i: &Instr) -> Option<u16> {
    match i {
        Instr::Const { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::StoreMasked { dst, .. }
        | Instr::BoolOf { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::BitNot { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::BinImm { dst, .. }
        | Instr::Cmp { dst, .. }
        | Instr::CmpImm { dst, .. }
        | Instr::MaskW { dst, .. }
        | Instr::Hash { dst, .. }
        | Instr::HashChk { dst, .. }
        | Instr::ArrGet { dst, .. }
        | Instr::ArrGetm { dst, .. }
        | Instr::ArrUpdate { dst, .. }
        | Instr::ChkGet { dst, .. }
        | Instr::ChkGetm { dst, .. }
        | Instr::ChkUpdate { dst, .. }
        | Instr::LoadSelf { dst }
        | Instr::LoadTime { dst }
        | Instr::LoadPort { dst } => Some(*dst),
        _ => None,
    }
}

/// Invoke `f` on every register an instruction reads. `StoreMasked`
/// reads its destination's current width, so its `dst` counts as a use.
pub(super) fn uses(i: &Instr, f: &mut impl FnMut(u16)) {
    match i {
        Instr::Const { .. }
        | Instr::Jmp { .. }
        | Instr::ObjCopy { .. }
        | Instr::LoadGroup { .. }
        | Instr::EvMLocate { .. }
        | Instr::Generate { .. }
        | Instr::LoadSelf { .. }
        | Instr::LoadTime { .. }
        | Instr::LoadPort { .. }
        | Instr::Halt => {}
        Instr::Mov { src, .. }
        | Instr::BoolOf { src, .. }
        | Instr::Not { src, .. }
        | Instr::Neg { src, .. }
        | Instr::BitNot { src, .. }
        | Instr::MaskW { src, .. } => f(*src),
        Instr::StoreMasked { dst, src } => {
            f(*src);
            f(*dst);
        }
        Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::BinImm { a, .. } | Instr::CmpImm { a, .. } | Instr::JCmpImm { a, .. } => f(*a),
        Instr::JCmp { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::Hash { args, .. } | Instr::HashChk { args, .. } | Instr::MkEvent { args, .. } => {
            for r in args {
                f(*r);
            }
        }
        Instr::Jz { cond, .. } | Instr::Jnz { cond, .. } => f(*cond),
        Instr::ArrCheck { idx, .. } => f(*idx),
        Instr::ArrGet { idx, .. } | Instr::ChkGet { idx, .. } => f(*idx),
        Instr::ArrSet { idx, val, .. } | Instr::ChkSet { idx, val, .. } => {
            f(*idx);
            f(*val);
        }
        Instr::ArrGetm { idx, local, .. }
        | Instr::ArrSetm { idx, local, .. }
        | Instr::ChkGetm { idx, local, .. }
        | Instr::ChkSetm { idx, local, .. } => {
            f(*idx);
            f(*local);
        }
        Instr::ArrUpdate {
            idx,
            getarg,
            setarg,
            ..
        }
        | Instr::ChkUpdate {
            idx,
            getarg,
            setarg,
            ..
        } => {
            f(*idx);
            f(*getarg);
            f(*setarg);
        }
        Instr::EvDelay { us, .. } => f(*us),
        Instr::EvLocate { loc, .. } => f(*loc),
        Instr::Printf { args, .. } => {
            for p in args {
                f(p.reg);
            }
        }
    }
}

/// Rewrite every register operand through `map` (used by regalloc).
fn rewrite_regs(i: &mut Instr, map: &[u16]) {
    let m = |r: &mut u16| *r = map[*r as usize];
    match i {
        Instr::Const { dst, .. }
        | Instr::LoadSelf { dst }
        | Instr::LoadTime { dst }
        | Instr::LoadPort { dst } => m(dst),
        Instr::Mov { dst, src }
        | Instr::StoreMasked { dst, src }
        | Instr::BoolOf { dst, src }
        | Instr::Not { dst, src }
        | Instr::Neg { dst, src }
        | Instr::BitNot { dst, src }
        | Instr::MaskW { dst, src, .. } => {
            m(dst);
            m(src);
        }
        Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } => {
            m(dst);
            m(a);
            m(b);
        }
        Instr::BinImm { dst, a, .. } | Instr::CmpImm { dst, a, .. } => {
            m(dst);
            m(a);
        }
        Instr::JCmp { a, b, .. } => {
            m(a);
            m(b);
        }
        Instr::JCmpImm { a, .. } => m(a),
        Instr::Hash { dst, args, .. } | Instr::HashChk { dst, args, .. } => {
            m(dst);
            for r in args.iter_mut() {
                m(r);
            }
        }
        Instr::MkEvent { args, .. } => {
            for r in args.iter_mut() {
                m(r);
            }
        }
        Instr::Jmp { .. } => {}
        Instr::Jz { cond, .. } | Instr::Jnz { cond, .. } => m(cond),
        Instr::ArrCheck { idx, .. } => m(idx),
        Instr::ArrGet { dst, idx, .. } | Instr::ChkGet { dst, idx, .. } => {
            m(dst);
            m(idx);
        }
        Instr::ArrSet { idx, val, .. } | Instr::ChkSet { idx, val, .. } => {
            m(idx);
            m(val);
        }
        Instr::ArrGetm {
            dst, idx, local, ..
        }
        | Instr::ChkGetm {
            dst, idx, local, ..
        } => {
            m(dst);
            m(idx);
            m(local);
        }
        Instr::ArrSetm { idx, local, .. } | Instr::ChkSetm { idx, local, .. } => {
            m(idx);
            m(local);
        }
        Instr::ArrUpdate {
            dst,
            idx,
            getarg,
            setarg,
            ..
        }
        | Instr::ChkUpdate {
            dst,
            idx,
            getarg,
            setarg,
            ..
        } => {
            m(dst);
            m(idx);
            m(getarg);
            m(setarg);
        }
        Instr::ObjCopy { .. } | Instr::LoadGroup { .. } | Instr::EvMLocate { .. } => {}
        Instr::EvDelay { us, .. } => m(us),
        Instr::EvLocate { loc, .. } => m(loc),
        Instr::Generate { .. } => {}
        Instr::Printf { args, .. } => {
            for p in args.iter_mut() {
                m(&mut p.reg);
            }
        }
        Instr::Halt => {}
    }
}

/// `targets[pc]` — some jump lands on `pc`.
fn jump_targets(code: &[Instr]) -> Vec<bool> {
    let mut t = vec![false; code.len() + 1];
    for i in code {
        if let Instr::Jmp { to }
        | Instr::Jz { to, .. }
        | Instr::Jnz { to, .. }
        | Instr::JCmp { to, .. }
        | Instr::JCmpImm { to, .. } = i
        {
            t[*to as usize] = true;
        }
    }
    t
}

/// A fixed-size register bitset.
#[derive(Clone, PartialEq)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(nregs: usize) -> BitSet {
        BitSet(vec![0; nregs.div_ceil(64).max(1)])
    }

    fn set(&mut self, r: u16) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }

    fn clear(&mut self, r: u16) {
        self.0[r as usize / 64] &= !(1 << (r % 64));
    }

    fn get(&self, r: u16) -> bool {
        self.0[r as usize / 64] & (1 << (r % 64)) != 0
    }

    fn union(&mut self, other: &BitSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Per-instruction live-in sets. Handlers only jump forward, so one
/// reverse pass is a complete fixpoint: both successors of any `pc`
/// (fall-through and jump target) lie at higher addresses and are
/// already final when `pc` is processed.
fn live_in(code: &[Instr], nregs: usize) -> Vec<BitSet> {
    let mut live = vec![BitSet::new(nregs); code.len() + 1];
    for pc in (0..code.len()).rev() {
        let mut set = BitSet::new(nregs);
        match &code[pc] {
            Instr::Halt => {}
            Instr::Jmp { to } => set = live[*to as usize].clone(),
            Instr::Jz { to, .. }
            | Instr::Jnz { to, .. }
            | Instr::JCmp { to, .. }
            | Instr::JCmpImm { to, .. } => {
                set = live[pc + 1].clone();
                set.union(&live[*to as usize]);
            }
            _ => set = live[pc + 1].clone(),
        }
        if let Some(d) = def(&code[pc]) {
            set.clear(d);
        }
        uses(&code[pc], &mut |r| set.set(r));
        live[pc] = set;
    }
    live
}

/// Is `r` live after the instruction at `pc` (on any successor path)?
fn live_after(code: &[Instr], live: &[BitSet], pc: usize, r: u16) -> bool {
    match &code[pc] {
        Instr::Halt => false,
        Instr::Jmp { to } => live[*to as usize].get(r),
        Instr::Jz { to, .. }
        | Instr::Jnz { to, .. }
        | Instr::JCmp { to, .. }
        | Instr::JCmpImm { to, .. } => live[pc + 1].get(r) || live[*to as usize].get(r),
        _ => live[pc + 1].get(r),
    }
}

/// Drop the instructions marked dead and remap every jump target. A
/// dropped instruction that was itself a jump target maps to the next
/// kept one — valid because fusion folds a dropped instruction's effect
/// into its (kept) successor and elision only drops no-ops.
fn compact(code: &[Instr], keep: &[bool]) -> Vec<Instr> {
    let mut map = vec![0u32; code.len() + 1];
    let mut n = 0u32;
    for (i, k) in keep.iter().enumerate() {
        map[i] = n;
        n += u32::from(*k);
    }
    map[code.len()] = n;
    code.iter()
        .zip(keep)
        .filter(|(_, k)| **k)
        .map(|(i, _)| {
            let mut i = i.clone();
            if let Instr::Jmp { to }
            | Instr::Jz { to, .. }
            | Instr::Jnz { to, .. }
            | Instr::JCmp { to, .. }
            | Instr::JCmpImm { to, .. } = &mut i
            {
                *to = map[*to as usize];
            }
            i
        })
        .collect()
}

// ------------------------------------------------- bounds-check elision

/// Delete `ArrCheck`s whose index register provably holds a value below
/// the array length. Upper bounds (exclusive) propagate through the
/// value-narrowing instructions within one straight-line segment; jump
/// targets merge paths, so all knowledge resets there.
///
/// Every deleted check records an [`Elision`] proof (array, index
/// register, derived bound) on the handler, which the bytecode
/// verifier audits by re-deriving the bound with its own dataflow —
/// an unproven deletion is a `V0009` violation.
fn elide_checks(code: &mut Vec<Instr>, elisions: &mut Vec<Elision>, pools: &CompiledProg) -> bool {
    let targets = jump_targets(code);
    let mut ub: HashMap<u16, u128> = HashMap::new();
    let mut keep = vec![true; code.len()];
    let mut changed = false;
    for (pc, i) in code.iter().enumerate() {
        if targets[pc] {
            ub.clear();
        }
        if let Instr::ArrCheck { gid, idx } = i {
            if let Some(b) = ub
                .get(idx)
                .copied()
                .filter(|b| *b <= pools.arrays[*gid as usize].len as u128)
            {
                elisions.push(Elision {
                    gid: *gid,
                    idx: *idx,
                    bound: b,
                });
                keep[pc] = false;
                changed = true;
                continue;
            }
        }
        let width_bound = |w: u32| 1u128 << w.min(64);
        let known = match i {
            Instr::Const { imm, .. } => Some(*imm as u128 + 1),
            Instr::Hash { w, .. } | Instr::HashChk { w, .. } => Some(width_bound(*w)),
            Instr::MaskW { src, w, .. } => Some(
                ub.get(src)
                    .copied()
                    .unwrap_or(u128::MAX)
                    .min(width_bound(*w)),
            ),
            Instr::Mov { src, .. } => ub.get(src).copied(),
            Instr::Bin {
                op: BinOp::BitAnd,
                a,
                b,
                ..
            } => match (ub.get(a), ub.get(b)) {
                (None, None) => None,
                (x, y) => Some(
                    x.copied()
                        .unwrap_or(u128::MAX)
                        .min(y.copied().unwrap_or(u128::MAX)),
                ),
            },
            Instr::BinImm {
                op: BinOp::BitAnd,
                imm,
                a,
                ..
            } => Some(
                ub.get(a)
                    .copied()
                    .unwrap_or(u128::MAX)
                    .min(*imm as u128 + 1),
            ),
            Instr::Bin {
                op: BinOp::Mod, b, ..
            } => ub.get(b).copied(),
            Instr::BinImm {
                op: BinOp::Mod,
                imm,
                ..
            } => Some((*imm as u128).max(1)),
            Instr::ArrGet { gid, .. }
            | Instr::ChkGet { gid, .. }
            | Instr::ArrGetm { gid, .. }
            | Instr::ChkGetm { gid, .. }
            | Instr::ArrUpdate { gid, .. }
            | Instr::ChkUpdate { gid, .. } => Some(width_bound(pools.arrays[*gid as usize].width)),
            Instr::Cmp { .. } | Instr::CmpImm { .. } | Instr::BoolOf { .. } | Instr::Not { .. } => {
                Some(2)
            }
            Instr::LoadPort { .. } => Some(1),
            _ => None,
        };
        if let Some(d) = def(i) {
            match known {
                Some(b) => {
                    ub.insert(d, b);
                }
                None => {
                    ub.remove(&d);
                }
            }
        }
    }
    if changed {
        *code = compact(code, &keep);
    }
    changed
}

// --------------------------------------------------------- check sinking

/// May an `ArrCheck` drift past this instruction? Only register-pure,
/// non-faulting instructions qualify: nothing observable on a faulted
/// run (no array writes, no `generate`, no printf), nothing that can
/// fault itself (the relative order of two faults is observable), and
/// no jumps.
fn sinkable(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Const { .. }
            | Instr::Mov { .. }
            | Instr::StoreMasked { .. }
            | Instr::BoolOf { .. }
            | Instr::Not { .. }
            | Instr::Neg { .. }
            | Instr::BitNot { .. }
            | Instr::Bin { .. }
            | Instr::BinImm { .. }
            | Instr::Cmp { .. }
            | Instr::CmpImm { .. }
            | Instr::MaskW { .. }
            | Instr::Hash { .. }
            | Instr::LoadSelf { .. }
            | Instr::LoadTime { .. }
            | Instr::LoadPort { .. }
    )
}

/// Sink each `ArrCheck` as far down its straight-line segment as safety
/// allows, so the fusion pass finds it adjacent to the array op it
/// guards. Stops at jump targets (a path joining there never ran the
/// check), at writes to the index register, and at anything
/// non-[`sinkable`].
fn sink_checks(code: &mut [Instr]) -> bool {
    let targets = jump_targets(code);
    let mut changed = false;
    let mut pc = 0;
    while pc < code.len() {
        let Instr::ArrCheck { gid: _, idx } = code[pc] else {
            pc += 1;
            continue;
        };
        let mut stop = pc + 1;
        while stop < code.len()
            && !targets[stop]
            && sinkable(&code[stop])
            && def(&code[stop]) != Some(idx)
        {
            stop += 1;
        }
        if stop > pc + 1 {
            code[pc..stop].rotate_left(1);
            changed = true;
        }
        pc = stop.max(pc + 1);
    }
    changed
}

/// Is this the (unfused) array op that `ArrCheck { gid, idx }` guards?
fn is_array_op_on(i: &Instr, gid: u32, idx: u16) -> bool {
    match i {
        Instr::ArrGet { gid: g, idx: x, .. }
        | Instr::ArrSet { gid: g, idx: x, .. }
        | Instr::ArrGetm { gid: g, idx: x, .. }
        | Instr::ArrSetm { gid: g, idx: x, .. }
        | Instr::ArrUpdate { gid: g, idx: x, .. } => *g == gid && *x == idx,
        _ => false,
    }
}

// ---------------------------------------------------------------- fusion

/// Commutative integer ops (safe to swap a const left operand to the
/// immediate slot — `Bin`'s result width is the wider operand's, which
/// is symmetric for these).
fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
    )
}

/// Mirror a comparison across its operands (`imm < x` ⇔ `x > imm`).
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Fuse adjacent instruction pairs into superinstructions. A pair fuses
/// only when the second instruction is not a jump target (a joining
/// path must see both halves execute) and any intermediate register is
/// dead downstream.
fn fuse(code: &mut Vec<Instr>, nregs: usize) -> bool {
    let live = live_in(code, nregs);
    let targets = jump_targets(code);
    let mut keep = vec![true; code.len()];
    let mut changed = false;
    let mut pc = 0;
    while pc + 1 < code.len() {
        if !keep[pc] || targets[pc + 1] {
            pc += 1;
            continue;
        }
        let fused: Option<Instr> = match (&code[pc], &code[pc + 1]) {
            // Hash-then-index: the sketch/table hot path.
            (Instr::Hash { dst, w, args }, Instr::ArrCheck { gid, idx }) if idx == dst => {
                Some(Instr::HashChk {
                    dst: *dst,
                    w: *w,
                    args: args.clone(),
                    gid: *gid,
                })
            }
            // Bounds check + the array op it guards.
            (Instr::ArrCheck { gid, idx }, op) if is_array_op_on(op, *gid, *idx) => match op {
                Instr::ArrGet { dst, gid, idx } => Some(Instr::ChkGet {
                    dst: *dst,
                    gid: *gid,
                    idx: *idx,
                }),
                Instr::ArrSet { gid, idx, val } => Some(Instr::ChkSet {
                    gid: *gid,
                    idx: *idx,
                    val: *val,
                }),
                Instr::ArrGetm {
                    dst,
                    gid,
                    idx,
                    memop,
                    local,
                } => Some(Instr::ChkGetm {
                    dst: *dst,
                    gid: *gid,
                    idx: *idx,
                    memop: *memop,
                    local: *local,
                }),
                Instr::ArrSetm {
                    gid,
                    idx,
                    memop,
                    local,
                } => Some(Instr::ChkSetm {
                    gid: *gid,
                    idx: *idx,
                    memop: *memop,
                    local: *local,
                }),
                Instr::ArrUpdate {
                    dst,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                } => Some(Instr::ChkUpdate {
                    dst: *dst,
                    gid: *gid,
                    idx: *idx,
                    getop: *getop,
                    getarg: *getarg,
                    setop: *setop,
                    setarg: *setarg,
                }),
                _ => None,
            },
            // Const-operand arithmetic and comparison. The const's value
            // dies at the consumer (overwritten by it, or dead after).
            (Instr::Const { dst: c, imm, w }, Instr::Bin { op, dst, a, b }) => {
                let dead = dst == c || !live_after(code, &live, pc + 1, *c);
                if dead && b == c && a != c {
                    Some(Instr::BinImm {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        imm: *imm,
                        w: *w,
                    })
                } else if dead && a == c && b != c && commutative(*op) {
                    Some(Instr::BinImm {
                        op: *op,
                        dst: *dst,
                        a: *b,
                        imm: *imm,
                        w: *w,
                    })
                } else {
                    None
                }
            }
            (Instr::Const { dst: c, imm, .. }, Instr::Cmp { op, dst, a, b }) => {
                let dead = dst == c || !live_after(code, &live, pc + 1, *c);
                if dead && b == c && a != c {
                    Some(Instr::CmpImm {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        imm: *imm,
                    })
                } else if dead && a == c && b != c {
                    Some(Instr::CmpImm {
                        op: flip(*op),
                        dst: *dst,
                        a: *b,
                        imm: *imm,
                    })
                } else {
                    None
                }
            }
            // Compare-and-branch.
            (Instr::Cmp { op, dst, a, b }, Instr::Jz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::JCmp {
                    op: *op,
                    a: *a,
                    b: *b,
                    when: false,
                    to: *to,
                })
            }
            (Instr::Cmp { op, dst, a, b }, Instr::Jnz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::JCmp {
                    op: *op,
                    a: *a,
                    b: *b,
                    when: true,
                    to: *to,
                })
            }
            (Instr::CmpImm { op, dst, a, imm }, Instr::Jz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::JCmpImm {
                    op: *op,
                    a: *a,
                    imm: *imm,
                    when: false,
                    to: *to,
                })
            }
            (Instr::CmpImm { op, dst, a, imm }, Instr::Jnz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::JCmpImm {
                    op: *op,
                    a: *a,
                    imm: *imm,
                    when: true,
                    to: *to,
                })
            }
            // Boolean normalization feeding a branch tests the raw
            // value just as well; logical not flips the branch sense.
            (Instr::BoolOf { dst, src }, Instr::Jz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::Jz {
                    cond: *src,
                    to: *to,
                })
            }
            (Instr::BoolOf { dst, src }, Instr::Jnz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::Jnz {
                    cond: *src,
                    to: *to,
                })
            }
            (Instr::Not { dst, src }, Instr::Jz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::Jnz {
                    cond: *src,
                    to: *to,
                })
            }
            (Instr::Not { dst, src }, Instr::Jnz { cond, to })
                if cond == dst && !live_after(code, &live, pc + 1, *dst) =>
            {
                Some(Instr::Jz {
                    cond: *src,
                    to: *to,
                })
            }
            _ => None,
        };
        if let Some(f) = fused {
            keep[pc] = false;
            code[pc + 1] = f;
            changed = true;
        }
        pc += 1;
    }
    if changed {
        *code = compact(code, &keep);
    }
    changed
}

// --------------------------------------------------- register allocation

/// Linear-scan register allocation over whole-span intervals (first to
/// last static occurrence per register — sound because jumps only go
/// forward, so no dynamic path runs an earlier pc after a later one).
/// Repacks the frame smallest-free-first, coalesces `Mov`s whose source
/// dies exactly where the destination is born, and never grows the
/// frame: every new register reuses an old slot or extends below the
/// old high-water mark.
pub(super) fn regalloc(h: &mut HandlerCode) {
    let n = h.nregs;
    if n == 0 {
        return;
    }
    let nparams = h.binds.len();
    let decoded = h.instrs();
    let code = &decoded;
    let mut start = vec![usize::MAX; n];
    let mut end = vec![0usize; n];
    for (pc, i) in code.iter().enumerate() {
        let mut touch = |r: u16| {
            let r = r as usize;
            start[r] = start[r].min(pc);
            end[r] = end[r].max(pc);
        };
        uses(i, &mut touch);
        if let Some(d) = def(i) {
            touch(d);
        }
    }
    // Parameters are defined at entry (dispatch fills `r0..rk` before
    // the first instruction) and must keep their indices.
    for s in start.iter_mut().take(nparams) {
        *s = 0;
    }

    // Old-register expiry events, bucketed by last-occurrence pc.
    let mut by_end: Vec<Vec<u16>> = vec![Vec::new(); code.len() + 1];
    for r in 0..n {
        if start[r] != usize::MAX {
            by_end[end[r]].push(r as u16);
        }
    }

    let mut map = vec![u16::MAX; n];
    let mut busy_until: Vec<usize> = Vec::new();
    let mut free: Vec<u16> = Vec::new();
    let alloc_new = |free: &mut Vec<u16>, busy_until: &mut Vec<usize>, until: usize| -> u16 {
        // Smallest free slot first keeps the assignment deterministic
        // and the frame dense.
        if let Some(pos) = free
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| **r)
            .map(|(i, _)| i)
        {
            let r = free.swap_remove(pos);
            busy_until[r as usize] = until;
            r
        } else {
            busy_until.push(until);
            (busy_until.len() - 1) as u16
        }
    };
    for p in 0..nparams {
        map[p] = alloc_new(&mut free, &mut busy_until, end[p]);
        debug_assert_eq!(map[p] as usize, p);
    }

    let mut keep = vec![true; code.len()];
    for pc in 0..code.len() {
        // Release slots whose owner's interval ended before this pc
        // (skipping slots a coalesce extended past that owner's end).
        if pc > 0 {
            for &r in &by_end[pc - 1] {
                let newr = map[r as usize];
                if newr != u16::MAX && busy_until[newr as usize] == end[r as usize] {
                    free.push(newr);
                    // A coalesced pair shares one slot and one expiry
                    // pc; the sentinel stops the second event from
                    // freeing the slot twice.
                    busy_until[newr as usize] = usize::MAX;
                }
            }
        }
        // Coalesce: the source dies here and the destination is born
        // here, so they can share a slot and the move disappears.
        if let Instr::Mov { dst, src } = code[pc] {
            let (d, s) = (dst as usize, src as usize);
            if d >= nparams
                && start[d] == pc
                && end[s] == pc
                && map[s] != u16::MAX
                && map[d] == u16::MAX
            {
                map[d] = map[s];
                let slot = map[s] as usize;
                busy_until[slot] = busy_until[slot].max(end[d]);
                keep[pc] = false;
                continue;
            }
        }
        let mut assign = |r: u16| {
            let r = r as usize;
            if map[r] == u16::MAX {
                map[r] = alloc_new(&mut free, &mut busy_until, end[r]);
            }
        };
        uses(&code[pc], &mut assign);
        if let Some(d) = def(&code[pc]) {
            assign(d);
        }
    }

    let new_count = busy_until.len();
    assert!(
        new_count <= n,
        "regalloc grew the frame: {n} -> {new_count}"
    );
    let mut code = compact(&decoded, &keep);
    for i in &mut code {
        rewrite_regs(i, &map);
    }
    // Elision proofs name index registers; rename them with the code
    // (a proof for a register the code no longer touches is inert).
    for e in &mut h.elisions {
        let m = map[e.idx as usize];
        if m != u16::MAX {
            e.idx = m;
        }
    }
    h.set_instrs(&code);
    h.nregs = new_count;
}
