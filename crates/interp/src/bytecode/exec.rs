//! The flat dispatch loop. Mirrors the AST walker's `exec_block` bit
//! for bit at every [`OptLevel`](super::OptLevel): the fused
//! superinstructions compute exactly what their unfused expansions
//! would, including fault order and fault payloads.
//!
//! Dispatch runs directly on the packed [`Word`] stream: one load per
//! instruction, a dense match on the opcode byte, and operand fields
//! extracted by shifts. No [`Instr`](super::Instr) enum is materialized
//! here — wide immediates and variadic operand lists resolve through
//! the handler's [`SideTables`].

use super::word::{op, SideTables, Word, BIN_OPS, CMP_OPS, WIDE};
use super::{CompiledProg, HandlerCode, Obj, Rv};
use crate::machine::{format_printf, Exec, InterpError, InterpFault, Key, OutRec, Shard};
use crate::value::{lucid_hash, EventVal, Location, Value};
use lucid_check::{eval_memop, mask};
use lucid_frontend::ast::BinOp;

/// One arithmetic/bitwise/shift op, exactly as the walker's
/// `eval_binop` computes it: result width is the wider operand's,
/// shifts keep the shifted operand's width, and a shift count at or
/// past that width yields 0.
#[inline]
fn bin_eval(op: BinOp, a: u64, wa: u32, b: u64, wb: u32) -> Rv {
    let w = match op {
        BinOp::Shl | BinOp::Shr => wa,
        _ => wa.max(wb),
    };
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division by zero yields zero in the data plane.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        other => unreachable!("comparison {other:?} executed as Bin"),
    };
    Rv { v: mask(v, w), w }
}

/// One comparison, on values only (widths do not participate, exactly
/// as in the walker).
#[inline]
fn cmp_eval(op: BinOp, a: u64, b: u64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Neq => a != b,
        BinOp::Lt => a < b,
        BinOp::Gt => a > b,
        BinOp::Le => a <= b,
        BinOp::Ge => a >= b,
        other => unreachable!("{other:?} executed as Cmp"),
    }
}

impl CompiledProg {
    /// Run one handler activation on its shard. Mirrors the AST walker's
    /// `exec_block` bit for bit; the caller (dispatch) has already
    /// recorded trace and statistics.
    pub(crate) fn run_handler(
        &self,
        h: &HandlerCode,
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
        args: &[u64],
    ) -> Result<(), InterpError> {
        // Reuse the shard's scratch buffers across events.
        let mut regs = std::mem::take(&mut shard.bc_regs);
        let mut objs = std::mem::take(&mut shard.bc_objs);
        regs.clear();
        regs.resize(h.nregs, Rv::default());
        objs.clear();
        objs.resize(h.nobjs, Obj::None);
        for (i, (bind, raw)) in h.binds.iter().zip(args).enumerate() {
            regs[i] = match bind {
                super::ParamBind::Int(w) => Rv { v: *raw, w: *w },
                super::ParamBind::Bool => Rv {
                    v: (*raw != 0) as u64,
                    w: 1,
                },
            };
        }
        let res = self.exec_loop(
            &h.code, &h.tables, &mut regs, &mut objs, exec, shard, switch, key,
        );
        shard.bc_regs = regs;
        shard.bc_objs = objs;
        res
    }

    /// The walker's fault for an out-of-bounds index, verbatim.
    fn oob(&self, gid: u32, idx: u64) -> InterpError {
        let m = &self.arrays[gid as usize];
        InterpFault::IndexOutOfBounds {
            array: m.name.clone(),
            index: idx,
            len: m.len,
        }
        .into()
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &self,
        code: &[Word],
        tables: &SideTables,
        regs: &mut [Rv],
        objs: &mut [Obj],
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
    ) -> Result<(), InterpError> {
        let wide = tables.wide.as_slice();
        let ext = tables.ext.as_slice();
        // Resolve a (field, D-byte) immediate pair: the wide flag routes
        // the field through the wide pool, otherwise the field is the
        // value. The verifier has already proven the index in range.
        let imm = |field: u16, d: u8| -> u64 {
            if d & WIDE != 0 {
                wide[field as usize]
            } else {
                field as u64
            }
        };
        let mut pc = 0usize;
        loop {
            let w = code[pc];
            let (a, b, c, d) = (w.a(), w.b(), w.c(), w.d());
            match w.op() {
                op::HALT => return Ok(()),
                op::CONST => {
                    regs[a as usize] = Rv {
                        v: imm(b, d),
                        w: (d & 0x7F) as u32,
                    };
                }
                op::MOV => {
                    regs[a as usize] = regs[b as usize];
                }
                op::STORE_MASKED => {
                    let w = regs[a as usize].w;
                    regs[a as usize] = Rv {
                        v: mask(regs[b as usize].v, w),
                        w,
                    };
                }
                op::BOOL_OF => {
                    regs[a as usize] = Rv {
                        v: (regs[b as usize].v != 0) as u64,
                        w: 1,
                    };
                }
                op::NOT => {
                    regs[a as usize] = Rv {
                        v: (regs[b as usize].v == 0) as u64,
                        w: 1,
                    };
                }
                op::NEG => {
                    let Rv { v, w } = regs[b as usize];
                    regs[a as usize] = Rv {
                        v: mask(v.wrapping_neg(), w),
                        w,
                    };
                }
                op::BIT_NOT => {
                    let Rv { v, w } = regs[b as usize];
                    regs[a as usize] = Rv { v: mask(!v, w), w };
                }
                op::MASKW => {
                    regs[a as usize] = Rv {
                        v: mask(regs[b as usize].v, d as u32),
                        w: d as u32,
                    };
                }
                op::HASH => {
                    let span = &ext[b as usize..b as usize + c as usize];
                    let seed = regs[span[0] as usize].v;
                    // Reuse the shard's buffer: no per-hash allocation.
                    shard.bc_hash.clear();
                    shard
                        .bc_hash
                        .extend(span[1..].iter().map(|&r| regs[r as usize].v));
                    regs[a as usize] = Rv {
                        v: lucid_hash(d as u32, seed, &shard.bc_hash),
                        w: d as u32,
                    };
                }
                op::HASH_CHK => {
                    let span = &ext[(b as usize)..=(b as usize + c as usize)];
                    let gid = span[0];
                    let seed = regs[span[1] as usize].v;
                    shard.bc_hash.clear();
                    shard
                        .bc_hash
                        .extend(span[2..].iter().map(|&r| regs[r as usize].v));
                    let v = lucid_hash(d as u32, seed, &shard.bc_hash);
                    regs[a as usize] = Rv { v, w: d as u32 };
                    if v >= self.arrays[gid as usize].len {
                        return Err(self.oob(gid, v));
                    }
                }
                op::JMP => {
                    pc = c as usize;
                    continue;
                }
                op::JZ => {
                    if regs[a as usize].v == 0 {
                        pc = c as usize;
                        continue;
                    }
                }
                op::JNZ => {
                    if regs[a as usize].v != 0 {
                        pc = c as usize;
                        continue;
                    }
                }
                op::ARR_CHECK => {
                    let idx = regs[b as usize].v;
                    if idx >= self.arrays[a as usize].len {
                        return Err(self.oob(a as u32, idx));
                    }
                }
                op::ARR_GET => {
                    let i = regs[c as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[b as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[b as usize].width;
                    // The walker masks on read (`Value::int(cur, w)`);
                    // cells can legally hold over-width values because
                    // `Array.setm` stores memop results unmasked.
                    regs[a as usize] = Rv {
                        v: mask(shard.state.arrays[b as usize][i], w),
                        w,
                    };
                }
                op::CHK_GET => {
                    let i = regs[c as usize].v;
                    if i >= self.arrays[b as usize].len {
                        return Err(self.oob(b as u32, i));
                    }
                    let w = self.arrays[b as usize].width;
                    regs[a as usize] = Rv {
                        v: mask(shard.state.arrays[b as usize][i as usize], w),
                        w,
                    };
                }
                op::ARR_SET => {
                    let i = regs[b as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[a as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[a as usize].width;
                    shard.state.arrays[a as usize][i] = mask(regs[c as usize].v, w);
                }
                op::CHK_SET => {
                    let i = regs[b as usize].v;
                    if i >= self.arrays[a as usize].len {
                        return Err(self.oob(a as u32, i));
                    }
                    let w = self.arrays[a as usize].width;
                    shard.state.arrays[a as usize][i as usize] = mask(regs[c as usize].v, w);
                }
                op::ARR_GETM => {
                    let s = &ext[b as usize..b as usize + 4];
                    let (gid, idx, memop, local) = (s[0] as usize, s[1], s[2], s[3]);
                    let i = regs[idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[gid].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[gid].width;
                    let cur = shard.state.arrays[gid][i];
                    let local = regs[local as usize].v;
                    regs[a as usize] = Rv {
                        v: mask(eval_memop(&self.memops[memop as usize], cur, local, w), w),
                        w,
                    };
                }
                op::CHK_GETM => {
                    let s = &ext[b as usize..b as usize + 4];
                    let (gid, idx, memop, local) = (s[0], s[1], s[2], s[3]);
                    let i = regs[idx as usize].v;
                    if i >= self.arrays[gid as usize].len {
                        return Err(self.oob(gid, i));
                    }
                    let w = self.arrays[gid as usize].width;
                    let cur = shard.state.arrays[gid as usize][i as usize];
                    let local = regs[local as usize].v;
                    regs[a as usize] = Rv {
                        v: mask(eval_memop(&self.memops[memop as usize], cur, local, w), w),
                        w,
                    };
                }
                op::ARR_SETM => {
                    let s = &ext[a as usize..a as usize + 4];
                    let (gid, idx, memop, local) = (s[0] as usize, s[1], s[2], s[3]);
                    let i = regs[idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[gid].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[gid].width;
                    let cur = shard.state.arrays[gid][i];
                    let local = regs[local as usize].v;
                    shard.state.arrays[gid][i] =
                        eval_memop(&self.memops[memop as usize], cur, local, w);
                }
                op::CHK_SETM => {
                    let s = &ext[a as usize..a as usize + 4];
                    let (gid, idx, memop, local) = (s[0], s[1], s[2], s[3]);
                    let i = regs[idx as usize].v;
                    if i >= self.arrays[gid as usize].len {
                        return Err(self.oob(gid, i));
                    }
                    let w = self.arrays[gid as usize].width;
                    let cur = shard.state.arrays[gid as usize][i as usize];
                    let local = regs[local as usize].v;
                    shard.state.arrays[gid as usize][i as usize] =
                        eval_memop(&self.memops[memop as usize], cur, local, w);
                }
                op::ARR_UPDATE => {
                    let s = &ext[b as usize..b as usize + 6];
                    let (gid, idx) = (s[0] as usize, s[1]);
                    let (getop, getarg, setop, setarg) = (s[2], s[3], s[4], s[5]);
                    let i = regs[idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[gid].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[gid].width;
                    let cur = shard.state.arrays[gid][i];
                    let ret = eval_memop(
                        &self.memops[getop as usize],
                        cur,
                        regs[getarg as usize].v,
                        w,
                    );
                    shard.state.arrays[gid][i] = eval_memop(
                        &self.memops[setop as usize],
                        cur,
                        regs[setarg as usize].v,
                        w,
                    );
                    regs[a as usize] = Rv { v: mask(ret, w), w };
                }
                op::CHK_UPDATE => {
                    let s = &ext[b as usize..b as usize + 6];
                    let (gid, idx) = (s[0], s[1]);
                    let (getop, getarg, setop, setarg) = (s[2], s[3], s[4], s[5]);
                    let i = regs[idx as usize].v;
                    if i >= self.arrays[gid as usize].len {
                        return Err(self.oob(gid, i));
                    }
                    let i = i as usize;
                    let w = self.arrays[gid as usize].width;
                    let cur = shard.state.arrays[gid as usize][i];
                    let ret = eval_memop(
                        &self.memops[getop as usize],
                        cur,
                        regs[getarg as usize].v,
                        w,
                    );
                    shard.state.arrays[gid as usize][i] = eval_memop(
                        &self.memops[setop as usize],
                        cur,
                        regs[setarg as usize].v,
                        w,
                    );
                    regs[a as usize] = Rv { v: mask(ret, w), w };
                }
                op::MK_EVENT => {
                    let meta = &self.events[b as usize];
                    let span = &ext[c as usize..c as usize + d as usize];
                    // Argument buffers come from the shard arena: an
                    // event that never reaches the trace (dropped,
                    // multicast fan-out source) returns its buffer there.
                    let mut vals = shard.take_args();
                    vals.extend(
                        span.iter()
                            .zip(meta.widths.iter())
                            .map(|(&r, w)| mask(regs[r as usize].v, *w)),
                    );
                    objs[a as usize] = Obj::Ev(EventVal {
                        event_id: b as usize,
                        name: meta.name.clone(),
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    });
                }
                op::OBJ_COPY => {
                    objs[a as usize] = objs[b as usize].clone();
                }
                op::LOAD_GROUP => {
                    objs[a as usize] = Obj::Group(self.groups[b as usize].1.clone());
                }
                op::EV_DELAY => {
                    let d_us = regs[b as usize].v;
                    if let Obj::Ev(ev) = &mut objs[a as usize] {
                        ev.delay_ns += d_us * 1_000;
                    }
                }
                op::EV_LOCATE => {
                    let loc = regs[b as usize].v;
                    if let Obj::Ev(ev) = &mut objs[a as usize] {
                        ev.location = Location::Switch(loc);
                    }
                }
                op::EV_MLOCATE => {
                    let members = match &objs[b as usize] {
                        Obj::Group(g) => g.clone(),
                        other => panic!("checked: group operand holds {other:?}"),
                    };
                    if let Obj::Ev(ev) = &mut objs[a as usize] {
                        ev.location = Location::Group(members);
                    }
                }
                op::GENERATE => {
                    let Obj::Ev(ev) = std::mem::take(&mut objs[a as usize]) else {
                        panic!("checked: generate of non-event")
                    };
                    exec.emit(shard, ev);
                }
                op::LOAD_SELF => {
                    regs[a as usize] = Rv { v: switch, w: 32 };
                }
                op::LOAD_TIME => {
                    regs[a as usize] = Rv {
                        v: mask(shard.now_ns / 1_000, 32),
                        w: 32,
                    };
                }
                op::LOAD_PORT => {
                    regs[a as usize] = Rv { v: 0, w: 32 };
                }
                op::PRINTF => {
                    let span = &ext[b as usize..b as usize + c as usize];
                    let vals: Vec<Value> = span
                        .iter()
                        .map(|&e| {
                            let r = regs[(e as u16) as usize];
                            if e >> 16 != 0 {
                                Value::Bool(r.v != 0)
                            } else {
                                Value::Int { v: r.v, width: r.w }
                            }
                        })
                        .collect();
                    // Defer formatting to the run's merge point: record
                    // the interned format id plus the evaluated values.
                    // Echo must hit stdout now, so it formats eagerly
                    // and records the already-built line.
                    if exec.echo {
                        let line = format_printf(&self.fmts[a as usize], &vals);
                        println!("[{} @{}ns] {}", switch, shard.now_ns, line);
                        shard.output.push((key, OutRec::Line(line)));
                    } else {
                        shard.output.push((key, OutRec::Fmt { fmt: a, vals }));
                    }
                }
                opb @ op::BIN..=op::BIN_LAST => {
                    let Rv { v: x, w: wx } = regs[b as usize];
                    let Rv { v: y, w: wy } = regs[c as usize];
                    regs[a as usize] = bin_eval(BIN_OPS[(opb - op::BIN) as usize], x, wx, y, wy);
                }
                opb @ op::BIN_IMM..=op::BIN_IMM_LAST => {
                    let Rv { v: x, w: wx } = regs[b as usize];
                    regs[a as usize] = bin_eval(
                        BIN_OPS[(opb - op::BIN_IMM) as usize],
                        x,
                        wx,
                        imm(c, d),
                        (d & 0x7F) as u32,
                    );
                }
                opb @ op::CMP..=op::CMP_LAST => {
                    let v = cmp_eval(
                        CMP_OPS[(opb - op::CMP) as usize],
                        regs[b as usize].v,
                        regs[c as usize].v,
                    );
                    regs[a as usize] = Rv { v: v as u64, w: 1 };
                }
                opb @ op::CMP_IMM..=op::CMP_IMM_LAST => {
                    let v = cmp_eval(
                        CMP_OPS[(opb - op::CMP_IMM) as usize],
                        regs[b as usize].v,
                        imm(c, d),
                    );
                    regs[a as usize] = Rv { v: v as u64, w: 1 };
                }
                opb @ op::JCMP..=op::JCMP_LAST => {
                    if cmp_eval(
                        CMP_OPS[(opb - op::JCMP) as usize],
                        regs[a as usize].v,
                        regs[b as usize].v,
                    ) == (d & 1 != 0)
                    {
                        pc = c as usize;
                        continue;
                    }
                }
                opb @ op::JCMP_IMM..=op::JCMP_IMM_LAST => {
                    if cmp_eval(
                        CMP_OPS[(opb - op::JCMP_IMM) as usize],
                        regs[a as usize].v,
                        imm(b, d),
                    ) == (d & 1 != 0)
                    {
                        pc = c as usize;
                        continue;
                    }
                }
                opb => unreachable!("verifier admitted opcode {opb:#04x}"),
            }
            pc += 1;
        }
    }
}
