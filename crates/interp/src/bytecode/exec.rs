//! The flat dispatch loop. Mirrors the AST walker's `exec_block` bit
//! for bit at every [`OptLevel`](super::OptLevel): the fused
//! superinstructions compute exactly what their unfused expansions
//! would, including fault order and fault payloads.

use super::{CompiledProg, HandlerCode, Instr, Obj, Rv};
use crate::machine::{format_printf, Exec, InterpError, InterpFault, Key, Shard};
use crate::value::{lucid_hash, EventVal, Location, Value};
use lucid_check::{eval_memop, mask};
use lucid_frontend::ast::BinOp;

/// One arithmetic/bitwise/shift op, exactly as the walker's
/// `eval_binop` computes it: result width is the wider operand's,
/// shifts keep the shifted operand's width, and a shift count at or
/// past that width yields 0.
#[inline]
fn bin_eval(op: BinOp, a: u64, wa: u32, b: u64, wb: u32) -> Rv {
    let w = match op {
        BinOp::Shl | BinOp::Shr => wa,
        _ => wa.max(wb),
    };
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division by zero yields zero in the data plane.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= w as u64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        other => unreachable!("comparison {other:?} executed as Bin"),
    };
    Rv { v: mask(v, w), w }
}

/// One comparison, on values only (widths do not participate, exactly
/// as in the walker).
#[inline]
fn cmp_eval(op: BinOp, a: u64, b: u64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Neq => a != b,
        BinOp::Lt => a < b,
        BinOp::Gt => a > b,
        BinOp::Le => a <= b,
        BinOp::Ge => a >= b,
        other => unreachable!("{other:?} executed as Cmp"),
    }
}

impl CompiledProg {
    /// Run one handler activation on its shard. Mirrors the AST walker's
    /// `exec_block` bit for bit; the caller (dispatch) has already
    /// recorded trace and statistics.
    pub(crate) fn run_handler(
        &self,
        h: &HandlerCode,
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
        args: &[u64],
    ) -> Result<(), InterpError> {
        // Reuse the shard's scratch buffers across events.
        let mut regs = std::mem::take(&mut shard.bc_regs);
        let mut objs = std::mem::take(&mut shard.bc_objs);
        regs.clear();
        regs.resize(h.nregs, Rv::default());
        objs.clear();
        objs.resize(h.nobjs, Obj::None);
        for (i, (bind, raw)) in h.binds.iter().zip(args).enumerate() {
            regs[i] = match bind {
                super::ParamBind::Int(w) => Rv { v: *raw, w: *w },
                super::ParamBind::Bool => Rv {
                    v: (*raw != 0) as u64,
                    w: 1,
                },
            };
        }
        let res = self.exec_loop(&h.code, &mut regs, &mut objs, exec, shard, switch, key);
        shard.bc_regs = regs;
        shard.bc_objs = objs;
        res
    }

    /// The walker's fault for an out-of-bounds index, verbatim.
    fn oob(&self, gid: u32, idx: u64) -> InterpError {
        let m = &self.arrays[gid as usize];
        InterpFault::IndexOutOfBounds {
            array: m.name.clone(),
            index: idx,
            len: m.len,
        }
        .into()
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &self,
        code: &[Instr],
        regs: &mut [Rv],
        objs: &mut [Obj],
        exec: &Exec,
        shard: &mut Shard,
        switch: u64,
        key: Key,
    ) -> Result<(), InterpError> {
        let mut pc = 0usize;
        loop {
            match &code[pc] {
                Instr::Const { dst, imm, w } => {
                    regs[*dst as usize] = Rv { v: *imm, w: *w };
                }
                Instr::Mov { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize];
                }
                Instr::StoreMasked { dst, src } => {
                    let w = regs[*dst as usize].w;
                    regs[*dst as usize] = Rv {
                        v: mask(regs[*src as usize].v, w),
                        w,
                    };
                }
                Instr::BoolOf { dst, src } => {
                    regs[*dst as usize] = Rv {
                        v: (regs[*src as usize].v != 0) as u64,
                        w: 1,
                    };
                }
                Instr::Not { dst, src } => {
                    regs[*dst as usize] = Rv {
                        v: (regs[*src as usize].v == 0) as u64,
                        w: 1,
                    };
                }
                Instr::Neg { dst, src } => {
                    let Rv { v, w } = regs[*src as usize];
                    regs[*dst as usize] = Rv {
                        v: mask(v.wrapping_neg(), w),
                        w,
                    };
                }
                Instr::BitNot { dst, src } => {
                    let Rv { v, w } = regs[*src as usize];
                    regs[*dst as usize] = Rv { v: mask(!v, w), w };
                }
                Instr::Bin { op, dst, a, b } => {
                    let Rv { v: a, w: wa } = regs[*a as usize];
                    let Rv { v: b, w: wb } = regs[*b as usize];
                    regs[*dst as usize] = bin_eval(*op, a, wa, b, wb);
                }
                Instr::BinImm { op, dst, a, imm, w } => {
                    let Rv { v: a, w: wa } = regs[*a as usize];
                    regs[*dst as usize] = bin_eval(*op, a, wa, *imm, *w);
                }
                Instr::Cmp { op, dst, a, b } => {
                    let v = cmp_eval(*op, regs[*a as usize].v, regs[*b as usize].v);
                    regs[*dst as usize] = Rv { v: v as u64, w: 1 };
                }
                Instr::CmpImm { op, dst, a, imm } => {
                    let v = cmp_eval(*op, regs[*a as usize].v, *imm);
                    regs[*dst as usize] = Rv { v: v as u64, w: 1 };
                }
                Instr::MaskW { dst, src, w } => {
                    regs[*dst as usize] = Rv {
                        v: mask(regs[*src as usize].v, *w),
                        w: *w,
                    };
                }
                Instr::Hash { dst, w, args } => {
                    let seed = regs[args[0] as usize].v;
                    // Reuse the shard's buffer: no per-hash allocation.
                    shard.bc_hash.clear();
                    shard
                        .bc_hash
                        .extend(args[1..].iter().map(|r| regs[*r as usize].v));
                    regs[*dst as usize] = Rv {
                        v: lucid_hash(*w, seed, &shard.bc_hash),
                        w: *w,
                    };
                }
                Instr::HashChk { dst, w, args, gid } => {
                    let seed = regs[args[0] as usize].v;
                    shard.bc_hash.clear();
                    shard
                        .bc_hash
                        .extend(args[1..].iter().map(|r| regs[*r as usize].v));
                    let v = lucid_hash(*w, seed, &shard.bc_hash);
                    regs[*dst as usize] = Rv { v, w: *w };
                    if v >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, v));
                    }
                }
                Instr::Jmp { to } => {
                    pc = *to as usize;
                    continue;
                }
                Instr::Jz { cond, to } => {
                    if regs[*cond as usize].v == 0 {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::Jnz { cond, to } => {
                    if regs[*cond as usize].v != 0 {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::JCmp { op, a, b, when, to } => {
                    if cmp_eval(*op, regs[*a as usize].v, regs[*b as usize].v) == *when {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::JCmpImm {
                    op,
                    a,
                    imm,
                    when,
                    to,
                } => {
                    if cmp_eval(*op, regs[*a as usize].v, *imm) == *when {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::ArrCheck { gid, idx } => {
                    let idx = regs[*idx as usize].v;
                    if idx >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, idx));
                    }
                }
                Instr::ArrGet { dst, gid, idx } => {
                    let i = regs[*idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[*gid as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[*gid as usize].width;
                    // The walker masks on read (`Value::int(cur, w)`);
                    // cells can legally hold over-width values because
                    // `Array.setm` stores memop results unmasked.
                    regs[*dst as usize] = Rv {
                        v: mask(shard.state.arrays[*gid as usize][i], w),
                        w,
                    };
                }
                Instr::ChkGet { dst, gid, idx } => {
                    let i = regs[*idx as usize].v;
                    if i >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, i));
                    }
                    let w = self.arrays[*gid as usize].width;
                    regs[*dst as usize] = Rv {
                        v: mask(shard.state.arrays[*gid as usize][i as usize], w),
                        w,
                    };
                }
                Instr::ArrSet { gid, idx, val } => {
                    let i = regs[*idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[*gid as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[*gid as usize].width;
                    shard.state.arrays[*gid as usize][i] = mask(regs[*val as usize].v, w);
                }
                Instr::ChkSet { gid, idx, val } => {
                    let i = regs[*idx as usize].v;
                    if i >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, i));
                    }
                    let w = self.arrays[*gid as usize].width;
                    shard.state.arrays[*gid as usize][i as usize] = mask(regs[*val as usize].v, w);
                }
                Instr::ArrGetm {
                    dst,
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let i = regs[*idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[*gid as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i];
                    let local = regs[*local as usize].v;
                    regs[*dst as usize] = Rv {
                        v: mask(eval_memop(&self.memops[*memop as usize], cur, local, w), w),
                        w,
                    };
                }
                Instr::ChkGetm {
                    dst,
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let i = regs[*idx as usize].v;
                    if i >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, i));
                    }
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i as usize];
                    let local = regs[*local as usize].v;
                    regs[*dst as usize] = Rv {
                        v: mask(eval_memop(&self.memops[*memop as usize], cur, local, w), w),
                        w,
                    };
                }
                Instr::ArrSetm {
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let i = regs[*idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[*gid as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i];
                    let local = regs[*local as usize].v;
                    shard.state.arrays[*gid as usize][i] =
                        eval_memop(&self.memops[*memop as usize], cur, local, w);
                }
                Instr::ChkSetm {
                    gid,
                    idx,
                    memop,
                    local,
                } => {
                    let i = regs[*idx as usize].v;
                    if i >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, i));
                    }
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i as usize];
                    let local = regs[*local as usize].v;
                    shard.state.arrays[*gid as usize][i as usize] =
                        eval_memop(&self.memops[*memop as usize], cur, local, w);
                }
                Instr::ArrUpdate {
                    dst,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                } => {
                    let i = regs[*idx as usize].v as usize;
                    debug_assert!(
                        (i as u64) < self.arrays[*gid as usize].len,
                        "verifier invariant broken: unchecked array access out of bounds"
                    );
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i];
                    let ret = eval_memop(
                        &self.memops[*getop as usize],
                        cur,
                        regs[*getarg as usize].v,
                        w,
                    );
                    shard.state.arrays[*gid as usize][i] = eval_memop(
                        &self.memops[*setop as usize],
                        cur,
                        regs[*setarg as usize].v,
                        w,
                    );
                    regs[*dst as usize] = Rv { v: mask(ret, w), w };
                }
                Instr::ChkUpdate {
                    dst,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                } => {
                    let i = regs[*idx as usize].v;
                    if i >= self.arrays[*gid as usize].len {
                        return Err(self.oob(*gid, i));
                    }
                    let i = i as usize;
                    let w = self.arrays[*gid as usize].width;
                    let cur = shard.state.arrays[*gid as usize][i];
                    let ret = eval_memop(
                        &self.memops[*getop as usize],
                        cur,
                        regs[*getarg as usize].v,
                        w,
                    );
                    shard.state.arrays[*gid as usize][i] = eval_memop(
                        &self.memops[*setop as usize],
                        cur,
                        regs[*setarg as usize].v,
                        w,
                    );
                    regs[*dst as usize] = Rv { v: mask(ret, w), w };
                }
                Instr::MkEvent {
                    dst,
                    event_id,
                    args,
                } => {
                    let meta = &self.events[*event_id as usize];
                    let vals: Vec<u64> = args
                        .iter()
                        .zip(meta.widths.iter())
                        .map(|(r, w)| mask(regs[*r as usize].v, *w))
                        .collect();
                    objs[*dst as usize] = Obj::Ev(EventVal {
                        event_id: *event_id as usize,
                        name: meta.name.clone(),
                        args: vals,
                        delay_ns: 0,
                        location: Location::Here,
                    });
                }
                Instr::ObjCopy { dst, src } => {
                    objs[*dst as usize] = objs[*src as usize].clone();
                }
                Instr::LoadGroup { dst, group } => {
                    objs[*dst as usize] = Obj::Group(self.groups[*group as usize].1.clone());
                }
                Instr::EvDelay { obj, us } => {
                    let d_us = regs[*us as usize].v;
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.delay_ns += d_us * 1_000;
                    }
                }
                Instr::EvLocate { obj, loc } => {
                    let loc = regs[*loc as usize].v;
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.location = Location::Switch(loc);
                    }
                }
                Instr::EvMLocate { obj, group } => {
                    let members = match &objs[*group as usize] {
                        Obj::Group(g) => g.clone(),
                        other => panic!("checked: group operand holds {other:?}"),
                    };
                    if let Obj::Ev(ev) = &mut objs[*obj as usize] {
                        ev.location = Location::Group(members);
                    }
                }
                Instr::Generate { obj } => {
                    let Obj::Ev(ev) = std::mem::take(&mut objs[*obj as usize]) else {
                        panic!("checked: generate of non-event")
                    };
                    exec.emit(shard, ev);
                }
                Instr::LoadSelf { dst } => {
                    regs[*dst as usize] = Rv { v: switch, w: 32 };
                }
                Instr::LoadTime { dst } => {
                    regs[*dst as usize] = Rv {
                        v: mask(shard.now_ns / 1_000, 32),
                        w: 32,
                    };
                }
                Instr::LoadPort { dst } => {
                    regs[*dst as usize] = Rv { v: 0, w: 32 };
                }
                Instr::Printf { fmt, args } => {
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|p| {
                            let r = regs[p.reg as usize];
                            if p.is_bool {
                                Value::Bool(r.v != 0)
                            } else {
                                Value::Int { v: r.v, width: r.w }
                            }
                        })
                        .collect();
                    let line = format_printf(&self.fmts[*fmt as usize], &vals);
                    if exec.echo {
                        println!("[{} @{}ns] {}", switch, shard.now_ns, line);
                    }
                    shard.output.push((key, line));
                }
                Instr::Halt => return Ok(()),
            }
            pc += 1;
        }
    }
}
