//! The packed fixed-width instruction word.
//!
//! Every bytecode instruction is stored as one 64-bit [`Word`]:
//!
//! ```text
//!  bits  0..8    opcode         (dense, 0..=79; see [`op`])
//!  bits  8..24   field A  (u16) first operand, usually a register
//!  bits 24..40   field B  (u16) second operand / inline immediate
//!  bits 40..56   field C  (u16) third operand / jump target
//!  bits 56..64   field D  (u8)  width (low 7 bits) + wide flag (bit 7),
//!                               or a boolean flag for branch variants
//! ```
//!
//! Two per-handler side tables hold what a word cannot:
//!
//! * the **wide pool** (`Vec<u64>`) for immediates above `0xFFFF` — the
//!   word stores a pool index in the immediate field and sets the wide
//!   flag (D bit 7). Canonical form is strict both ways: an immediate
//!   that fits 16 bits must be inline, and a wide-pool entry must not
//!   fit 16 bits, so every decoded instruction re-encodes to the same
//!   bits.
//! * the **ext pool** (`Vec<u32>`) for variable-length operand lists
//!   (hash/event/printf argument registers) and for the fixed operand
//!   overflow of the memop instructions, which carry more than three
//!   16-bit operands. A word references a contiguous `[base, base+len)`
//!   span.
//!
//! Arithmetic and comparison operators are folded into the opcode
//! (`op::BIN + bin_index(op)` etc.), which keeps the whole ISA dense in
//! `0..80` so the executor's dispatch is a single match on one byte.
//!
//! [`encode`] asserts only *capacity* invariants (field and pool sizes
//! the lowering pipeline guarantees). Everything semantic — widths,
//! frames, jump targets, pool indexes — is deliberately left to the
//! verifier so corrupted-but-decodable words still get their precise
//! `V0xxx` code. [`decode`] is total: any malformed word yields a
//! structured [`DecodeError`] (surfaced by the verifier as `V0011`),
//! never a panic.

use super::{Instr, PrintArg};
use lucid_frontend::ast::BinOp;
use std::fmt;

/// One packed instruction word. See the module docs for the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(pub u64);

impl Word {
    pub(super) fn new(op: u8, a: u16, b: u16, c: u16, d: u8) -> Word {
        Word(
            (op as u64)
                | ((a as u64) << 8)
                | ((b as u64) << 24)
                | ((c as u64) << 40)
                | ((d as u64) << 56),
        )
    }

    #[inline(always)]
    pub(super) fn op(self) -> u8 {
        self.0 as u8
    }

    #[inline(always)]
    pub(super) fn a(self) -> u16 {
        (self.0 >> 8) as u16
    }

    #[inline(always)]
    pub(super) fn b(self) -> u16 {
        (self.0 >> 24) as u16
    }

    #[inline(always)]
    pub(super) fn c(self) -> u16 {
        (self.0 >> 40) as u16
    }

    #[inline(always)]
    pub(super) fn d(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// Overwrite field C (the jump-target field) in place — what the
    /// lowering pass's forward-jump patching writes through.
    pub(super) fn set_c(&mut self, c: u16) {
        self.0 = (self.0 & !(0xFFFFu64 << 40)) | ((c as u64) << 40);
    }
}

/// D-byte bit 7: the immediate field holds a wide-pool index.
pub(super) const WIDE: u8 = 0x80;

/// The dense opcode space. Fixed-arity instructions get one opcode;
/// operator-parameterized families get a contiguous range (base +
/// operator index), so the byte alone names the full operation.
pub(super) mod op {
    pub const HALT: u8 = 0;
    pub const CONST: u8 = 1;
    pub const MOV: u8 = 2;
    pub const STORE_MASKED: u8 = 3;
    pub const BOOL_OF: u8 = 4;
    pub const NOT: u8 = 5;
    pub const NEG: u8 = 6;
    pub const BIT_NOT: u8 = 7;
    pub const MASKW: u8 = 8;
    pub const HASH: u8 = 9;
    pub const HASH_CHK: u8 = 10;
    pub const JMP: u8 = 11;
    pub const JZ: u8 = 12;
    pub const JNZ: u8 = 13;
    pub const ARR_CHECK: u8 = 14;
    pub const ARR_GET: u8 = 15;
    pub const ARR_SET: u8 = 16;
    pub const ARR_GETM: u8 = 17;
    pub const ARR_SETM: u8 = 18;
    pub const ARR_UPDATE: u8 = 19;
    pub const CHK_GET: u8 = 20;
    pub const CHK_SET: u8 = 21;
    pub const CHK_GETM: u8 = 22;
    pub const CHK_SETM: u8 = 23;
    pub const CHK_UPDATE: u8 = 24;
    pub const MK_EVENT: u8 = 25;
    pub const OBJ_COPY: u8 = 26;
    pub const LOAD_GROUP: u8 = 27;
    pub const EV_DELAY: u8 = 28;
    pub const EV_LOCATE: u8 = 29;
    pub const EV_MLOCATE: u8 = 30;
    pub const GENERATE: u8 = 31;
    pub const LOAD_SELF: u8 = 32;
    pub const LOAD_TIME: u8 = 33;
    pub const LOAD_PORT: u8 = 34;
    pub const PRINTF: u8 = 35;
    /// `BIN + bin_index(op)` — ten arithmetic/bitwise/shift operators.
    pub const BIN: u8 = 36;
    /// `BIN_IMM + bin_index(op)`.
    pub const BIN_IMM: u8 = 46;
    /// `CMP + cmp_index(op)` — six comparison operators.
    pub const CMP: u8 = 56;
    /// `CMP_IMM + cmp_index(op)`.
    pub const CMP_IMM: u8 = 62;
    /// `JCMP + cmp_index(op)`.
    pub const JCMP: u8 = 68;
    /// `JCMP_IMM + cmp_index(op)`.
    pub const JCMP_IMM: u8 = 74;
    /// First invalid opcode — everything in `LIMIT..` decodes to
    /// [`DecodeError::BadOpcode`](super::DecodeError::BadOpcode).
    pub const LIMIT: u8 = 80;

    // Inclusive range ends, so dispatch sites can write stable
    // `BIN..=BIN_LAST` patterns (which compile to a dense jump table).
    pub const BIN_LAST: u8 = BIN + 9;
    pub const BIN_IMM_LAST: u8 = BIN_IMM + 9;
    pub const CMP_LAST: u8 = CMP + 5;
    pub const CMP_IMM_LAST: u8 = CMP_IMM + 5;
    pub const JCMP_LAST: u8 = JCMP + 5;
    pub const JCMP_IMM_LAST: u8 = JCMP_IMM + 5;
}

// The operator ranges tile the dense opcode space exactly.
const _: () = assert!(op::JCMP_IMM_LAST + 1 == op::LIMIT);

/// Arithmetic operators in opcode-range order (`op::BIN + index`).
pub(super) const BIN_OPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
];

/// Comparison operators in opcode-range order (`op::CMP + index`).
pub(super) const CMP_OPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Neq,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

pub(super) fn bin_index(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::BitAnd => 5,
        BinOp::BitOr => 6,
        BinOp::BitXor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        _ => unreachable!("comparison operator in an arithmetic opcode"),
    }
}

pub(super) fn cmp_index(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => 0,
        BinOp::Neq => 1,
        BinOp::Lt => 2,
        BinOp::Le => 3,
        BinOp::Gt => 4,
        BinOp::Ge => 5,
        _ => unreachable!("arithmetic operator in a comparison opcode"),
    }
}

/// The per-handler side tables the packed words index into.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideTables {
    /// Immediates above `0xFFFF` (wide-flagged words hold an index).
    pub wide: Vec<u64>,
    /// Variable-length and overflow operands, as `[base, base+len)`
    /// spans of `u32` entries.
    pub ext: Vec<u32>,
}

impl SideTables {
    /// Intern one wide immediate (deduplicated; the pool stays tiny).
    fn wide_id(&mut self, v: u64) -> u16 {
        debug_assert!(v > u16::MAX as u64, "wide pool is for >16-bit immediates");
        let i = match self.wide.iter().position(|&x| x == v) {
            Some(i) => i,
            None => {
                self.wide.push(v);
                self.wide.len() - 1
            }
        };
        u16::try_from(i).expect("wide pool exceeds 65536 entries")
    }

    /// Append one ext-pool span, returning its base.
    fn ext_span(&mut self, entries: impl IntoIterator<Item = u32>) -> u16 {
        let base = self.ext.len();
        self.ext.extend(entries);
        u16::try_from(base).expect("ext pool exceeds 65536 entries")
    }
}

/// Why a word failed to decode. Structural only — a decodable word with
/// a bad width or frame index decodes fine and is caught by the
/// verifier's own `V0001`–`V0010` rules instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Opcode byte outside the dense `0..80` space.
    BadOpcode(u8),
    /// A field this opcode does not use holds nonzero bits.
    JunkBits { field: &'static str },
    /// Wide flag set but the index is outside the wide pool.
    WideIndex { idx: u16, len: usize },
    /// Wide-pool entry fits 16 bits — canonical form requires it inline.
    NonCanonicalWide { value: u64 },
    /// Ext-pool span `[base, base+len)` runs past the pool.
    ExtRange { base: u16, len: usize, pool: usize },
    /// Ext-pool entry has bits outside its operand's range.
    ExtJunk { entry: u32 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "opcode {b:#04x} outside the ISA"),
            DecodeError::JunkBits { field } => {
                write!(f, "unused field {field} holds nonzero bits")
            }
            DecodeError::WideIndex { idx, len } => {
                write!(f, "wide-pool index {idx} out of range (pool has {len})")
            }
            DecodeError::NonCanonicalWide { value } => write!(
                f,
                "wide-pool entry {value:#x} fits 16 bits — canonical form is inline"
            ),
            DecodeError::ExtRange { base, len, pool } => write!(
                f,
                "ext-pool span [{base}, {base}+{len}) runs past the pool (len {pool})"
            ),
            DecodeError::ExtJunk { entry } => {
                write!(f, "ext-pool entry {entry:#x} has bits outside its operand")
            }
        }
    }
}

/// Split an immediate into `(immediate field, wide flag)`.
fn imm_field(imm: u64, t: &mut SideTables) -> (u16, u8) {
    if imm <= u16::MAX as u64 {
        (imm as u16, 0)
    } else {
        (t.wide_id(imm), WIDE)
    }
}

/// Resolve an immediate field against the wide pool, enforcing the
/// canonical-form rule both ways.
fn imm_of(field: u16, wide: bool, t: &SideTables) -> Result<u64, DecodeError> {
    if !wide {
        return Ok(field as u64);
    }
    let v = *t.wide.get(field as usize).ok_or(DecodeError::WideIndex {
        idx: field,
        len: t.wide.len(),
    })?;
    if v <= u16::MAX as u64 {
        return Err(DecodeError::NonCanonicalWide { value: v });
    }
    Ok(v)
}

fn reg16(v: u32) -> u16 {
    debug_assert!(v <= u16::MAX as u32);
    v as u16
}

/// Fetch an ext-pool span whose entries are plain 16-bit operands.
fn ext_regs(t: &SideTables, base: u16, len: usize) -> Result<&[u32], DecodeError> {
    let span = t
        .ext
        .get(base as usize..base as usize + len)
        .ok_or(DecodeError::ExtRange {
            base,
            len,
            pool: t.ext.len(),
        })?;
    for &e in span {
        if e > u16::MAX as u32 {
            return Err(DecodeError::ExtJunk { entry: e });
        }
    }
    Ok(span)
}

/// Narrow a pool id the encoder packs into a 16-bit field. The pools
/// are dense per-program interning tables, so the bound is structural,
/// not a practical limit.
fn pool16(v: u32, what: &str) -> u16 {
    u16::try_from(v).unwrap_or_else(|_| panic!("{what} id {v} exceeds the 16-bit operand field"))
}

/// Narrow a jump target into the 16-bit C field. Handler spans are
/// bounded at encode time ([`encode_all`] asserts the span length stays
/// below `0xFFFF`), so a real target always fits; `0xFFFF` is the
/// lowering pass's unpatched placeholder.
fn target16(to: u32) -> u16 {
    u16::try_from(to).expect("jump target exceeds the 16-bit field")
}

/// Encode one instruction into a packed word, interning overflow
/// operands into the side tables.
pub(super) fn encode(i: &Instr, t: &mut SideTables) -> Word {
    match i {
        Instr::Halt => Word::new(op::HALT, 0, 0, 0, 0),
        Instr::Const { dst, imm, w } => {
            let (b, wide) = imm_field(*imm, t);
            Word::new(op::CONST, *dst, b, 0, (*w as u8) | wide)
        }
        Instr::Mov { dst, src } => Word::new(op::MOV, *dst, *src, 0, 0),
        Instr::StoreMasked { dst, src } => Word::new(op::STORE_MASKED, *dst, *src, 0, 0),
        Instr::BoolOf { dst, src } => Word::new(op::BOOL_OF, *dst, *src, 0, 0),
        Instr::Not { dst, src } => Word::new(op::NOT, *dst, *src, 0, 0),
        Instr::Neg { dst, src } => Word::new(op::NEG, *dst, *src, 0, 0),
        Instr::BitNot { dst, src } => Word::new(op::BIT_NOT, *dst, *src, 0, 0),
        Instr::MaskW { dst, src, w } => Word::new(op::MASKW, *dst, *src, 0, *w as u8),
        Instr::Bin { op, dst, a, b } => Word::new(op::BIN + bin_index(*op), *dst, *a, *b, 0),
        Instr::BinImm { op, dst, a, imm, w } => {
            let (c, wide) = imm_field(*imm, t);
            Word::new(op::BIN_IMM + bin_index(*op), *dst, *a, c, (*w as u8) | wide)
        }
        Instr::Cmp { op, dst, a, b } => Word::new(op::CMP + cmp_index(*op), *dst, *a, *b, 0),
        Instr::CmpImm { op, dst, a, imm } => {
            let (c, wide) = imm_field(*imm, t);
            Word::new(op::CMP_IMM + cmp_index(*op), *dst, *a, c, wide)
        }
        Instr::Jmp { to } => Word::new(op::JMP, 0, 0, target16(*to), 0),
        Instr::Jz { cond, to } => Word::new(op::JZ, *cond, 0, target16(*to), 0),
        Instr::Jnz { cond, to } => Word::new(op::JNZ, *cond, 0, target16(*to), 0),
        Instr::JCmp { op, a, b, when, to } => Word::new(
            op::JCMP + cmp_index(*op),
            *a,
            *b,
            target16(*to),
            *when as u8,
        ),
        Instr::JCmpImm {
            op,
            a,
            imm,
            when,
            to,
        } => {
            let (b, wide) = imm_field(*imm, t);
            Word::new(
                op::JCMP_IMM + cmp_index(*op),
                *a,
                b,
                target16(*to),
                (*when as u8) | wide,
            )
        }
        Instr::Hash { dst, w, args } => {
            let base = t.ext_span(args.iter().map(|&r| r as u32));
            let n = u16::try_from(args.len()).expect("hash arity fits u16");
            Word::new(op::HASH, *dst, base, n, *w as u8)
        }
        Instr::HashChk { dst, w, args, gid } => {
            let base = t.ext_span(
                std::iter::once(pool16(*gid, "array") as u32).chain(args.iter().map(|&r| r as u32)),
            );
            let n = u16::try_from(args.len()).expect("hash arity fits u16");
            Word::new(op::HASH_CHK, *dst, base, n, *w as u8)
        }
        Instr::ArrCheck { gid, idx } => Word::new(op::ARR_CHECK, pool16(*gid, "array"), *idx, 0, 0),
        Instr::ArrGet { dst, gid, idx } => {
            Word::new(op::ARR_GET, *dst, pool16(*gid, "array"), *idx, 0)
        }
        Instr::ArrSet { gid, idx, val } => {
            Word::new(op::ARR_SET, pool16(*gid, "array"), *idx, *val, 0)
        }
        Instr::ChkGet { dst, gid, idx } => {
            Word::new(op::CHK_GET, *dst, pool16(*gid, "array"), *idx, 0)
        }
        Instr::ChkSet { gid, idx, val } => {
            Word::new(op::CHK_SET, pool16(*gid, "array"), *idx, *val, 0)
        }
        Instr::ArrGetm {
            dst,
            gid,
            idx,
            memop,
            local,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *memop as u32,
                *local as u32,
            ]);
            Word::new(op::ARR_GETM, *dst, base, 0, 0)
        }
        Instr::ChkGetm {
            dst,
            gid,
            idx,
            memop,
            local,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *memop as u32,
                *local as u32,
            ]);
            Word::new(op::CHK_GETM, *dst, base, 0, 0)
        }
        Instr::ArrSetm {
            gid,
            idx,
            memop,
            local,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *memop as u32,
                *local as u32,
            ]);
            Word::new(op::ARR_SETM, base, 0, 0, 0)
        }
        Instr::ChkSetm {
            gid,
            idx,
            memop,
            local,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *memop as u32,
                *local as u32,
            ]);
            Word::new(op::CHK_SETM, base, 0, 0, 0)
        }
        Instr::ArrUpdate {
            dst,
            gid,
            idx,
            getop,
            getarg,
            setop,
            setarg,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *getop as u32,
                *getarg as u32,
                *setop as u32,
                *setarg as u32,
            ]);
            Word::new(op::ARR_UPDATE, *dst, base, 0, 0)
        }
        Instr::ChkUpdate {
            dst,
            gid,
            idx,
            getop,
            getarg,
            setop,
            setarg,
        } => {
            let base = t.ext_span([
                pool16(*gid, "array") as u32,
                *idx as u32,
                *getop as u32,
                *getarg as u32,
                *setop as u32,
                *setarg as u32,
            ]);
            Word::new(op::CHK_UPDATE, *dst, base, 0, 0)
        }
        Instr::MkEvent {
            dst,
            event_id,
            args,
        } => {
            let base = t.ext_span(args.iter().map(|&r| r as u32));
            let n = u8::try_from(args.len()).expect("event arity fits u8");
            Word::new(op::MK_EVENT, *dst, pool16(*event_id, "event"), base, n)
        }
        Instr::ObjCopy { dst, src } => Word::new(op::OBJ_COPY, *dst, *src, 0, 0),
        Instr::LoadGroup { dst, group } => Word::new(op::LOAD_GROUP, *dst, *group, 0, 0),
        Instr::EvDelay { obj, us } => Word::new(op::EV_DELAY, *obj, *us, 0, 0),
        Instr::EvLocate { obj, loc } => Word::new(op::EV_LOCATE, *obj, *loc, 0, 0),
        Instr::EvMLocate { obj, group } => Word::new(op::EV_MLOCATE, *obj, *group, 0, 0),
        Instr::Generate { obj } => Word::new(op::GENERATE, *obj, 0, 0, 0),
        Instr::LoadSelf { dst } => Word::new(op::LOAD_SELF, *dst, 0, 0, 0),
        Instr::LoadTime { dst } => Word::new(op::LOAD_TIME, *dst, 0, 0, 0),
        Instr::LoadPort { dst } => Word::new(op::LOAD_PORT, *dst, 0, 0, 0),
        Instr::Printf { fmt, args } => {
            let base = t.ext_span(
                args.iter()
                    .map(|a| (a.reg as u32) | ((a.is_bool as u32) << 16)),
            );
            let n = u16::try_from(args.len()).expect("printf arity fits u16");
            Word::new(op::PRINTF, *fmt, base, n, 0)
        }
    }
}

/// Encode a whole instruction sequence into fresh side tables.
pub(super) fn encode_all(code: &[Instr]) -> (Vec<Word>, SideTables) {
    assert!(
        code.len() < 0xFFFF,
        "handler span of {} exceeds the 16-bit jump-target space",
        code.len()
    );
    let mut t = SideTables::default();
    let words = code.iter().map(|i| encode(i, &mut t)).collect();
    (words, t)
}

/// Decode one packed word against its side tables. Total: every 64-bit
/// pattern either decodes or names a structured [`DecodeError`].
pub(super) fn decode(w: Word, t: &SideTables) -> Result<Instr, DecodeError> {
    let (a, b, c, d) = (w.a(), w.b(), w.c(), w.d());
    // One shared guard for fields an opcode leaves unused: the strict
    // canonical form means a bit flip in dead space is still detected.
    let zero = |v: u64, field: &'static str| {
        if v != 0 {
            Err(DecodeError::JunkBits { field })
        } else {
            Ok(())
        }
    };
    let opb = w.op();
    Ok(match opb {
        op::HALT => {
            zero(w.0 >> 8, "A/B/C/D")?;
            Instr::Halt
        }
        op::CONST => {
            zero(c as u64, "C")?;
            Instr::Const {
                dst: a,
                imm: imm_of(b, d & WIDE != 0, t)?,
                w: (d & 0x7F) as u32,
            }
        }
        op::MOV => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::Mov { dst: a, src: b }
        }
        op::STORE_MASKED => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::StoreMasked { dst: a, src: b }
        }
        op::BOOL_OF => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::BoolOf { dst: a, src: b }
        }
        op::NOT => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::Not { dst: a, src: b }
        }
        op::NEG => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::Neg { dst: a, src: b }
        }
        op::BIT_NOT => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::BitNot { dst: a, src: b }
        }
        op::MASKW => {
            zero(c as u64, "C")?;
            zero((d & WIDE) as u64, "D wide flag")?;
            Instr::MaskW {
                dst: a,
                src: b,
                w: d as u32,
            }
        }
        op::HASH => Instr::Hash {
            dst: a,
            w: d as u32,
            args: ext_regs(t, b, c as usize)?
                .iter()
                .map(|&e| reg16(e))
                .collect(),
        },
        op::HASH_CHK => {
            let span = ext_regs(t, b, c as usize + 1)?;
            Instr::HashChk {
                dst: a,
                w: d as u32,
                gid: span[0],
                args: span[1..].iter().map(|&e| reg16(e)).collect(),
            }
        }
        op::JMP => {
            zero(a as u64 | b as u64 | d as u64, "A/B/D")?;
            Instr::Jmp { to: c as u32 }
        }
        op::JZ => {
            zero(b as u64 | d as u64, "B/D")?;
            Instr::Jz {
                cond: a,
                to: c as u32,
            }
        }
        op::JNZ => {
            zero(b as u64 | d as u64, "B/D")?;
            Instr::Jnz {
                cond: a,
                to: c as u32,
            }
        }
        op::ARR_CHECK => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::ArrCheck {
                gid: a as u32,
                idx: b,
            }
        }
        op::ARR_GET => {
            zero(d as u64, "D")?;
            Instr::ArrGet {
                dst: a,
                gid: b as u32,
                idx: c,
            }
        }
        op::ARR_SET => {
            zero(d as u64, "D")?;
            Instr::ArrSet {
                gid: a as u32,
                idx: b,
                val: c,
            }
        }
        op::CHK_GET => {
            zero(d as u64, "D")?;
            Instr::ChkGet {
                dst: a,
                gid: b as u32,
                idx: c,
            }
        }
        op::CHK_SET => {
            zero(d as u64, "D")?;
            Instr::ChkSet {
                gid: a as u32,
                idx: b,
                val: c,
            }
        }
        op::ARR_GETM | op::CHK_GETM => {
            zero(c as u64 | d as u64, "C/D")?;
            let s = ext_regs(t, b, 4)?;
            let (gid, idx, memop, local) = (s[0], reg16(s[1]), reg16(s[2]), reg16(s[3]));
            if opb == op::ARR_GETM {
                Instr::ArrGetm {
                    dst: a,
                    gid,
                    idx,
                    memop,
                    local,
                }
            } else {
                Instr::ChkGetm {
                    dst: a,
                    gid,
                    idx,
                    memop,
                    local,
                }
            }
        }
        op::ARR_SETM | op::CHK_SETM => {
            zero(b as u64 | c as u64 | d as u64, "B/C/D")?;
            let s = ext_regs(t, a, 4)?;
            let (gid, idx, memop, local) = (s[0], reg16(s[1]), reg16(s[2]), reg16(s[3]));
            if opb == op::ARR_SETM {
                Instr::ArrSetm {
                    gid,
                    idx,
                    memop,
                    local,
                }
            } else {
                Instr::ChkSetm {
                    gid,
                    idx,
                    memop,
                    local,
                }
            }
        }
        op::ARR_UPDATE | op::CHK_UPDATE => {
            zero(c as u64 | d as u64, "C/D")?;
            let s = ext_regs(t, b, 6)?;
            let (gid, idx) = (s[0], reg16(s[1]));
            let (getop, getarg) = (reg16(s[2]), reg16(s[3]));
            let (setop, setarg) = (reg16(s[4]), reg16(s[5]));
            if opb == op::ARR_UPDATE {
                Instr::ArrUpdate {
                    dst: a,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                }
            } else {
                Instr::ChkUpdate {
                    dst: a,
                    gid,
                    idx,
                    getop,
                    getarg,
                    setop,
                    setarg,
                }
            }
        }
        op::MK_EVENT => Instr::MkEvent {
            dst: a,
            event_id: b as u32,
            args: ext_regs(t, c, d as usize)?
                .iter()
                .map(|&e| reg16(e))
                .collect(),
        },
        op::OBJ_COPY => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::ObjCopy { dst: a, src: b }
        }
        op::LOAD_GROUP => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::LoadGroup { dst: a, group: b }
        }
        op::EV_DELAY => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::EvDelay { obj: a, us: b }
        }
        op::EV_LOCATE => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::EvLocate { obj: a, loc: b }
        }
        op::EV_MLOCATE => {
            zero(c as u64 | d as u64, "C/D")?;
            Instr::EvMLocate { obj: a, group: b }
        }
        op::GENERATE => {
            zero(b as u64 | c as u64 | d as u64, "B/C/D")?;
            Instr::Generate { obj: a }
        }
        op::LOAD_SELF => {
            zero(b as u64 | c as u64 | d as u64, "B/C/D")?;
            Instr::LoadSelf { dst: a }
        }
        op::LOAD_TIME => {
            zero(b as u64 | c as u64 | d as u64, "B/C/D")?;
            Instr::LoadTime { dst: a }
        }
        op::LOAD_PORT => {
            zero(b as u64 | c as u64 | d as u64, "B/C/D")?;
            Instr::LoadPort { dst: a }
        }
        op::PRINTF => {
            zero(d as u64, "D")?;
            let span =
                t.ext
                    .get(b as usize..b as usize + c as usize)
                    .ok_or(DecodeError::ExtRange {
                        base: b,
                        len: c as usize,
                        pool: t.ext.len(),
                    })?;
            let mut args = Vec::with_capacity(span.len());
            for &e in span {
                if e >> 17 != 0 {
                    return Err(DecodeError::ExtJunk { entry: e });
                }
                args.push(PrintArg {
                    reg: e as u16,
                    is_bool: e >> 16 != 0,
                });
            }
            Instr::Printf {
                fmt: a,
                args: args.into(),
            }
        }
        op::BIN..=op::BIN_LAST => {
            zero(d as u64, "D")?;
            Instr::Bin {
                op: BIN_OPS[(opb - op::BIN) as usize],
                dst: a,
                a: b,
                b: c,
            }
        }
        op::BIN_IMM..=op::BIN_IMM_LAST => Instr::BinImm {
            op: BIN_OPS[(opb - op::BIN_IMM) as usize],
            dst: a,
            a: b,
            imm: imm_of(c, d & WIDE != 0, t)?,
            w: (d & 0x7F) as u32,
        },
        op::CMP..=op::CMP_LAST => {
            zero(d as u64, "D")?;
            Instr::Cmp {
                op: CMP_OPS[(opb - op::CMP) as usize],
                dst: a,
                a: b,
                b: c,
            }
        }
        op::CMP_IMM..=op::CMP_IMM_LAST => {
            zero((d & !WIDE) as u64, "D flag bits")?;
            Instr::CmpImm {
                op: CMP_OPS[(opb - op::CMP_IMM) as usize],
                dst: a,
                a: b,
                imm: imm_of(c, d & WIDE != 0, t)?,
            }
        }
        op::JCMP..=op::JCMP_LAST => {
            zero((d & !1) as u64, "D flag bits")?;
            Instr::JCmp {
                op: CMP_OPS[(opb - op::JCMP) as usize],
                a,
                b,
                when: d & 1 != 0,
                to: c as u32,
            }
        }
        op::JCMP_IMM..=op::JCMP_IMM_LAST => {
            zero((d & !(1 | WIDE)) as u64, "D flag bits")?;
            Instr::JCmpImm {
                op: CMP_OPS[(opb - op::JCMP_IMM) as usize],
                a,
                imm: imm_of(b, d & WIDE != 0, t)?,
                when: d & 1 != 0,
                to: c as u32,
            }
        }
        _ => return Err(DecodeError::BadOpcode(opb)),
    })
}

/// Decode a whole handler span; the error carries the offending pc.
pub(super) fn decode_all(
    code: &[Word],
    t: &SideTables,
) -> Result<Vec<Instr>, (usize, DecodeError)> {
    code.iter()
        .enumerate()
        .map(|(pc, &w)| decode(w, t).map_err(|e| (pc, e)))
        .collect()
}
