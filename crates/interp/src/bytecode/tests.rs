//! Unit tests for the bytecode pipeline: differential equivalence with
//! the AST walker across the full engine × opt matrix, plus the
//! optimizer-pass properties (peephole idempotence, regalloc frame
//! bounds, fused-op disassembly stability).

use super::*;
use crate::machine::{Engine, Interp, InterpFault, NetConfig};
use lucid_check::parse_and_check;
use proptest::prelude::*;

const LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

fn checked(src: &str) -> CheckedProgram {
    match parse_and_check(src) {
        Ok(p) => p,
        Err(ds) => panic!("check failed:\n{ds}"),
    }
}

/// A program that exercises the whole ISA: functions (with array
/// params and early returns), short-circuit logic, width-mixing
/// literals, casts, hashes, memops, all five array ops, delay /
/// locate / mlocate, exported reports, and printf.
const KITCHEN_SINK: &str = r#"
    const int THRESH = 3;
    const group PEERS = {1, 2};
    global cnt = new Array<<32>>(32);
    global tag = new Array<<8>>(32);
    global log = new Array<<32>>(4);
    memop plus(int m, int x) { return m + x; }
    memop mget(int m, int x) { return m; }
    memop mset(int m, int x) { return x; }
    event pkt(int key, int ttl);
    event report(int val);
    fun int clamp(int v, int hi) {
        if (v > hi) { return hi; }
        return v;
    }
    fun int bump(Array<<32>> arr, int i, int by) {
        return Array.update(arr, i, mget, 0, plus, by);
    }
    handle pkt(int key, int ttl) {
        auto h = hash<<5>>(7, key, ttl);
        int i = (int<<32>>) h;
        int old = bump(cnt, i, 1);
        int<<8>> t = (int<<8>>) (old + 1);
        Array.setm(tag, i, mset, t);
        bool hot = old > THRESH && ttl > 0;
        if (hot || key == 0) {
            printf("hot key=%d old=%x hot=%d", key, old, hot);
            generate Event.delay(report(clamp(old, 9) + 200), 5);
        }
        int x = bump(log, key & 3, 7);
        if (ttl > 0) {
            generate pkt(key + 1, ttl - 1);
            generate Event.locate(pkt(key, ttl - 1), ((key + ttl) & 1) + 1);
            mgenerate Event.mlocate(report(x), PEERS);
        }
    }
"#;

/// A program shaped so that every fused superinstruction appears at O1+
/// (every array is deliberately smaller than the hash range / index
/// domain, so no check can be elided; accesses run in declaration order
/// to satisfy the effect system).
const FUSION_SINK: &str = r#"
    global a = new Array<<32>>(3);
    global b = new Array<<32>>(3);
    global c = new Array<<32>>(3);
    global d = new Array<<32>>(3);
    global e = new Array<<32>>(3);
    memop plus(int m, int x) { return m + x; }
    event go(int i, int v);
    event out(int v);
    handle go(int i, int v) {
        auto h = hash<<2>>(1, v);
        int r = Array.get(a, h);
        Array.set(b, i, v);
        int g = Array.getm(c, i, plus, 1);
        Array.setm(d, i, plus, v);
        int u = Array.update(e, i, plus, 1, plus, 2);
        int y = v + 1;
        if (i < v) { generate out(r + g); }
        if (v > 3) { generate out(u + y); }
    }
"#;

/// Everything observable about a finished run.
type Snapshot = (
    Vec<Vec<Vec<u64>>>,
    crate::machine::Stats,
    Vec<crate::machine::Handled>,
    Vec<String>,
);

fn run_snapshot(
    prog: &CheckedProgram,
    engine: Engine,
    exec: ExecMode,
    opt: OptLevel,
    switches: u64,
    schedule: &[(u64, u64, &str, Vec<u64>)],
) -> Result<Snapshot, crate::machine::InterpError> {
    let mut cfg = NetConfig::mesh(switches);
    cfg.engine = engine;
    cfg.exec = exec;
    cfg.opt = opt;
    let mut sim = Interp::new(prog, cfg);
    for (sw, t, ev, args) in schedule {
        sim.schedule(*sw, *t, ev, args)?;
    }
    sim.run(200_000, u64::MAX)?;
    let arrays = (1..=switches)
        .map(|s| {
            prog.info
                .globals
                .iter()
                .map(|g| sim.array(s, &g.name).to_vec())
                .collect()
        })
        .collect();
    Ok((
        arrays,
        sim.stats.clone(),
        sim.trace.clone(),
        sim.output.clone(),
    ))
}

#[test]
fn kitchen_sink_bytecode_matches_walker_everywhere() {
    let prog = checked(KITCHEN_SINK);
    let mut schedule = Vec::new();
    for s in 1..=2u64 {
        for k in 0..6u64 {
            schedule.push((s, k * 300, "pkt", vec![s * 40 + k, 3]));
        }
    }
    let reference = run_snapshot(
        &prog,
        Engine::Sequential,
        ExecMode::Ast,
        OptLevel::O2,
        2,
        &schedule,
    )
    .unwrap();
    for (engine, elabel) in [
        (Engine::Sequential, "sequential"),
        (
            Engine::Sharded {
                workers: 2,
                epoch_ns: 0,
            },
            "sharded",
        ),
    ] {
        for opt in LEVELS {
            let got = run_snapshot(&prog, engine, ExecMode::Bytecode, opt, 2, &schedule).unwrap();
            let label = format!("{elabel}/bytecode/O{}", opt.label());
            assert_eq!(reference.0, got.0, "{label}: array state");
            assert_eq!(reference.1, got.1, "{label}: stats");
            assert_eq!(reference.2, got.2, "{label}: trace");
            assert_eq!(reference.3, got.3, "{label}: printf output");
        }
    }
    // The workload actually exercised the interesting paths.
    assert!(!reference.3.is_empty(), "printf must fire");
    assert!(reference.1.exported > 0, "reports must export");
    assert!(reference.1.sent_remote > 0, "locate/mlocate must send");
}

#[test]
fn out_of_bounds_is_bit_identical_including_prior_writes() {
    // The fault must hit at the same event, leave identical state
    // behind (writes before the faulting op included), and carry the
    // same location under both executors — at every opt level, since
    // the fused checked ops carry the fault themselves.
    let src = r#"
        global a = new Array<<32>>(4);
        global b = new Array<<32>>(4);
        memop plus(int m, int x) { return m + x; }
        event go(int i);
        handle go(int i) {
            Array.setm(a, 0, plus, 1);
            Array.set(b, i, 7);
        }
    "#;
    let prog = checked(src);
    let mut results = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend(LEVELS.map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        sim.schedule(1, 0, "go", &[1]).unwrap();
        sim.schedule(1, 50, "go", &[9]).unwrap();
        let err = sim.run_to_quiescence().unwrap_err();
        results.push((
            err,
            sim.array(1, "a").to_vec(),
            sim.array(1, "b").to_vec(),
            sim.stats.clone(),
        ));
    }
    for r in &results[1..] {
        assert_eq!(&results[0], r);
    }
    let (err, a, ..) = &results[0];
    assert!(
        matches!(
            &err.kind,
            InterpFault::IndexOutOfBounds {
                index: 9,
                len: 4,
                ..
            }
        ),
        "{err}"
    );
    let at = err.at.as_ref().expect("located");
    assert_eq!((at.time_ns, at.switch, at.event.as_str()), (50, 1, "go"));
    assert_eq!(a[0], 2, "the write before the fault must have landed");
}

#[test]
fn width_mixing_literals_match_walker() {
    // Literals keep their syntactic width at runtime (32 unless
    // annotated); the walker's max-width rule must survive both
    // compilation and const-operand fusion exactly.
    let src = r#"
        global o0 = new Array<<32>>(1);
        global o1 = new Array<<32>>(1);
        global o2 = new Array<<32>>(1);
        global o3 = new Array<<32>>(1);
        event go(int<<8>> x);
        handle go(int<<8>> x) {
            auto wide = x + 250;
            int<<8>> narrow = x;
            narrow = narrow + 250;
            Array.set(o0, 0, (int<<32>>) wide);
            Array.set(o1, 0, (int<<32>>) narrow);
            if (x + 250 > 255) { Array.set(o2, 0, 1); }
            Array.set(o3, 0, (int<<32>>) ((int<<8>>) (x + 250)));
        }
    "#;
    let prog = checked(src);
    let mut outs = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend(LEVELS.map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        sim.schedule(1, 0, "go", &[10]).unwrap();
        sim.run_to_quiescence().unwrap();
        outs.push(
            (0..4)
                .map(|k| sim.array(1, &format!("o{k}"))[0])
                .collect::<Vec<u64>>(),
        );
    }
    for o in &outs[1..] {
        assert_eq!(&outs[0], o);
    }
    // Literals run at width 32 (the walker's `unwrap_or(32)` rule), so
    // `x + 250` is 260 even though the checker typed it int<<8>>; the
    // re-assignment to `narrow` masks back to 8 bits.
    assert_eq!(outs[0], vec![260, 4, 1, 4]);
}

#[test]
fn booleans_print_and_compute_like_the_walker() {
    let src = r#"
        global out = new Array<<32>>(2);
        event go(bool flag, int v);
        handle go(bool flag, int v) {
            bool both = flag && v > 2;
            printf("flag=%d both=%d v=%d", flag, both, v);
            if (!both) { Array.set(out, 0, 1); } else { Array.set(out, 1, 1); }
        }
    "#;
    let prog = checked(src);
    let mut outs = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend(LEVELS.map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        sim.schedule(1, 0, "go", &[1, 7]).unwrap();
        sim.schedule(1, 10, "go", &[0, 1]).unwrap();
        sim.run_to_quiescence().unwrap();
        outs.push((sim.output.clone(), sim.array(1, "out").to_vec()));
    }
    for o in &outs[1..] {
        assert_eq!(&outs[0], o);
    }
    assert_eq!(outs[0].0[0], "flag=true both=true v=7");
    assert_eq!(outs[0].0[1], "flag=false both=false v=1");
}

#[test]
fn disassembly_is_stable_and_complete() {
    let prog = checked(KITCHEN_SINK);
    for level in LEVELS {
        let text = disassemble_opt(&prog, level);
        assert_eq!(
            text,
            disassemble_opt(&prog, level),
            "disassembly must be deterministic at O{}",
            level.label()
        );
        for needle in [
            "handler `pkt`",
            "args: r0=key r1=ttl",
            "halt",
            "generate o",
            "; array g0 `cnt`: 32 x 32-bit",
            "; group G0 `PEERS`: {1, 2}",
            "printf",
            "hash<<5>>",
            &format!("; opt level {}", level.label()),
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Handler-less events compile to no code block.
        assert!(!text.contains("handler `report`"), "{text}");
    }
    // The raw listing keeps explicit checks; the optimized one elides
    // them all here (every index is a hash or a masked value that fits).
    assert!(disassemble_opt(&prog, OptLevel::O0).contains("check "));
    assert!(!disassemble_opt(&prog, OptLevel::O2).contains("check "));
}

#[test]
fn fused_ops_render_and_run_identically() {
    let prog = checked(FUSION_SINK);
    // Every superinstruction appears in the optimized listing...
    let text = disassemble_opt(&prog, OptLevel::O1);
    for needle in [
        ") chk g0",        // HashChk guarding `a`
        "chk g1[r0] = r1", // ChkSet on `b`
        "= chk g2[",       // ChkGetm on `c`
        "chk g3[r0] =",    // ChkSetm on `d`
        "chk update g4",   // ChkUpdate on `e`
        "junless r0 < r1", // JCmp from `i < v`
        "junless r1 > 3",  // JCmpImm from `v > 3` (via CmpImm)
        " + 1 <<32>>",     // BinImm from `v + 1`
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // ...and none survive in the raw lowering.
    let raw = disassemble_opt(&prog, OptLevel::O0);
    for absent in ["chk", "junless", "jif"] {
        assert!(!raw.contains(absent), "unexpected {absent:?} in:\n{raw}");
    }
    // In-bounds and out-of-bounds runs agree with the walker.
    for idx in [0u64, 1, 2, 5] {
        let schedule = vec![(1u64, 0u64, "go", vec![idx, 7])];
        let reference = run_snapshot(
            &prog,
            Engine::Sequential,
            ExecMode::Ast,
            OptLevel::O2,
            1,
            &schedule,
        );
        for opt in LEVELS {
            let got = run_snapshot(
                &prog,
                Engine::Sequential,
                ExecMode::Bytecode,
                opt,
                1,
                &schedule,
            );
            assert_eq!(reference, got, "idx={idx} O{}", opt.label());
        }
    }
}

#[test]
fn peephole_is_idempotent() {
    // Running the peephole pass a second time must change nothing: the
    // pass iterates to an internal fixpoint.
    for src in [KITCHEN_SINK, FUSION_SINK] {
        let prog = checked(src);
        let cp = CompiledProg::compile_opt(&prog, OptLevel::O1);
        for h in cp.handlers.iter().flatten() {
            let mut again = h.clone();
            opt::peephole(&mut again, &cp);
            assert_eq!(h.code, again.code, "{}: peephole not idempotent", h.name);
            assert_eq!(
                h.tables, again.tables,
                "{}: re-encoding the fixpoint moved the side tables",
                h.name
            );
        }
    }
}

#[test]
fn regalloc_never_grows_the_frame_and_shrinks_these() {
    for src in [KITCHEN_SINK, FUSION_SINK] {
        let prog = checked(src);
        let o1 = CompiledProg::compile_opt(&prog, OptLevel::O1);
        let o2 = CompiledProg::compile_opt(&prog, OptLevel::O2);
        for (h1, h2) in o1.handlers().zip(o2.handlers()) {
            assert!(
                h2.nregs <= h1.nregs,
                "{}: regalloc grew the frame {} -> {}",
                h1.name,
                h1.nregs,
                h2.nregs
            );
            assert!(
                h2.code.len() <= h1.code.len(),
                "{}: regalloc grew the code",
                h1.name
            );
        }
    }
    // The kitchen sink has coalescable moves; the pass must actually
    // deliver on at least one handler, not just hold the bound.
    let prog = checked(KITCHEN_SINK);
    let o1 = CompiledProg::compile_opt(&prog, OptLevel::O1);
    let o2 = CompiledProg::compile_opt(&prog, OptLevel::O2);
    let shrunk = o1
        .handlers()
        .zip(o2.handlers())
        .any(|(a, b)| b.nregs < a.nregs || b.code.len() < a.code.len());
    assert!(shrunk, "regalloc had no effect on the kitchen sink");
}

#[test]
fn optimization_strictly_shortens_the_kitchen_sink() {
    let prog = checked(KITCHEN_SINK);
    let count = |level| {
        CompiledProg::compile_opt(&prog, level)
            .handlers()
            .map(|h| h.code.len())
            .sum::<usize>()
    };
    let (o0, o1, o2) = (
        count(OptLevel::O0),
        count(OptLevel::O1),
        count(OptLevel::O2),
    );
    assert!(o1 < o0, "peephole did nothing: {o0} -> {o1}");
    assert!(o2 <= o1, "regalloc grew the code: {o1} -> {o2}");
}

#[test]
fn array_get_masks_over_width_cells_like_the_walker() {
    // `Array.setm` stores memop results unmasked, so a cell can hold
    // an over-width value; the walker masks on *read* and the
    // bytecode executor must too.
    let src = r#"
        global tag = new Array<<8>>(4);
        global out = new Array<<32>>(1);
        memop mset(int m, int x) { return x; }
        event wr(int<<8>> x);
        handle wr(int<<8>> x) { Array.setm(tag, 0, mset, x + 250); }
        event rd();
        handle rd() { Array.set(out, 0, (int<<32>>) Array.get(tag, 0)); }
    "#;
    let prog = checked(src);
    let mut outs = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend(LEVELS.map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        sim.schedule(1, 0, "wr", &[10]).unwrap();
        sim.schedule(1, 100, "rd", &[]).unwrap();
        sim.run_to_quiescence().unwrap();
        outs.push((sim.array(1, "tag").to_vec(), sim.array(1, "out").to_vec()));
    }
    for o in &outs[1..] {
        assert_eq!(&outs[0], o);
    }
    // 10 + 250 runs at width 32 (literal rule) -> the memop stores
    // 260 raw; the read masks it back to 8 bits.
    assert_eq!(outs[0].0[0], 260, "the cell itself holds the raw value");
    assert_eq!(outs[0].1[0], 4, "reads mask to the cell width");
}

#[test]
fn nested_calls_resolve_arrays_through_the_dynamic_stack() {
    // The walker resolves array-position names against the dynamic
    // `array_params` stack spanning *all* live activations: inside
    // `inner`, called from `outer(b, ..)`, the bare name `a` means
    // outer's parameter (bound to global `b`), not the global `a`.
    // The compiler must reproduce that, not lexical scoping.
    let src = r#"
        global a = new Array<<32>>(4);
        global b = new Array<<32>>(4);
        global c = new Array<<32>>(4);
        fun int inner(int i) { return Array.get(a, i); }
        fun int outer(Array<<32>> a, int i) { return inner(i); }
        event go(int i);
        handle go(int i) {
            int v = outer(b, i);
            Array.set(c, 0, v);
        }
    "#;
    let prog = checked(src);
    let mut outs = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend(LEVELS.map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        sim.poke(1, "a", 1, 111);
        sim.poke(1, "b", 1, 222);
        sim.schedule(1, 0, "go", &[1]).unwrap();
        sim.run_to_quiescence().unwrap();
        outs.push(sim.array(1, "c")[0]);
    }
    for o in &outs[1..] {
        assert_eq!(&outs[0], o);
    }
    assert_eq!(outs[0], 222, "`a` inside inner must mean outer's binding");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random schedules, topology sizes, and worker counts over the
    /// kitchen-sink program: every engine x opt combination must agree
    /// with the sequential AST walker on state, stats, trace, and
    /// printf output.
    #[test]
    fn differential_random_schedules(
        switches in 1u64..=4,
        // Lone worker (the barrier-free path), odd/even pools, a prime
        // misaligning the round-robin partition, and an oversized pool.
        wsel in 0usize..6,
        raw in proptest::collection::vec((1u64..=4, 0u64..=5_000, 0u64..=255, 0u64..=4), 1..24)
    ) {
        let workers = [1usize, 2, 3, 4, 7, 8][wsel];
        let prog = checked(KITCHEN_SINK);
        let schedule: Vec<(u64, u64, &str, Vec<u64>)> = raw
            .iter()
            .map(|(sw, t, key, ttl)| {
                ((sw - 1) % switches + 1, *t, "pkt", vec![*key, *ttl])
            })
            .collect();
        let reference =
            run_snapshot(&prog, Engine::Sequential, ExecMode::Ast, OptLevel::O2, switches, &schedule)
                .expect("bounded workload quiesces");
        for engine in [Engine::Sequential, Engine::Sharded { workers, epoch_ns: 0 }] {
            for opt in LEVELS {
                let got = run_snapshot(&prog, engine, ExecMode::Bytecode, opt, switches, &schedule)
                    .expect("deterministic workload");
                prop_assert_eq!(&reference.0, &got.0);
                prop_assert_eq!(&reference.1, &got.1);
                prop_assert_eq!(&reference.2, &got.2);
                prop_assert_eq!(&reference.3, &got.3);
            }
        }
    }

    /// Random *unvalidated* indices: runs that fault must fault
    /// identically (same kind, same location) under both executors at
    /// every opt level, and runs that succeed must match.
    #[test]
    fn differential_faulting_runs(
        idx in proptest::collection::vec(0u64..=6, 1..8)
    ) {
        let src = r#"
            global a = new Array<<32>>(4);
            memop plus(int m, int x) { return m + x; }
            event go(int i);
            handle go(int i) { Array.setm(a, i, plus, 1); }
        "#;
        let prog = checked(src);
        let schedule: Vec<(u64, u64, &str, Vec<u64>)> = idx
            .iter()
            .enumerate()
            .map(|(k, i)| (1u64, k as u64 * 100, "go", vec![*i]))
            .collect();
        let ast = run_snapshot(&prog, Engine::Sequential, ExecMode::Ast, OptLevel::O2, 1, &schedule);
        for opt in LEVELS {
            let bc = run_snapshot(&prog, Engine::Sequential, ExecMode::Bytecode, opt, 1, &schedule);
            prop_assert_eq!(&ast, &bc);
        }
    }
}

// ------------------------------------------------------------- verifier

/// The verifier must bless the compiler's own output at every level —
/// `compile_verified` is the always-on CI spelling of that contract.
#[test]
fn verifier_accepts_the_compilers_own_output() {
    for src in [KITCHEN_SINK, FUSION_SINK] {
        let prog = checked(src);
        for level in LEVELS {
            if let Err(vs) = CompiledProg::compile_verified(&prog, level) {
                panic!("verifier rejected clean O{} output: {vs:?}", level.label());
            }
        }
    }
}

/// Re-verify a mutated program and demand one specific V-code among the
/// violations (a mutation may trip several obligations at once).
fn expect_violation(cp: &CompiledProg, code: &str) {
    let vs = cp.verify();
    assert!(
        vs.iter().any(|v| v.code == code),
        "expected a {code} violation, got: {vs:?}"
    );
    assert!(
        vs.iter().all(|v| v.pass == "final"),
        "re-verification must blame the `final` pass: {vs:?}"
    );
}

fn mutated<F: FnOnce(&mut HandlerCode)>(prog: &CheckedProgram, f: F) -> CompiledProg {
    let mut cp = CompiledProg::compile_opt(prog, OptLevel::O0);
    let h = cp
        .handlers
        .iter_mut()
        .flatten()
        .next()
        .expect("a compiled handler");
    f(h);
    cp
}

/// Decode a handler's packed span, rewrite it as `Instr`s, and
/// re-encode — the mutation tests' bridge from bit-packed words back to
/// pattern-matchable instructions.
fn recode<F: FnOnce(&mut Vec<Instr>)>(h: &mut HandlerCode, f: F) {
    let mut code = h.instrs();
    f(&mut code);
    h.set_instrs(&code);
}

/// Mutation smoke test: each mutation below is one *miscompile class* —
/// a bug an optimizer pass could plausibly introduce — and the verifier
/// must reject it with the V-code documenting the broken invariant.
#[test]
fn verifier_rejects_classic_miscompiles() {
    let prog = checked(KITCHEN_SINK);

    // Class 1: a branch retargeted backwards. The source language has no
    // loops, so any backward edge is a miscompile (and would break the
    // verifier's single-forward-pass completeness argument).
    let cp = mutated(&prog, |h| {
        recode(h, |code| {
            let pc = code
                .iter()
                .position(|i| matches!(i, Instr::Jz { .. } | Instr::Jnz { .. }))
                .expect("a conditional branch");
            match &mut code[pc] {
                Instr::Jz { to, .. } | Instr::Jnz { to, .. } => *to = 0,
                _ => unreachable!(),
            }
        });
    });
    expect_violation(&cp, verify::codes::BAD_JUMP);

    // Class 2: a constant wider than its declared width — the register
    // file would carry an unmaskable value and every downstream masking
    // decision goes wrong.
    let cp = mutated(&prog, |h| {
        recode(h, |code| {
            let pc = code
                .iter()
                .position(|i| matches!(i, Instr::Const { .. }))
                .expect("a constant load");
            match &mut code[pc] {
                Instr::Const { imm, w, .. } => {
                    *imm = 0xff;
                    *w = 1;
                }
                _ => unreachable!(),
            }
        });
    });
    expect_violation(&cp, verify::codes::BAD_WIDTH);

    // Class 3: a dropped bounds check — the exact bug `elide_checks`
    // would have if its upper-bound analysis were unsound. The raw
    // access that follows is no longer dominated by a check and carries
    // no elision proof.
    let cp = mutated(&prog, |h| {
        recode(h, |code| {
            let pc = code
                .iter()
                .position(|i| matches!(i, Instr::ArrCheck { .. }))
                .expect("a bounds check");
            code[pc] = Instr::Mov { dst: 0, src: 0 };
        });
    });
    expect_violation(&cp, verify::codes::UNCHECKED_ACCESS);

    // Class 4: a destination outside the register frame — the regalloc
    // bug class (a rename map entry pointing past the compacted frame).
    let cp = mutated(&prog, |h| {
        let dst = h.nregs as u16;
        recode(h, |code| {
            code[0] = Instr::Const { dst, imm: 0, w: 32 };
        });
    });
    expect_violation(&cp, verify::codes::REG_OUT_OF_FRAME);

    // Class 5: a read of a register no path has written — the
    // use-before-def class (e.g. a pass sinking a def below its use).
    let cp = mutated(&prog, |h| {
        assert!(h.nregs > 2, "kitchen sink frame is large");
        let src = h.nregs as u16 - 1;
        recode(h, |code| {
            code[0] = Instr::Mov { dst: 0, src };
        });
    });
    expect_violation(&cp, verify::codes::UNINIT_REG);

    // Class 6: a truncated handler — fell off the end without `halt`.
    let cp = mutated(&prog, |h| {
        recode(h, |code| {
            assert!(matches!(code.pop(), Some(Instr::Halt)));
        });
    });
    expect_violation(&cp, verify::codes::NO_HALT);
}

// ------------------------------------------------------- packed words

/// Build one valid instruction from raw fuzz material: `sel` picks the
/// variant, the remaining fields fill its operands. Covers every
/// encoding shape (inline + wide immediates, flags, ext-pool spans).
fn raw_instr(sel: u8, a: u16, b: u16, c: u16, imm: u64, flag: bool) -> Instr {
    let w = 1 + (imm % 64) as u32;
    let bin = word::BIN_OPS[(c % 10) as usize];
    let cmp = word::CMP_OPS[(c % 6) as usize];
    let args: Box<[u16]> = (0..=(a % 3)).map(|k| b.wrapping_add(k)).collect();
    match sel % 25 {
        0 => Instr::Const { dst: a, imm, w },
        1 => Instr::Mov { dst: a, src: b },
        2 => Instr::StoreMasked { dst: a, src: b },
        3 => Instr::BoolOf { dst: a, src: b },
        4 => Instr::Not { dst: a, src: b },
        5 => Instr::Neg { dst: a, src: b },
        6 => Instr::BitNot { dst: a, src: b },
        7 => Instr::MaskW { dst: a, src: b, w },
        8 => Instr::Bin {
            op: bin,
            dst: a,
            a: b,
            b: c,
        },
        9 => Instr::BinImm {
            op: bin,
            dst: a,
            a: b,
            imm,
            w,
        },
        10 => Instr::Cmp {
            op: cmp,
            dst: a,
            a: b,
            b: c,
        },
        11 => Instr::CmpImm {
            op: cmp,
            dst: a,
            a: b,
            imm,
        },
        12 => Instr::Jmp { to: c as u32 },
        13 => Instr::Jz {
            cond: a,
            to: c as u32,
        },
        14 => Instr::Jnz {
            cond: a,
            to: c as u32,
        },
        15 => Instr::JCmp {
            op: cmp,
            a,
            b,
            when: flag,
            to: c as u32,
        },
        16 => Instr::JCmpImm {
            op: cmp,
            a,
            imm,
            when: flag,
            to: c as u32,
        },
        17 => Instr::Hash { dst: a, w, args },
        18 => Instr::HashChk {
            dst: a,
            w,
            args,
            gid: b as u32,
        },
        19 => Instr::ArrCheck {
            gid: a as u32,
            idx: b,
        },
        20 => Instr::ChkGetm {
            dst: a,
            gid: b as u32,
            idx: c,
            memop: a,
            local: b,
        },
        21 => Instr::ArrUpdate {
            dst: a,
            gid: b as u32,
            idx: c,
            getop: a,
            getarg: b,
            setop: c,
            setarg: a,
        },
        22 => Instr::MkEvent {
            dst: a,
            event_id: b as u32,
            args,
        },
        23 => Instr::Printf {
            fmt: a,
            args: (0..=(b % 3))
                .map(|k| PrintArg {
                    reg: c.wrapping_add(k),
                    is_bool: flag ^ (k & 1 != 0),
                })
                .collect(),
        },
        _ => Instr::Halt,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: any valid instruction sequence encodes to packed
    /// words that decode back to the same instructions, and re-encoding
    /// the decode reproduces the exact bits and side tables (canonical
    /// form is a fixpoint).
    #[test]
    fn packed_words_roundtrip(
        raws in proptest::collection::vec(
            (0u8..=255, 0u16..=400, 0u16..=400, 0u16..=400, proptest::prelude::any::<u64>(), proptest::prelude::any::<bool>()),
            1..16
        )
    ) {
        let code: Vec<Instr> = raws
            .iter()
            .map(|&(sel, a, b, c, imm, flag)| raw_instr(sel, a, b, c, imm, flag))
            .collect();
        let (w1, t1) = word::encode_all(&code);
        let decoded = match word::decode_all(&w1, &t1) {
            Ok(d) => d,
            Err((pc, e)) => panic!("compiler-encoded word at pc {pc} failed to decode: {e}"),
        };
        prop_assert_eq!(&code, &decoded);
        let (w2, t2) = word::encode_all(&decoded);
        prop_assert_eq!(&w1, &w2);
        prop_assert_eq!(&t1, &t2);
    }

    /// Totality: any 64-bit pattern, against any small side tables,
    /// either decodes or yields a structured error — never a panic.
    #[test]
    fn arbitrary_words_never_panic_the_decoder(
        raw in proptest::prelude::any::<u64>(),
        wides in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..4),
        exts in proptest::collection::vec(0u32..=200_000, 0..8)
    ) {
        let t = SideTables { wide: wides, ext: exts };
        // Both arms are fine; what matters is that decode returns.
        match word::decode(Word(raw), &t) {
            Ok(_) | Err(_) => {}
        }
    }
}

/// Each malformed-word class reports its own structured [`DecodeError`]
/// variant (the verifier folds them all into V0011, but the error
/// itself names the exact corruption).
#[test]
fn malformed_words_decode_to_structured_errors() {
    let t = SideTables::default();
    let decode = |raw: u64, t: &SideTables| word::decode(Word(raw), t);

    // An opcode past the dense space.
    assert!(matches!(
        decode(word::op::LIMIT as u64, &t),
        Err(DecodeError::BadOpcode(b)) if b == word::op::LIMIT
    ));
    // Halt with junk in an operand field.
    assert!(matches!(
        decode((word::op::HALT as u64) | (1 << 8), &t),
        Err(DecodeError::JunkBits { .. })
    ));
    // Wide flag pointing past the (empty) wide pool.
    let wide_const = Word::new(word::op::CONST, 0, 3, 0, 32 | word::WIDE);
    assert!(matches!(
        word::decode(wide_const, &t),
        Err(DecodeError::WideIndex { idx: 3, len: 0 })
    ));
    // A wide-pool entry that should have been inline.
    let t_small = SideTables {
        wide: vec![5],
        ext: Vec::new(),
    };
    let wide_const = Word::new(word::op::CONST, 0, 0, 0, 32 | word::WIDE);
    assert!(matches!(
        word::decode(wide_const, &t_small),
        Err(DecodeError::NonCanonicalWide { value: 5 })
    ));
    // An ext span running past the pool.
    let hash = Word::new(word::op::HASH, 0, 0, 3, 8);
    assert!(matches!(
        word::decode(hash, &t),
        Err(DecodeError::ExtRange {
            base: 0,
            len: 3,
            ..
        })
    ));
    // An ext entry with bits outside its operand's range.
    let t_junk = SideTables {
        wide: Vec::new(),
        ext: vec![1 << 20],
    };
    let hash = Word::new(word::op::HASH, 0, 0, 1, 8);
    assert!(matches!(
        word::decode(hash, &t_junk),
        Err(DecodeError::ExtJunk { .. })
    ));
}

/// Bit-flip mutation test: corrupt the packed words themselves, one
/// field class at a time. A flip that breaks the encoding gets the
/// encoding code (V0011); a flip that decodes into a provably wrong
/// instruction gets that rule's own stable code. Either way the
/// verifier names the corruption and never panics.
#[test]
fn verifier_names_bit_flipped_words() {
    let prog = checked(KITCHEN_SINK);

    // Opcode byte driven outside the dense ISA: undecodable.
    let cp = mutated(&prog, |h| {
        h.code[0].0 |= 0xFF;
    });
    expect_violation(&cp, verify::codes::BAD_ENCODING);

    // Register field (A, the destination) flipped to all-ones: the word
    // still decodes, but the register is far outside the frame.
    let cp = mutated(&prog, |h| {
        let pc = h
            .code
            .iter()
            .position(|w| w.op() == word::op::CONST)
            .expect("a constant load");
        h.code[pc].0 |= 0xFFFFu64 << 8;
    });
    expect_violation(&cp, verify::codes::REG_OUT_OF_FRAME);

    // Immediate field: flipping the wide flag turns an inline immediate
    // into a dangling wide-pool index (the kitchen sink's O0 pool holds
    // no >16-bit immediates, so any index is out of range).
    let cp = mutated(&prog, |h| {
        assert!(h.tables.wide.is_empty(), "test premise: empty wide pool");
        let pc = h
            .code
            .iter()
            .position(|w| w.op() == word::op::CONST)
            .expect("a constant load");
        h.code[pc].0 ^= 1u64 << 63;
    });
    expect_violation(&cp, verify::codes::BAD_ENCODING);

    // A bit in a field the opcode does not use: strict canonical form
    // rejects junk bits rather than silently ignoring them.
    let cp = mutated(&prog, |h| {
        let pc = h
            .code
            .iter()
            .position(|w| w.op() == word::op::CONST)
            .expect("a constant load");
        h.code[pc].0 ^= 1u64 << 40;
    });
    expect_violation(&cp, verify::codes::BAD_ENCODING);
}
