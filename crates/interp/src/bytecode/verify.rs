//! The bytecode verifier: an independent static re-check of every
//! handler the pipeline produces.
//!
//! PR 5's optimizer rewrites each handler three ways (bounds-check
//! elision, superinstruction fusion, register allocation) with nothing
//! but differential testing between a miscompile and silently wrong
//! results. This module closes that trust gap: it runs after lowering
//! and after *each* optimizer pass, so a violation names the guilty
//! pass, and it shares no analysis code with the optimizer — the
//! upper-bound dataflow here is a from-scratch reimplementation, which
//! is what makes the audit independent.
//!
//! Per handler span the verifier proves:
//!
//! * **Initialization** — every register is written before it is read
//!   ([`V0001`]); every object slot holds an event/group before use and
//!   is not reused after `Generate` consumes it ([`V0004`]).
//! * **Frames** — every register and object-slot operand is inside the
//!   declared frame ([`V0002`], [`V0003`]), so regalloc can only ever
//!   shrink frames, never silently widen them.
//! * **Widths** — every declared width is in `1..=64` and every
//!   immediate fits its declared width ([`V0005`]).
//! * **Control flow** — every branch target lands on an instruction
//!   boundary inside the span, strictly forward ([`V0006`]), and the
//!   span ends in `Halt` ([`V0007`]).
//! * **Pools** — every array/memop/group/format/event index resolves
//!   ([`V0008`]), and variable-arity operands match their signature
//!   ([`V0010`]).
//! * **Encoding** — every packed instruction word decodes under the
//!   strict canonical form ([`V0011`]): valid opcode, zero bits in
//!   unused fields, in-range side-table spans, wide immediates only
//!   where an inline field cannot hold them. A span that fails to
//!   decode is rejected before any semantic rule runs.
//! * **Bounds** — every unfused array/memop access is dominated by a
//!   bounds check on the same `(array, index-register)` pair, **or**
//!   carries an elision proof recorded by the O1 upper-bound analysis
//!   *and* the verifier's own dataflow re-derives that bound
//!   ([`V0009`]). Check elision is therefore auditable, not trusted: a
//!   pass that merely deletes an `ArrCheck` without recording why is
//!   rejected even when the bound happens to hold.
//!
//! Verification is always on in debug builds (`cargo test`, CI) via
//! [`CompiledProg::compile_opt`], explicit via
//! [`CompiledProg::compile_verified`], and user-visible through
//! `lucidc sim --verify-bytecode`. Violations surface as `V0xxx`
//! diagnostics through the shared [`Diagnostic`] machinery.
//!
//! [`V0001`]: self::codes::UNINIT_REG
//! [`V0002`]: self::codes::REG_OUT_OF_FRAME
//! [`V0003`]: self::codes::OBJ_OUT_OF_FRAME
//! [`V0004`]: self::codes::UNINIT_OBJ
//! [`V0005`]: self::codes::BAD_WIDTH
//! [`V0006`]: self::codes::BAD_JUMP
//! [`V0007`]: self::codes::NO_HALT
//! [`V0008`]: self::codes::BAD_POOL_INDEX
//! [`V0009`]: self::codes::UNCHECKED_ACCESS
//! [`V0010`]: self::codes::BAD_ARITY
//! [`V0011`]: self::codes::BAD_ENCODING

use super::{opt, word, CompiledProg, HandlerCode, Instr};
use lucid_check::mask;
use lucid_frontend::ast::BinOp;
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The stable verifier diagnostic codes (`V00xx` range; see the
/// code-registry test in `tests/tests/code_registry.rs`).
pub mod codes {
    /// Register read before any write on some path.
    pub const UNINIT_REG: &str = "V0001";
    /// Register operand outside the declared register frame.
    pub const REG_OUT_OF_FRAME: &str = "V0002";
    /// Object-slot operand outside the declared object frame.
    pub const OBJ_OUT_OF_FRAME: &str = "V0003";
    /// Object slot used while empty (never filled, or consumed by
    /// `generate`) on some path.
    pub const UNINIT_OBJ: &str = "V0004";
    /// Width outside `1..=64`, or an immediate that does not fit its
    /// declared width.
    pub const BAD_WIDTH: &str = "V0005";
    /// Jump target outside the span or not strictly forward.
    pub const BAD_JUMP: &str = "V0006";
    /// Handler span does not end in `Halt`.
    pub const NO_HALT: &str = "V0007";
    /// Array/memop/group/format/event pool index out of range.
    pub const BAD_POOL_INDEX: &str = "V0008";
    /// Unfused array access neither dominated by a bounds check nor
    /// covered by a re-derivable elision proof.
    pub const UNCHECKED_ACCESS: &str = "V0009";
    /// Variable-arity operand list does not match its signature
    /// (event arity, empty hash).
    pub const BAD_ARITY: &str = "V0010";
    /// Packed instruction word fails to decode: bad opcode, junk bits
    /// in an unused field, an out-of-range side-table span, or a
    /// non-canonical wide immediate.
    pub const BAD_ENCODING: &str = "V0011";
}

/// One verifier violation: which rule broke, where, and after which
/// pipeline pass — the pass name is what turns "the bytecode is bad"
/// into "this optimizer pass miscompiled".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable `V0xxx` code (one of [`codes`]).
    pub code: &'static str,
    /// Pipeline pass after which the violation was detected:
    /// `"lower"`, `"peephole"`, `"regalloc"`, or `"final"`.
    pub pass: &'static str,
    /// Handler (event) name.
    pub handler: String,
    /// Instruction index within the handler span.
    pub pc: usize,
    pub message: String,
}

impl Violation {
    /// Render as a span-less diagnostic through the shared machinery
    /// (so `--json-diagnostics` and plain rendering both work).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error_global(format!(
            "bytecode verifier: handler `{}`, pc {} (after {}): {}",
            self.handler, self.pc, self.pass, self.message
        ))
        .with_code(self.code)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: handler `{}`, pc {} (after {}): {}",
            self.code, self.handler, self.pc, self.pass, self.message
        )
    }
}

/// Collect violations into the shared diagnostics container.
pub fn violations_to_diagnostics(violations: &[Violation]) -> Diagnostics {
    let mut diags = Diagnostics::default();
    for v in violations {
        diags.push(v.to_diagnostic());
    }
    diags
}

/// Verify one handler against the program pools. Returns every
/// violation found (empty = the handler is well-formed).
pub(super) fn verify_handler(
    h: &HandlerCode,
    pools: &CompiledProg,
    pass: &'static str,
) -> Vec<Violation> {
    // Decode the packed span first: every rule below reasons about the
    // structured view, so an undecodable word is its own violation
    // class — the V-code pins the pc and the structural reason.
    let code = match word::decode_all(h.words(), h.tables()) {
        Ok(code) => code,
        Err((pc, e)) => {
            return vec![Violation {
                code: codes::BAD_ENCODING,
                pass,
                handler: h.name.clone(),
                pc,
                message: format!("packed word does not decode: {e}"),
            }]
        }
    };
    let mut v = Verifier {
        h,
        code: &code,
        pools,
        pass,
        out: Vec::new(),
    };
    v.structural();
    // The dataflow pass indexes frames and jump targets by the numbers
    // the structural pass just validated; on structural breakage those
    // indexes are meaningless, so report what we have.
    if v.out.is_empty() {
        v.dataflow();
    }
    v.out
}

struct Verifier<'a> {
    h: &'a HandlerCode,
    /// The span, decoded from [`HandlerCode::words`] up front.
    code: &'a [Instr],
    pools: &'a CompiledProg,
    pass: &'static str,
    out: Vec<Violation>,
}

impl Verifier<'_> {
    fn report(&mut self, code: &'static str, pc: usize, message: String) {
        self.out.push(Violation {
            code,
            pass: self.pass,
            handler: self.h.name.clone(),
            pc,
            message,
        });
    }

    // ------------------------------------------------------ structural

    /// Frame bounds, pool indexes, widths, jump shape, `Halt`
    /// termination. Covers every instruction, reachable or not.
    fn structural(&mut self) {
        if self.h.nregs < self.h.binds.len() {
            self.report(
                codes::REG_OUT_OF_FRAME,
                0,
                format!(
                    "register frame of {} cannot hold {} parameters",
                    self.h.nregs,
                    self.h.binds.len()
                ),
            );
        }
        match self.code.last() {
            Some(Instr::Halt) => {}
            _ => self.report(
                codes::NO_HALT,
                self.code.len().saturating_sub(1),
                "handler span does not end in Halt".to_string(),
            ),
        }
        for (pc, i) in self.code.iter().enumerate() {
            self.check_frames(pc, i);
            self.check_pools(pc, i);
            self.check_widths(pc, i);
            if let Some(to) = jump_to(i) {
                let to = to as usize;
                if to >= self.code.len() {
                    self.report(
                        codes::BAD_JUMP,
                        pc,
                        format!(
                            "jump target {to} outside the span (len {})",
                            self.code.len()
                        ),
                    );
                } else if to <= pc {
                    self.report(
                        codes::BAD_JUMP,
                        pc,
                        format!("jump target {to} is not strictly forward"),
                    );
                }
            }
        }
    }

    fn check_frames(&mut self, pc: usize, i: &Instr) {
        let nregs = self.h.nregs;
        let mut bad_reg = Vec::new();
        let mut touch = |r: u16| {
            if r as usize >= nregs {
                bad_reg.push(r);
            }
        };
        opt::uses(i, &mut touch);
        if let Some(d) = opt::def(i) {
            touch(d);
        }
        for r in bad_reg {
            self.report(
                codes::REG_OUT_OF_FRAME,
                pc,
                format!("register r{r} outside the frame (nregs = {nregs})"),
            );
        }
        for o in obj_operands(i) {
            if o as usize >= self.h.nobjs {
                self.report(
                    codes::OBJ_OUT_OF_FRAME,
                    pc,
                    format!(
                        "object slot o{o} outside the frame (nobjs = {})",
                        self.h.nobjs
                    ),
                );
            }
        }
    }

    fn check_pools(&mut self, pc: usize, i: &Instr) {
        let gid = |g: u32| {
            if g as usize >= self.pools.arrays.len() {
                Some(format!(
                    "array id {g} (pool has {})",
                    self.pools.arrays.len()
                ))
            } else {
                None
            }
        };
        let memop = |m: u16| {
            if m as usize >= self.pools.memops.len() {
                Some(format!(
                    "memop id {m} (pool has {})",
                    self.pools.memops.len()
                ))
            } else {
                None
            }
        };
        let bad: Vec<String> = match i {
            Instr::ArrCheck { gid: g, .. }
            | Instr::ArrGet { gid: g, .. }
            | Instr::ArrSet { gid: g, .. }
            | Instr::ChkGet { gid: g, .. }
            | Instr::ChkSet { gid: g, .. }
            | Instr::HashChk { gid: g, .. } => gid(*g).into_iter().collect(),
            Instr::ArrGetm {
                gid: g, memop: m, ..
            }
            | Instr::ArrSetm {
                gid: g, memop: m, ..
            }
            | Instr::ChkGetm {
                gid: g, memop: m, ..
            }
            | Instr::ChkSetm {
                gid: g, memop: m, ..
            } => gid(*g).into_iter().chain(memop(*m)).collect(),
            Instr::ArrUpdate {
                gid: g,
                getop,
                setop,
                ..
            }
            | Instr::ChkUpdate {
                gid: g,
                getop,
                setop,
                ..
            } => gid(*g)
                .into_iter()
                .chain(memop(*getop))
                .chain(memop(*setop))
                .collect(),
            Instr::LoadGroup { group, .. } => {
                if *group as usize >= self.pools.groups.len() {
                    vec![format!(
                        "group id {group} (pool has {})",
                        self.pools.groups.len()
                    )]
                } else {
                    vec![]
                }
            }
            Instr::Printf { fmt, .. } => {
                if *fmt as usize >= self.pools.fmts.len() {
                    vec![format!(
                        "format id {fmt} (pool has {})",
                        self.pools.fmts.len()
                    )]
                } else {
                    vec![]
                }
            }
            Instr::MkEvent { event_id, args, .. } => {
                match self.pools.events.get(*event_id as usize) {
                    None => vec![format!(
                        "event id {event_id} (pool has {})",
                        self.pools.events.len()
                    )],
                    Some(e) if e.widths.len() != args.len() => {
                        self.report(
                            codes::BAD_ARITY,
                            pc,
                            format!(
                                "event `{}` takes {} args, MkEvent passes {}",
                                e.name,
                                e.widths.len(),
                                args.len()
                            ),
                        );
                        vec![]
                    }
                    Some(_) => vec![],
                }
            }
            _ => vec![],
        };
        for b in bad {
            self.report(codes::BAD_POOL_INDEX, pc, format!("{b} out of range"));
        }
        if let Instr::Hash { args, .. } | Instr::HashChk { args, .. } = i {
            if args.is_empty() {
                self.report(
                    codes::BAD_ARITY,
                    pc,
                    "hash needs at least a seed argument".to_string(),
                );
            }
        }
    }

    fn check_widths(&mut self, pc: usize, i: &Instr) {
        let mut width = |w: u32| {
            if !(1..=64).contains(&w) {
                self.out.push(Violation {
                    code: codes::BAD_WIDTH,
                    pass: self.pass,
                    handler: self.h.name.clone(),
                    pc,
                    message: format!("width {w} outside 1..=64"),
                });
            }
        };
        match i {
            Instr::Const { imm, w, .. } | Instr::BinImm { imm, w, .. } => {
                width(*w);
                if (1..=64).contains(w) && mask(*imm, *w) != *imm {
                    self.report(
                        codes::BAD_WIDTH,
                        pc,
                        format!("immediate {imm:#x} does not fit declared width {w}"),
                    );
                }
            }
            Instr::MaskW { w, .. } | Instr::Hash { w, .. } | Instr::HashChk { w, .. } => width(*w),
            _ => {}
        }
    }

    // -------------------------------------------------------- dataflow

    /// Forward dataflow over the span. Jumps are forward-only, so one
    /// pass with pending inflow states at jump targets is a complete
    /// fixpoint: by the time `pc` is reached, every predecessor (all at
    /// lower addresses) has already contributed its out-state.
    fn dataflow(&mut self) {
        let code = self.code;
        let mut inflow: Vec<Option<State>> = vec![None; code.len()];
        let mut cur = State::entry(self.h);
        // Whether `cur` describes a reachable path into the next pc;
        // code after an unconditional jump is skipped until a pending
        // inflow state revives it.
        let mut live = true;
        for pc in 0..code.len() {
            if let Some(p) = inflow[pc].take() {
                if live {
                    cur.merge(&p);
                } else {
                    cur = p;
                    live = true;
                }
            }
            if !live {
                continue;
            }
            let i = &code[pc];
            self.check_reads(pc, i, &cur);
            self.check_access(pc, i, &cur);
            cur.transfer(i, self.pools);
            match i {
                Instr::Jmp { to } => {
                    flow(&mut inflow, *to as usize, &cur);
                    live = false;
                }
                Instr::Jz { to, .. }
                | Instr::Jnz { to, .. }
                | Instr::JCmp { to, .. }
                | Instr::JCmpImm { to, .. } => flow(&mut inflow, *to as usize, &cur),
                Instr::Halt => live = false,
                _ => {}
            }
        }
    }

    fn check_reads(&mut self, pc: usize, i: &Instr, cur: &State) {
        let mut bad = Vec::new();
        opt::uses(i, &mut |r| {
            if !cur.init[r as usize] {
                bad.push(r);
            }
        });
        for r in bad {
            self.report(
                codes::UNINIT_REG,
                pc,
                format!("r{r} read before initialization"),
            );
        }
        for (o, is_use) in obj_operands_rw(i) {
            if is_use && !cur.obj[o as usize] {
                self.report(
                    codes::UNINIT_OBJ,
                    pc,
                    format!("object slot o{o} used while empty"),
                );
            }
        }
    }

    /// The bounds obligation (`V0009`) for unfused array accesses.
    fn check_access(&mut self, pc: usize, i: &Instr, cur: &State) {
        let Some((gid, idx)) = raw_access(i) else {
            return;
        };
        if cur.checked.contains(&(gid, idx)) {
            return;
        }
        let len = self.pools.arrays[gid as usize].len as u128;
        let has_proof = self
            .h
            .elisions
            .iter()
            .any(|e| e.gid == gid && e.idx == idx && e.bound <= len);
        let rederived = cur.ub.get(&idx).is_some_and(|b| *b <= len);
        if has_proof && rederived {
            return;
        }
        let arr = &self.pools.arrays[gid as usize].name;
        let msg = if has_proof {
            format!(
                "access to `{arr}` via r{idx} carries an elision proof, but the \
                 verifier cannot re-derive r{idx} < {len}"
            )
        } else if rederived {
            format!(
                "access to `{arr}` via r{idx} is in bounds but no pass recorded an \
                 elision proof — a bounds check was dropped without evidence"
            )
        } else {
            format!("access to `{arr}` via r{idx} is not dominated by a bounds check")
        };
        self.report(codes::UNCHECKED_ACCESS, pc, msg);
    }
}

fn flow(inflow: &mut [Option<State>], to: usize, s: &State) {
    match &mut inflow[to] {
        Some(p) => p.merge(s),
        slot @ None => *slot = Some(s.clone()),
    }
}

/// The jump target of a branching instruction.
fn jump_to(i: &Instr) -> Option<u32> {
    match i {
        Instr::Jmp { to }
        | Instr::Jz { to, .. }
        | Instr::Jnz { to, .. }
        | Instr::JCmp { to, .. }
        | Instr::JCmpImm { to, .. } => Some(*to),
        _ => None,
    }
}

/// Every object-slot operand of an instruction.
fn obj_operands(i: &Instr) -> Vec<u16> {
    obj_operands_rw(i).into_iter().map(|(o, _)| o).collect()
}

/// Object-slot operands with whether each is a *use* of the slot's
/// current contents (`false` = pure definition).
fn obj_operands_rw(i: &Instr) -> Vec<(u16, bool)> {
    match i {
        Instr::MkEvent { dst, .. } | Instr::LoadGroup { dst, .. } => vec![(*dst, false)],
        Instr::ObjCopy { dst, src } => vec![(*src, true), (*dst, false)],
        Instr::EvDelay { obj, .. } | Instr::EvLocate { obj, .. } => vec![(*obj, true)],
        Instr::EvMLocate { obj, group } => vec![(*obj, true), (*group, true)],
        Instr::Generate { obj } => vec![(*obj, true)],
        _ => vec![],
    }
}

/// The `(gid, idx-register)` of an *unfused* array access — the
/// instructions the executor indexes with no runtime check.
fn raw_access(i: &Instr) -> Option<(u32, u16)> {
    match i {
        Instr::ArrGet { gid, idx, .. }
        | Instr::ArrSet { gid, idx, .. }
        | Instr::ArrGetm { gid, idx, .. }
        | Instr::ArrSetm { gid, idx, .. }
        | Instr::ArrUpdate { gid, idx, .. } => Some((*gid, *idx)),
        _ => None,
    }
}

/// The dataflow state at one program point.
#[derive(Clone)]
struct State {
    /// Registers definitely written on every path here.
    init: Vec<bool>,
    /// Object slots definitely holding a value on every path here.
    obj: Vec<bool>,
    /// `(gid, idx)` pairs with a dominating runtime bounds check.
    checked: HashSet<(u32, u16)>,
    /// Exclusive upper bounds definitely holding on every path here —
    /// the verifier's own reimplementation of the O1 elision analysis.
    ub: HashMap<u16, u128>,
}

impl State {
    fn entry(h: &HandlerCode) -> State {
        let mut init = vec![false; h.nregs];
        // Dispatch fills `r0..rk` with the (pre-masked) parameters
        // before the first instruction.
        for r in init.iter_mut().take(h.binds.len()) {
            *r = true;
        }
        State {
            init,
            obj: vec![false; h.nobjs],
            checked: HashSet::new(),
            ub: HashMap::new(),
        }
    }

    /// Meet at a join point: facts must hold on *every* inbound path.
    fn merge(&mut self, o: &State) {
        for (a, b) in self.init.iter_mut().zip(&o.init) {
            *a &= *b;
        }
        for (a, b) in self.obj.iter_mut().zip(&o.obj) {
            *a &= *b;
        }
        self.checked.retain(|k| o.checked.contains(k));
        self.ub = self
            .ub
            .iter()
            .filter_map(|(r, b)| o.ub.get(r).map(|ob| (*r, (*b).max(*ob))))
            .collect();
    }

    fn transfer(&mut self, i: &Instr, pools: &CompiledProg) {
        // Derive the post-bound before the def invalidates source
        // bounds (an instruction may read and write the same register).
        let bound = ub_out(i, &self.ub, pools);
        if let Some(d) = opt::def(i) {
            self.init[d as usize] = true;
            self.checked.retain(|(_, r)| *r != d);
            match bound {
                Some(b) => {
                    self.ub.insert(d, b);
                }
                None => {
                    self.ub.remove(&d);
                }
            }
        }
        for (o, is_use) in obj_operands_rw(i) {
            if !is_use {
                self.obj[o as usize] = true;
            }
        }
        // `generate` consumes its slot (the executor `take`s it).
        if let Instr::Generate { obj } = i {
            self.obj[*obj as usize] = false;
        }
        // Runtime checks establish bounds facts for the registers that
        // survive them. A fused op whose destination *is* its index
        // register destroys the checked value, so no fact survives.
        match i {
            Instr::ArrCheck { gid, idx } => {
                self.checked.insert((*gid, *idx));
            }
            Instr::HashChk { dst, gid, .. } => {
                // The check is on the freshly hashed dst.
                self.checked.insert((*gid, *dst));
            }
            Instr::ChkSet { gid, idx, .. } | Instr::ChkSetm { gid, idx, .. } => {
                self.checked.insert((*gid, *idx));
            }
            Instr::ChkGet { dst, gid, idx }
            | Instr::ChkGetm { dst, gid, idx, .. }
            | Instr::ChkUpdate { dst, gid, idx, .. }
                if dst != idx =>
            {
                self.checked.insert((*gid, *idx));
            }
            _ => {}
        }
    }
}

/// Exclusive upper bound of an instruction's result, given the bounds
/// of its inputs. Mirrors (independently) the O1 elision transfer.
fn ub_out(i: &Instr, ub: &HashMap<u16, u128>, pools: &CompiledProg) -> Option<u128> {
    let width_bound = |w: u32| 1u128 << w.min(64);
    match i {
        Instr::Const { imm, .. } => Some(*imm as u128 + 1),
        Instr::Hash { w, .. } | Instr::HashChk { w, .. } => Some(width_bound(*w)),
        Instr::MaskW { src, w, .. } => Some(
            ub.get(src)
                .copied()
                .unwrap_or(u128::MAX)
                .min(width_bound(*w)),
        ),
        Instr::Mov { src, .. } => ub.get(src).copied(),
        Instr::Bin {
            op: BinOp::BitAnd,
            a,
            b,
            ..
        } => match (ub.get(a), ub.get(b)) {
            (None, None) => None,
            (x, y) => Some(
                x.copied()
                    .unwrap_or(u128::MAX)
                    .min(y.copied().unwrap_or(u128::MAX)),
            ),
        },
        Instr::BinImm {
            op: BinOp::BitAnd,
            imm,
            a,
            ..
        } => Some(
            ub.get(a)
                .copied()
                .unwrap_or(u128::MAX)
                .min(*imm as u128 + 1),
        ),
        Instr::Bin {
            op: BinOp::Mod, b, ..
        } => ub.get(b).copied(),
        Instr::BinImm {
            op: BinOp::Mod,
            imm,
            ..
        } => Some((*imm as u128).max(1)),
        Instr::ArrGet { gid, .. }
        | Instr::ChkGet { gid, .. }
        | Instr::ArrGetm { gid, .. }
        | Instr::ChkGetm { gid, .. }
        | Instr::ArrUpdate { gid, .. }
        | Instr::ChkUpdate { gid, .. } => Some(width_bound(pools.arrays[*gid as usize].width)),
        Instr::Cmp { .. } | Instr::CmpImm { .. } | Instr::BoolOf { .. } | Instr::Not { .. } => {
            Some(2)
        }
        Instr::LoadPort { .. } => Some(1),
        _ => None,
    }
}
