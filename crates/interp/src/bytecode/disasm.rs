//! The stable disassembly (`lucidc sim --dump-bytecode`). Golden-file
//! tests pin this format per optimization level
//! (`tests/golden/<app>.o<level>.bc.txt`): the header names the level,
//! each handler line reports its post-regalloc register frame, and every
//! fused superinstruction renders with its own mnemonic.

use super::{word, CompiledProg, Instr, OptLevel};
use lucid_check::CheckedProgram;
use std::fmt::Write as _;

/// Compile `prog` at the default level and render the listing.
pub fn disassemble(prog: &CheckedProgram) -> String {
    disassemble_opt(prog, OptLevel::default())
}

/// Compile `prog` at `level` and render the listing.
pub fn disassemble_opt(prog: &CheckedProgram, level: OptLevel) -> String {
    CompiledProg::compile_opt(prog, level).disasm()
}

impl CompiledProg {
    /// A stable, human-readable listing of the whole compiled program:
    /// the pools, then each handler's code. Golden-file tests pin this
    /// format (`tests/golden/*.bc.txt`).
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        let handlers = self.handlers.iter().flatten().count();
        let _ = writeln!(
            out,
            "; {} events, {} handlers, {} arrays, {} memops, {} groups",
            self.events.len(),
            handlers,
            self.arrays.len(),
            self.memops.len(),
            self.groups.len(),
        );
        let _ = writeln!(out, "; opt level {}", self.opt.label());
        for (i, a) in self.arrays.iter().enumerate() {
            let _ = writeln!(
                out,
                "; array g{i} `{}`: {} x {}-bit",
                a.name, a.len, a.width
            );
        }
        for (i, m) in self.memops.iter().enumerate() {
            let _ = writeln!(out, "; memop m{i} `{}`", m.name);
        }
        for (i, (name, members)) in self.groups.iter().enumerate() {
            let list: Vec<String> = members.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "; group G{i} `{name}`: {{{}}}", list.join(", "));
        }
        for h in self.handlers.iter().flatten() {
            out.push('\n');
            let _ = writeln!(
                out,
                "handler `{}` (event {}): {} regs, {} objs, {} instrs",
                h.name,
                h.event_id,
                h.nregs,
                h.nobjs,
                h.code.len()
            );
            if !h.param_names.is_empty() {
                let args: Vec<String> = h
                    .param_names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| format!("r{i}={n}"))
                    .collect();
                let _ = writeln!(out, "  args: {}", args.join(" "));
            }
            // Decode each packed word back to the instruction it names;
            // a word that fails to decode (possible only for bytecode
            // corrupted outside the pipeline) renders as raw bits.
            for (pc, &w) in h.code.iter().enumerate() {
                let text = match word::decode(w, &h.tables) {
                    Ok(i) => self.instr_text(&i),
                    Err(e) => format!("?? {:#018x} ; {e}", w.0),
                };
                let _ = writeln!(out, "  {pc:>4}: {text}");
            }
        }
        out
    }

    fn instr_text(&self, i: &Instr) -> String {
        let arr = |gid: &u32| format!("g{gid}");
        // Fused branches read as guards: `jif` jumps when the comparison
        // holds, `junless` when it does not.
        let jword = |when: &bool| if *when { "jif" } else { "junless" };
        match i {
            Instr::Const { dst, imm, w } => format!("r{dst} = const {imm} <<{w}>>"),
            Instr::Mov { dst, src } => format!("r{dst} = r{src}"),
            Instr::StoreMasked { dst, src } => format!("r{dst} =mask r{src}"),
            Instr::BoolOf { dst, src } => format!("r{dst} = bool r{src}"),
            Instr::Not { dst, src } => format!("r{dst} = !r{src}"),
            Instr::Neg { dst, src } => format!("r{dst} = -r{src}"),
            Instr::BitNot { dst, src } => format!("r{dst} = ~r{src}"),
            Instr::Bin { op, dst, a, b } => format!("r{dst} = r{a} {} r{b}", op.symbol()),
            Instr::BinImm { op, dst, a, imm, w } => {
                format!("r{dst} = r{a} {} {imm} <<{w}>>", op.symbol())
            }
            Instr::Cmp { op, dst, a, b } => format!("r{dst} = r{a} {} r{b}", op.symbol()),
            Instr::CmpImm { op, dst, a, imm } => format!("r{dst} = r{a} {} {imm}", op.symbol()),
            Instr::MaskW { dst, src, w } => format!("r{dst} = mask<<{w}>> r{src}"),
            Instr::Hash { dst, w, args } => {
                let rest: Vec<String> = args[1..].iter().map(|r| format!("r{r}")).collect();
                format!("r{dst} = hash<<{w}>>(r{}; {})", args[0], rest.join(", "))
            }
            Instr::HashChk { dst, w, args, gid } => {
                let rest: Vec<String> = args[1..].iter().map(|r| format!("r{r}")).collect();
                format!(
                    "r{dst} = hash<<{w}>>(r{}; {}) chk {}",
                    args[0],
                    rest.join(", "),
                    arr(gid)
                )
            }
            Instr::Jmp { to } => format!("jmp {to}"),
            Instr::Jz { cond, to } => format!("jz r{cond} -> {to}"),
            Instr::Jnz { cond, to } => format!("jnz r{cond} -> {to}"),
            Instr::JCmp { op, a, b, when, to } => {
                format!("{} r{a} {} r{b} -> {to}", jword(when), op.symbol())
            }
            Instr::JCmpImm {
                op,
                a,
                imm,
                when,
                to,
            } => format!("{} r{a} {} {imm} -> {to}", jword(when), op.symbol()),
            Instr::ArrCheck { gid, idx } => format!("check {}[r{idx}]", arr(gid)),
            Instr::ArrGet { dst, gid, idx } => format!("r{dst} = {}[r{idx}]", arr(gid)),
            Instr::ChkGet { dst, gid, idx } => format!("r{dst} = chk {}[r{idx}]", arr(gid)),
            Instr::ArrSet { gid, idx, val } => format!("{}[r{idx}] = r{val}", arr(gid)),
            Instr::ChkSet { gid, idx, val } => format!("chk {}[r{idx}] = r{val}", arr(gid)),
            Instr::ArrGetm {
                dst,
                gid,
                idx,
                memop,
                local,
            } => format!("r{dst} = {}[r{idx}].m{memop}(r{local})", arr(gid)),
            Instr::ChkGetm {
                dst,
                gid,
                idx,
                memop,
                local,
            } => format!("r{dst} = chk {}[r{idx}].m{memop}(r{local})", arr(gid)),
            Instr::ArrSetm {
                gid,
                idx,
                memop,
                local,
            } => format!("{}[r{idx}] = m{memop}(r{local})", arr(gid)),
            Instr::ChkSetm {
                gid,
                idx,
                memop,
                local,
            } => format!("chk {}[r{idx}] = m{memop}(r{local})", arr(gid)),
            Instr::ArrUpdate {
                dst,
                gid,
                idx,
                getop,
                getarg,
                setop,
                setarg,
            } => format!(
                "r{dst} = update {}[r{idx}] get m{getop}(r{getarg}) set m{setop}(r{setarg})",
                arr(gid)
            ),
            Instr::ChkUpdate {
                dst,
                gid,
                idx,
                getop,
                getarg,
                setop,
                setarg,
            } => format!(
                "r{dst} = chk update {}[r{idx}] get m{getop}(r{getarg}) set m{setop}(r{setarg})",
                arr(gid)
            ),
            Instr::MkEvent {
                dst,
                event_id,
                args,
            } => {
                let list: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
                format!(
                    "o{dst} = event `{}`({})",
                    self.events[*event_id as usize].name,
                    list.join(", ")
                )
            }
            Instr::ObjCopy { dst, src } => format!("o{dst} = o{src}"),
            Instr::LoadGroup { dst, group } => format!("o{dst} = group G{group}"),
            Instr::EvDelay { obj, us } => format!("o{obj}.delay += r{us} us"),
            Instr::EvLocate { obj, loc } => format!("o{obj}.loc = switch r{loc}"),
            Instr::EvMLocate { obj, group } => format!("o{obj}.loc = o{group}"),
            Instr::Generate { obj } => format!("generate o{obj}"),
            Instr::LoadSelf { dst } => format!("r{dst} = self"),
            Instr::LoadTime { dst } => format!("r{dst} = time"),
            Instr::LoadPort { dst } => format!("r{dst} = port"),
            Instr::Printf { fmt, args } => {
                let list: Vec<String> = args
                    .iter()
                    .map(|p| {
                        if p.is_bool {
                            format!("r{}:b", p.reg)
                        } else {
                            format!("r{}", p.reg)
                        }
                    })
                    .collect();
                format!(
                    "printf {:?} ({})",
                    self.fmts[*fmt as usize],
                    list.join(", ")
                )
            }
            Instr::Halt => "halt".to_string(),
        }
    }
}
