//! Lowering: one pass over a checked handler's AST emitting raw
//! bytecode. This is the whole story at [`OptLevel::O0`]
//! (`lucidc sim --opt=0`); the [`opt`](super::opt) pipeline rewrites the
//! output at higher levels. The lowering itself never emits the fused
//! superinstructions — keeping the raw ISA small is what makes the
//! differential matrix (walker vs. unoptimized vs. optimized bytecode)
//! meaningful.

use super::{word, CompiledProg, HandlerCode, Instr, ParamBind, PrintArg};
use lucid_check::{mask, CheckedProgram, GlobalId};
use lucid_frontend::ast::*;
use std::collections::HashMap;

/// What a variable name is bound to during compilation.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Reg {
        r: u16,
        is_bool: bool,
    },
    Obj(u16),
    /// An array-typed function parameter, resolved to its global.
    ArrayRef(GlobalId),
    /// A local bound to a void function call's "result".
    Void,
}

/// The result of compiling one expression.
#[derive(Debug, Clone, Copy)]
enum Val {
    Reg { r: u16, is_bool: bool, temp: bool },
    Obj { o: u16, temp: bool },
    Void,
}

/// Return-value plumbing for one inlined function activation.
struct RetCtx {
    slot: Slot,
    /// `Jmp` sites to patch to the inlined epilogue.
    jumps: Vec<usize>,
}

/// One activation frame: the handler itself, or an inlined function.
struct Frame {
    vars: HashMap<String, Slot>,
    /// `None` for the handler frame (its `return` halts).
    ret: Option<RetCtx>,
}

/// Register / object-slot allocator: a free list plus high-water mark.
#[derive(Default)]
struct Alloc {
    next: u16,
    free: Vec<u16>,
}

impl Alloc {
    fn get(&mut self) -> u16 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.next;
            self.next = self.next.checked_add(1).expect("register file overflow");
            r
        })
    }

    fn put(&mut self, r: u16) {
        self.free.push(r);
    }
}

struct Cc<'p> {
    prog: &'p CheckedProgram,
    pools: &'p mut CompiledProg,
    /// The span under construction, already in packed form — lowering
    /// emits words, not boxed instructions (see [`word`]).
    code: Vec<word::Word>,
    /// The wide/ext pools [`Cc::code`] indexes into.
    tables: word::SideTables,
    regs: Alloc,
    objs: Alloc,
    frames: Vec<Frame>,
    /// Array-typed parameters of every live (inlined) activation, in
    /// binding order — the compile-time image of the walker's dynamic
    /// `cx.array_params` stack. Array-position names resolve through
    /// this stack (innermost first), *not* through lexical frames,
    /// because the walker is the semantics of record.
    array_stack: Vec<(String, GlobalId)>,
    /// Inlining depth guard (the checker rules out recursion; this turns
    /// a hypothetical checker bug into a clean panic, not a hang).
    depth: usize,
}

pub(super) fn compile_handler(
    prog: &CheckedProgram,
    pools: &mut CompiledProg,
    event_id: usize,
    name: &str,
    params: &[Param],
    body: &Block,
) -> HandlerCode {
    let mut cc = Cc {
        prog,
        pools,
        code: Vec::new(),
        tables: word::SideTables::default(),
        regs: Alloc::default(),
        objs: Alloc::default(),
        frames: Vec::new(),
        array_stack: Vec::new(),
        depth: 0,
    };
    let mut vars = HashMap::new();
    let mut binds = Vec::with_capacity(params.len());
    let mut param_names = Vec::with_capacity(params.len());
    for p in params {
        let r = cc.regs.get();
        let is_bool = p.ty == Ty::Bool;
        binds.push(match p.ty {
            Ty::Bool => ParamBind::Bool,
            ty => ParamBind::Int(ty.int_width().unwrap_or(32)),
        });
        vars.insert(p.name.name.clone(), Slot::Reg { r, is_bool });
        param_names.push(p.name.name.clone());
    }
    cc.frames.push(Frame { vars, ret: None });
    cc.block(body);
    cc.emit(Instr::Halt);
    assert!(
        cc.code.len() < 0xFFFF,
        "handler span of {} exceeds the 16-bit jump-target space",
        cc.code.len()
    );
    HandlerCode {
        event_id,
        name: name.to_string(),
        param_names,
        binds,
        nregs: cc.regs.next as usize,
        nobjs: cc.objs.next as usize,
        code: cc.code,
        tables: cc.tables,
        elisions: Vec::new(),
    }
}

impl Cc<'_> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(word::encode(&i, &mut self.tables));
        self.code.len() - 1
    }

    /// Point a forward jump at the current end of the code (the C field
    /// of the packed word holds the target for every jump opcode).
    fn patch(&mut self, at: usize) {
        let to = u16::try_from(self.code.len()).expect("span bounded at seal time");
        let w = &mut self.code[at];
        assert!(
            matches!(w.op(), word::op::JMP | word::op::JZ | word::op::JNZ),
            "patching a non-jump opcode {:#04x}",
            w.op()
        );
        w.set_c(to);
    }

    /// Free the storage a consumed temporary held.
    fn release(&mut self, v: Val) {
        match v {
            Val::Reg { r, temp: true, .. } => self.regs.put(r),
            Val::Obj { o, temp: true, .. } => self.objs.put(o),
            _ => {}
        }
    }

    fn reg_of(&self, v: Val) -> u16 {
        match v {
            Val::Reg { r, .. } => r,
            other => panic!("checked program used {other:?} as an integer"),
        }
    }

    /// Get `v` into an object slot we may mutate (clone a variable's
    /// slot, exactly as the walker clones on env lookup).
    fn owned_obj(&mut self, v: Val) -> u16 {
        match v {
            Val::Obj { o, temp: true } => o,
            Val::Obj { o, temp: false } => {
                let dst = self.objs.get();
                self.emit(Instr::ObjCopy { dst, src: o });
                dst
            }
            other => panic!("checked program used {other:?} as an event/group"),
        }
    }

    /// Pin an expression result as a variable binding (reusing a
    /// temporary's storage, copying out of another variable's).
    fn bind_value(&mut self, v: Val) -> Slot {
        match v {
            Val::Reg {
                r,
                is_bool,
                temp: true,
            } => Slot::Reg { r, is_bool },
            Val::Reg {
                r,
                is_bool,
                temp: false,
            } => {
                let dst = self.regs.get();
                self.emit(Instr::Mov { dst, src: r });
                Slot::Reg { r: dst, is_bool }
            }
            Val::Obj { o, temp: true } => Slot::Obj(o),
            Val::Obj { o, temp: false } => {
                let dst = self.objs.get();
                self.emit(Instr::ObjCopy { dst, src: o });
                Slot::Obj(dst)
            }
            Val::Void => Slot::Void,
        }
    }

    // ------------------------------------------------------- statements

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let v = self.expr(init);
                // The walker re-masks only int-typed locals holding ints.
                let slot = match (ty, v) {
                    (Some(Ty::Int(w)), Val::Reg { r, temp, .. }) => {
                        let dst = if temp { r } else { self.regs.get() };
                        self.emit(Instr::MaskW { dst, src: r, w: *w });
                        Slot::Reg {
                            r: dst,
                            is_bool: false,
                        }
                    }
                    _ => self.bind_value(v),
                };
                self.frames
                    .last_mut()
                    .expect("frame")
                    .vars
                    .insert(name.name.clone(), slot);
            }
            StmtKind::Assign { name, value } => {
                let slot = *self
                    .frames
                    .last()
                    .expect("frame")
                    .vars
                    .get(&name.name)
                    .unwrap_or_else(|| panic!("checked program assigns unbound `{}`", name.name));
                let v = self.expr(value);
                match slot {
                    Slot::Reg { r: dst, is_bool } => {
                        let src = self.reg_of(v);
                        // Ints keep the variable's width; bools just move.
                        if is_bool {
                            self.emit(Instr::Mov { dst, src });
                        } else {
                            self.emit(Instr::StoreMasked { dst, src });
                        }
                    }
                    Slot::Obj(dst) => {
                        let src = match v {
                            Val::Obj { o, .. } => o,
                            other => panic!("checked program assigns {other:?} to an event"),
                        };
                        self.emit(Instr::ObjCopy { dst, src });
                    }
                    Slot::ArrayRef(_) | Slot::Void => {
                        panic!("checked program assigns to `{}`", name.name)
                    }
                }
                self.release(v);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.expr(cond);
                let jz = self.emit(Instr::Jz {
                    cond: self.reg_of(c),
                    to: 0xFFFF,
                });
                self.release(c);
                // Branch-local declarations must not leak bindings into
                // the untaken path's compilation (the checker scopes
                // them lexically; the runtime env never observes a leak
                // because only one branch executes).
                let saved = self.frames.last().expect("frame").vars.clone();
                self.block(then_blk);
                if let Some(e) = else_blk {
                    let jend = self.emit(Instr::Jmp { to: 0xFFFF });
                    self.patch(jz);
                    self.frames.last_mut().expect("frame").vars = saved.clone();
                    self.block(e);
                    self.patch(jend);
                } else {
                    self.patch(jz);
                }
                self.frames.last_mut().expect("frame").vars = saved;
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let v = self.expr(e);
                let obj = self.owned_obj(v);
                self.emit(Instr::Generate { obj });
                self.objs.put(obj);
            }
            StmtKind::Return(val) => {
                let v = val.as_ref().map(|e| self.expr(e));
                let in_fun = self.frames.last().expect("frame").ret.is_some();
                if !in_fun {
                    // Handler-level return: evaluate (for effects) and stop.
                    if let Some(v) = v {
                        self.release(v);
                    }
                    self.emit(Instr::Halt);
                    return;
                }
                if let Some(v) = v {
                    let slot = self
                        .frames
                        .last()
                        .expect("frame")
                        .ret
                        .as_ref()
                        .expect("fun")
                        .slot;
                    match (slot, v) {
                        (Slot::Reg { r: dst, .. }, Val::Reg { r: src, .. }) => {
                            self.emit(Instr::Mov { dst, src });
                        }
                        (Slot::Obj(dst), Val::Obj { o: src, .. }) => {
                            self.emit(Instr::ObjCopy { dst, src });
                        }
                        (Slot::Void, _) | (_, Val::Void) => {}
                        (s, v) => panic!("checked function returns {v:?} into {s:?}"),
                    }
                    self.release(v);
                }
                let j = self.emit(Instr::Jmp { to: 0xFFFF });
                self.frames
                    .last_mut()
                    .expect("frame")
                    .ret
                    .as_mut()
                    .expect("fun")
                    .jumps
                    .push(j);
            }
            StmtKind::Printf { fmt, args } => {
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
                let pargs: Box<[PrintArg]> = vals
                    .iter()
                    .map(|v| match *v {
                        Val::Reg { r, is_bool, .. } => PrintArg { reg: r, is_bool },
                        other => panic!("checked printf arg {other:?}"),
                    })
                    .collect();
                let fmt = self.pools.fmt_id(fmt);
                self.emit(Instr::Printf { fmt, args: pargs });
                for v in vals {
                    self.release(v);
                }
            }
            StmtKind::Expr(e) => {
                let v = self.expr(e);
                self.release(v);
            }
        }
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::Int { value, width } => {
                let w = width.unwrap_or(32);
                let dst = self.regs.get();
                self.emit(Instr::Const {
                    dst,
                    imm: mask(*value, w),
                    w,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Bool(b) => {
                let dst = self.regs.get();
                self.emit(Instr::Const {
                    dst,
                    imm: *b as u64,
                    w: 1,
                });
                Val::Reg {
                    r: dst,
                    is_bool: true,
                    temp: true,
                }
            }
            ExprKind::Var(id) => self.var(id),
            ExprKind::Unary { op, arg } => {
                let v = self.expr(arg);
                let src = self.reg_of(v);
                self.release(v);
                let dst = self.regs.get();
                let is_bool = match op {
                    UnOp::Not => {
                        self.emit(Instr::Not { dst, src });
                        true
                    }
                    UnOp::Neg => {
                        self.emit(Instr::Neg { dst, src });
                        false
                    }
                    UnOp::BitNot => {
                        self.emit(Instr::BitNot { dst, src });
                        false
                    }
                };
                Val::Reg {
                    r: dst,
                    is_bool,
                    temp: true,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            ExprKind::Cast { width, arg } => {
                let v = self.expr(arg);
                let src = self.reg_of(v);
                self.release(v);
                let dst = self.regs.get();
                self.emit(Instr::MaskW {
                    dst,
                    src,
                    w: *width,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Hash { width, args } => {
                let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
                let regs: Box<[u16]> = vals.iter().map(|v| self.reg_of(*v)).collect();
                for v in vals {
                    self.release(v);
                }
                let dst = self.regs.get();
                self.emit(Instr::Hash {
                    dst,
                    w: *width,
                    args: regs,
                });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            ExprKind::Call { callee, args } => self.call(callee, args),
            ExprKind::BuiltinCall { builtin, args, .. } => self.builtin(*builtin, args),
        }
    }

    fn var(&mut self, id: &Ident) -> Val {
        if let Some(slot) = self.frames.last().expect("frame").vars.get(&id.name) {
            return match *slot {
                Slot::Reg { r, is_bool } => Val::Reg {
                    r,
                    is_bool,
                    temp: false,
                },
                Slot::Obj(o) => Val::Obj { o, temp: false },
                // The walker binds array params as their global id.
                Slot::ArrayRef(gid) => {
                    let dst = self.regs.get();
                    self.emit(Instr::Const {
                        dst,
                        imm: gid.0 as u64,
                        w: 32,
                    });
                    Val::Reg {
                        r: dst,
                        is_bool: false,
                        temp: true,
                    }
                }
                Slot::Void => Val::Void,
            };
        }
        if id.name == "SELF" {
            let dst = self.regs.get();
            self.emit(Instr::LoadSelf { dst });
            return Val::Reg {
                r: dst,
                is_bool: false,
                temp: true,
            };
        }
        if let Some(c) = self.prog.info.consts.get(&id.name) {
            let (imm, w, is_bool) = match c.ty {
                Ty::Bool => ((c.value != 0) as u64, 1, true),
                Ty::Int(w) => (c.value, w, false),
                _ => (c.value, 32, false),
            };
            let dst = self.regs.get();
            self.emit(Instr::Const { dst, imm, w });
            return Val::Reg {
                r: dst,
                is_bool,
                temp: true,
            };
        }
        if let Some(g) = self.prog.info.groups.get(&id.name) {
            let members = g.members.clone();
            let group = self.pools.group_id(&id.name, &members);
            let dst = self.objs.get();
            self.emit(Instr::LoadGroup { dst, group });
            return Val::Obj { o: dst, temp: true };
        }
        panic!("checked program has unbound var `{}`", id.name)
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Val {
        // The logical connectives short-circuit, exactly as the walker
        // does: the right operand must not run when the left decides.
        if op == BinOp::And || op == BinOp::Or {
            let dst = self.regs.get();
            let l = self.expr(lhs);
            self.emit(Instr::BoolOf {
                dst,
                src: self.reg_of(l),
            });
            self.release(l);
            let j = if op == BinOp::And {
                self.emit(Instr::Jz {
                    cond: dst,
                    to: 0xFFFF,
                })
            } else {
                self.emit(Instr::Jnz {
                    cond: dst,
                    to: 0xFFFF,
                })
            };
            let r = self.expr(rhs);
            self.emit(Instr::BoolOf {
                dst,
                src: self.reg_of(r),
            });
            self.release(r);
            self.patch(j);
            return Val::Reg {
                r: dst,
                is_bool: true,
                temp: true,
            };
        }
        let l = self.expr(lhs);
        let r = self.expr(rhs);
        let (a, b) = (self.reg_of(l), self.reg_of(r));
        self.release(l);
        self.release(r);
        let dst = self.regs.get();
        if op.is_comparison() {
            self.emit(Instr::Cmp { op, dst, a, b });
            Val::Reg {
                r: dst,
                is_bool: true,
                temp: true,
            }
        } else {
            self.emit(Instr::Bin { op, dst, a, b });
            Val::Reg {
                r: dst,
                is_bool: false,
                temp: true,
            }
        }
    }

    /// Event construction, or a user function inlined at this call site.
    fn call(&mut self, callee: &Ident, args: &[Expr]) -> Val {
        if let Some(ev) = self.prog.info.event(&callee.name) {
            let event_id = ev.id as u32;
            let vals: Vec<Val> = args.iter().map(|a| self.expr(a)).collect();
            let regs: Box<[u16]> = vals.iter().map(|v| self.reg_of(*v)).collect();
            for v in vals {
                self.release(v);
            }
            let dst = self.objs.get();
            self.emit(Instr::MkEvent {
                dst,
                event_id,
                args: regs,
            });
            return Val::Obj { o: dst, temp: true };
        }

        let (ret_ty, params, body) = self
            .prog
            .fun_body(&callee.name)
            .unwrap_or_else(|| panic!("checked program calls unknown `{}`", callee.name));
        let (ret_ty, params, body) = (*ret_ty, params.clone(), body.clone());
        self.depth += 1;
        assert!(self.depth <= 64, "function inlining depth exceeded");

        // Bind arguments in declaration order, evaluating value args in
        // the caller's frame and pushing array bindings onto the dynamic
        // stack as they resolve (the same interleaving the walker uses).
        let array_stack_mark = self.array_stack.len();
        let mut vars = HashMap::new();
        for (p, a) in params.iter().zip(args) {
            let slot = match p.ty {
                Ty::Array(_) => {
                    let gid = self.resolve_array(a);
                    self.array_stack.push((p.name.name.clone(), gid));
                    Slot::ArrayRef(gid)
                }
                _ => {
                    let v = self.expr(a);
                    self.bind_value(v)
                }
            };
            vars.insert(p.name.name.clone(), slot);
        }
        let ret_slot = match ret_ty {
            Ty::Void => Slot::Void,
            Ty::Event | Ty::Group => Slot::Obj(self.objs.get()),
            Ty::Bool => Slot::Reg {
                r: self.regs.get(),
                is_bool: true,
            },
            _ => Slot::Reg {
                r: self.regs.get(),
                is_bool: false,
            },
        };
        self.frames.push(Frame {
            vars,
            ret: Some(RetCtx {
                slot: ret_slot,
                jumps: Vec::new(),
            }),
        });
        self.block(&body);
        let frame = self.frames.pop().expect("fun frame");
        for j in frame.ret.expect("fun").jumps {
            self.patch(j);
        }
        self.array_stack.truncate(array_stack_mark);
        self.depth -= 1;
        match ret_slot {
            Slot::Reg { r, is_bool } => Val::Reg {
                r,
                is_bool,
                temp: true,
            },
            Slot::Obj(o) => Val::Obj { o, temp: true },
            _ => Val::Void,
        }
    }

    /// Resolve an array-position name the way the walker's
    /// `resolve_array` does: innermost binding on the dynamic
    /// array-parameter stack first (spanning *all* live activations,
    /// not just the current frame), then the globals.
    fn resolve_array(&self, e: &Expr) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => {
                if let Some((_, gid)) = self
                    .array_stack
                    .iter()
                    .rev()
                    .find(|(name, _)| *name == id.name)
                {
                    return *gid;
                }
                self.prog.info.globals_by_name[&id.name]
            }
            _ => panic!("checked: array argument is a name"),
        }
    }

    fn memop_id(&mut self, e: &Expr) -> u16 {
        let ExprKind::Var(id) = &e.kind else {
            panic!("checked: memop position holds a name")
        };
        let ir = self.prog.memops[&id.name].clone();
        self.pools.memop_id(&ir)
    }

    fn builtin(&mut self, builtin: Builtin, args: &[Expr]) -> Val {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let gid = self.resolve_array(&args[0]).0 as u32;
                let iv = self.expr(&args[1]);
                let idx = self.reg_of(iv);
                // The walker bounds-checks before evaluating any memop
                // argument; keeping that order keeps error runs
                // bit-identical too.
                self.emit(Instr::ArrCheck { gid, idx });
                let out = match builtin {
                    Builtin::ArrayGet => {
                        let dst = self.regs.get();
                        self.emit(Instr::ArrGet { dst, gid, idx });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    Builtin::ArrayGetm => {
                        let memop = self.memop_id(&args[2]);
                        let lv = self.expr(&args[3]);
                        let local = self.reg_of(lv);
                        self.release(lv);
                        let dst = self.regs.get();
                        self.emit(Instr::ArrGetm {
                            dst,
                            gid,
                            idx,
                            memop,
                            local,
                        });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    Builtin::ArraySet => {
                        let vv = self.expr(&args[2]);
                        let val = self.reg_of(vv);
                        self.release(vv);
                        self.emit(Instr::ArrSet { gid, idx, val });
                        Val::Void
                    }
                    Builtin::ArraySetm => {
                        let memop = self.memop_id(&args[2]);
                        let lv = self.expr(&args[3]);
                        let local = self.reg_of(lv);
                        self.release(lv);
                        self.emit(Instr::ArrSetm {
                            gid,
                            idx,
                            memop,
                            local,
                        });
                        Val::Void
                    }
                    Builtin::ArrayUpdate => {
                        let getop = self.memop_id(&args[2]);
                        let gv = self.expr(&args[3]);
                        let setop = self.memop_id(&args[4]);
                        let sv = self.expr(&args[5]);
                        let (getarg, setarg) = (self.reg_of(gv), self.reg_of(sv));
                        self.release(gv);
                        self.release(sv);
                        let dst = self.regs.get();
                        self.emit(Instr::ArrUpdate {
                            dst,
                            gid,
                            idx,
                            getop,
                            getarg,
                            setop,
                            setarg,
                        });
                        Val::Reg {
                            r: dst,
                            is_bool: false,
                            temp: true,
                        }
                    }
                    _ => unreachable!(),
                };
                self.release(iv);
                out
            }
            Builtin::EventDelay | Builtin::EventLocate => {
                let ev = self.expr(&args[0]);
                let obj = self.owned_obj(ev);
                let av = self.expr(&args[1]);
                let arg = self.reg_of(av);
                self.release(av);
                if builtin == Builtin::EventDelay {
                    self.emit(Instr::EvDelay { obj, us: arg });
                } else {
                    self.emit(Instr::EvLocate { obj, loc: arg });
                }
                Val::Obj { o: obj, temp: true }
            }
            Builtin::EventMLocate => {
                let ev = self.expr(&args[0]);
                let obj = self.owned_obj(ev);
                let gv = self.expr(&args[1]);
                let group = match gv {
                    Val::Obj { o, .. } => o,
                    other => panic!("checked: group argument, got {other:?}"),
                };
                self.emit(Instr::EvMLocate { obj, group });
                self.release(gv);
                Val::Obj { o: obj, temp: true }
            }
            Builtin::SysTime => {
                let dst = self.regs.get();
                self.emit(Instr::LoadTime { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            Builtin::SysSelf => {
                let dst = self.regs.get();
                self.emit(Instr::LoadSelf { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
            Builtin::SysPort => {
                let dst = self.regs.get();
                self.emit(Instr::LoadPort { dst });
                Val::Reg {
                    r: dst,
                    is_bool: false,
                    temp: true,
                }
            }
        }
    }
}
