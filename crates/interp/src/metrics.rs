//! Deterministic per-event-class latency metrics.
//!
//! Every live dispatch records two virtual-time measurements into the
//! shard that ran it, keyed by event class (event name × switch):
//!
//! * **dispatch latency** — nanoseconds elapsed from the *root* external
//!   injection of the event's causal chain to this dispatch. Recorded for
//!   *derived* (handler-generated) events only: an injected packet is its
//!   own root, so its latency would always be 0 and generator-driven runs
//!   would report all-zero tails. A handler-generated event inherits its
//!   cause's root, so a recirculate-then-report chain shows the full
//!   pipeline traversal time.
//! * **queue residency** — nanoseconds the event itself spent in flight:
//!   its dispatch instant minus the instant it was scheduled
//!   (recirculation/wire latency plus any `Event.delay`; 0 for external
//!   injections, which are scheduled at their own arrival instant).
//!
//! Both measurements are pure functions of the deterministic event
//! [`Key`](crate::machine) order, never of wall time or engine choice, so
//! the sequential and sharded engines produce **bit-identical** metrics —
//! [`Metrics::digest`] joins `state_digest` as a cross-engine equality
//! check, and the differential suites assert it.
//!
//! Samples land in [`Histogram`]s: log-bucketed (one bucket per power of
//! two) with exact `count`/`sum`/`min`/`max` sidecars. Recording is two
//! array increments and a handful of integer ops — no locks, no
//! allocation, no hashing — accumulated per shard and merged once at run
//! end, mirroring the `per_event_ids` counter pattern. Histogram merge is
//! element-wise addition, so any merge order yields the same result.
//!
//! Percentiles ([`Histogram::quantile`]) interpolate linearly inside the
//! selected bucket in pure integer arithmetic, clamped by the exact
//! min/max, so a report's p50/p90/p99/p999 are engine-independent too.

use crate::scenario::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `buckets[0]` counts zeros; `buckets[b]` (1..=64) counts values with
/// bit-length `b`, i.e. the range `[2^(b-1), 2^b - 1]`.
const BUCKETS: usize = 65;

/// A log-bucketed fixed-bin histogram of `u64` samples (virtual
/// nanoseconds). One bucket per power of two keeps recording O(1) with a
/// bounded footprint at any value range, while the exact `min`/`max`
/// bounds make small histograms (the common scenario case) exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// Wrapping sum of all samples (overflow is deterministic and merges
    /// commute, which is all the digest needs).
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket a value lands in: 0 for 0, else its bit length.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound of bucket `b` (inclusive).
    fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Upper bound of bucket `b` (inclusive).
    fn bucket_hi(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample. O(1), allocation-free — this is the dispatch
    /// hot path.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold `other` into `self`. Element-wise addition: commutative and
    /// associative, so shard merge order cannot change the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 on an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `num/den` quantile (e.g. `quantile(99, 100)` for p99), in pure
    /// integer arithmetic so every engine and platform agrees bit-for-bit:
    /// pick the sample of rank `ceil(count * num / den)` (clamped to
    /// `[1, count]`), then interpolate linearly across its bucket's value
    /// range, tightened by the exact global min/max. Empty histograms
    /// report 0; a single sample reports itself at every quantile.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank =
            ((self.count as u128 * num as u128).div_ceil(den as u128)).clamp(1, self.count as u128);
        let mut before: u128 = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if before + n as u128 >= rank {
                // `k`-th sample of this bucket (1-based), interpolated
                // over the bucket's clamped value range.
                let k = (rank - before) as u64;
                let lo = Self::bucket_lo(b).max(self.min);
                let hi = Self::bucket_hi(b).min(self.max);
                let span = (hi - lo) as u128;
                // k=1 → lo, k=n → hi: the bucket's top rank reaches its
                // ceiling, so quantile(1, 1) of the last bucket == max.
                let denom = u128::from(n - 1).max(1);
                return lo + ((span * (k - 1) as u128) / denom) as u64;
            }
            before += n as u128;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(90, 100)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }

    /// Mix this histogram's observable content into an FNV-1a state.
    fn digest_into(&self, mix: &mut impl FnMut(u64)) {
        mix(self.count);
        mix(self.sum);
        mix(self.min());
        mix(self.max);
        for &b in &self.buckets {
            mix(b);
        }
    }

    /// The four tail percentiles as a JSON fragment (plus exact bounds).
    fn stats_json(&self) -> String {
        format!(
            "{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"min\":{},\"max\":{}}}",
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.min(),
            self.max()
        )
    }
}

/// The two per-class histograms every dispatch feeds, plus the exact
/// dispatch count.
///
/// The count is explicit rather than `dispatch.count()` because the two
/// measure different populations: every live dispatch counts (and records
/// queue residency), but only *derived* events — handler-generated, class
/// 1 — record a dispatch-latency sample. An external injection is its own
/// causal root, so its latency would always be the meaningless constant 0
/// and, at generator-driven volumes, would drown the tail of the chains
/// the metric exists to measure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassHists {
    /// Events dispatched (handled + exported).
    pub count: u64,
    /// Root-injection-to-dispatch latency of derived events.
    pub dispatch: Histogram,
    /// Enqueue-to-dispatch residency.
    pub residency: Histogram,
}

impl ClassHists {
    fn merge(&mut self, other: &ClassHists) {
        self.count += other.count;
        self.dispatch.merge(&other.dispatch);
        self.residency.merge(&other.residency);
    }

    /// Snapshot encoding: count, then both histograms in full (the
    /// non-zero buckets as sparse `(index, count)` pairs — latency
    /// histograms of one event class rarely span more than a handful of
    /// powers of two).
    pub(crate) fn encode(&self, w: &mut crate::snap::Writer) {
        w.u64(self.count);
        for h in [&self.dispatch, &self.residency] {
            w.u64(h.count);
            w.u64(h.sum);
            w.u64(h.min);
            w.u64(h.max);
            let nonzero: Vec<(usize, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (i, n))
                .collect();
            w.u64(nonzero.len() as u64);
            for (i, n) in nonzero {
                w.u32(i as u32);
                w.u64(n);
            }
        }
    }

    pub(crate) fn decode(
        r: &mut crate::snap::Reader<'_>,
    ) -> Result<ClassHists, crate::snap::SnapError> {
        let count = r.u64()?;
        let mut hists = [Histogram::default(), Histogram::default()];
        for h in &mut hists {
            h.count = r.u64()?;
            h.sum = r.u64()?;
            h.min = r.u64()?;
            h.max = r.u64()?;
            let n = r.len(12, "histogram buckets")?;
            for _ in 0..n {
                let i = r.u32()? as usize;
                if i >= BUCKETS {
                    return Err(r.err(format!("bucket index {i} out of range")));
                }
                h.buckets[i] = r.u64()?;
            }
        }
        let [dispatch, residency] = hists;
        Ok(ClassHists {
            count,
            dispatch,
            residency,
        })
    }
}

/// A shard's collector: one [`ClassHists`] per event id, indexed exactly
/// like `per_event_ids`. Zero locks and zero allocation on the dispatch
/// path; the driver folds it into the interpreter-level [`Metrics`] once
/// per run.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardMetrics {
    pub(crate) per_event: Vec<ClassHists>,
}

impl ShardMetrics {
    pub(crate) fn new(events: usize) -> Self {
        ShardMetrics {
            per_event: vec![ClassHists::default(); events],
        }
    }

    /// Record one dispatch. `event_id` indexes the program's event pool;
    /// `dispatch_ns` is `None` for external injections (their own causal
    /// root — no latency sample, see [`ClassHists`]).
    #[inline]
    pub(crate) fn record(&mut self, event_id: usize, dispatch_ns: Option<u64>, residency_ns: u64) {
        let h = &mut self.per_event[event_id];
        h.count += 1;
        if let Some(d) = dispatch_ns {
            h.dispatch.record(d);
        }
        h.residency.record(residency_ns);
    }
}

/// One event class (event name × switch) with its merged histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMetrics {
    pub switch: u64,
    pub event: String,
    pub hists: ClassHists,
}

impl ClassMetrics {
    /// Events dispatched in this class (handled + exported; dropped
    /// events never dispatch and are not measured).
    pub fn count(&self) -> u64 {
        self.hists.count
    }
}

/// The merged, engine-independent metrics of one simulation run: every
/// event class in (switch, event-name) order. Built by the interpreter at
/// run end from the per-shard collectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Sorted by (switch, event name); only classes with at least one
    /// dispatch appear.
    pub classes: Vec<ClassMetrics>,
}

impl Metrics {
    /// Fold one shard's per-event histograms into the accumulator map
    /// (keyed for deterministic order), zeroing the shard's collectors.
    pub(crate) fn absorb_shard(
        acc: &mut BTreeMap<(u64, String), ClassHists>,
        switch: u64,
        shard: &mut ShardMetrics,
        event_name: impl Fn(usize) -> String,
    ) {
        for (id, h) in shard.per_event.iter_mut().enumerate() {
            if h.count == 0 {
                continue;
            }
            acc.entry((switch, event_name(id))).or_default().merge(h);
            *h = ClassHists::default();
        }
    }

    pub(crate) fn from_acc(acc: &BTreeMap<(u64, String), ClassHists>) -> Metrics {
        Metrics {
            classes: acc
                .iter()
                .map(|((switch, event), hists)| ClassMetrics {
                    switch: *switch,
                    event: event.clone(),
                    hists: hists.clone(),
                })
                .collect(),
        }
    }

    /// Look up one class.
    pub fn class(&self, switch: u64, event: &str) -> Option<&ClassMetrics> {
        self.classes
            .iter()
            .find(|c| c.switch == switch && c.event == event)
    }

    /// Merge every switch's histograms for `event` into one pair (for
    /// assertions that do not pin a switch). `None` when no switch
    /// dispatched the event.
    pub fn aggregate_event(&self, event: &str) -> Option<ClassHists> {
        let mut out: Option<ClassHists> = None;
        for c in self.classes.iter().filter(|c| c.event == event) {
            out.get_or_insert_with(ClassHists::default).merge(&c.hists);
        }
        out
    }

    /// Every class merged into one histogram pair — the run's overall
    /// latency profile (what the benches floor). `None` on an empty run.
    pub fn overall(&self) -> Option<ClassHists> {
        let mut out: Option<ClassHists> = None;
        for c in &self.classes {
            out.get_or_insert_with(ClassHists::default).merge(&c.hists);
        }
        out
    }

    /// FNV-1a over every class's name, switch, and full histogram
    /// content, in sorted class order. Two runs agree on this exactly
    /// when their metrics are bit-identical — the engine-determinism
    /// check, same contract as `state_digest`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for i in 0..8 {
                h ^= (x >> (8 * i)) & 0xff;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for c in &self.classes {
            mix(c.switch);
            for byte in c.event.as_bytes() {
                mix(u64::from(*byte));
            }
            mix(c.hists.count);
            c.hists.dispatch.digest_into(&mut mix);
            c.hists.residency.digest_into(&mut mix);
        }
        h
    }

    /// The machine-readable form embedded in `lucidc sim --json` (and
    /// printed alone by `--metrics=json`).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"switch\":{},\"event\":\"{}\",\"count\":{},\
                     \"latency_ns\":{},\"residency_ns\":{}}}",
                    c.switch,
                    json_escape(&c.event),
                    c.count(),
                    c.hists.dispatch.stats_json(),
                    c.hists.residency.stats_json()
                )
            })
            .collect();
        format!(
            "{{\"digest\":\"{:016x}\",\"classes\":[{}]}}",
            self.digest(),
            classes.join(",")
        )
    }

    /// Human-readable percentile table (`lucidc sim --metrics`).
    pub fn render(&self) -> String {
        if self.classes.is_empty() {
            return "metrics: no events dispatched\n".to_string();
        }
        let mut out = String::from(
            "metrics (virtual ns; latency = root injection to dispatch, \
             residency = enqueue to dispatch):\n",
        );
        let _ = writeln!(
            out,
            "  {:<4} {:<16} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>8} {:>8}",
            "sw", "event", "count", "lat p50", "p90", "p99", "p999", "max", "res p99", "max"
        );
        for c in &self.classes {
            let d = &c.hists.dispatch;
            let r = &c.hists.residency;
            let _ = writeln!(
                out,
                "  {:<4} {:<16} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>8} {:>8}",
                c.switch,
                c.event,
                c.count(),
                d.p50(),
                d.p90(),
                d.p99(),
                d.p999(),
                d.max(),
                r.p99(),
                r.max()
            );
        }
        let _ = writeln!(out, "  metrics digest: {:016x}", self.digest());
        out
    }
}

/// Which scalar a scenario `metrics` assertion reads off a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricSel {
    Count,
    LatencyP50,
    LatencyP90,
    LatencyP99,
    LatencyP999,
    LatencyMin,
    LatencyMax,
    ResidencyP50,
    ResidencyP90,
    ResidencyP99,
    ResidencyP999,
    ResidencyMin,
    ResidencyMax,
}

impl MetricSel {
    /// Parse a scenario `metric` field. The accepted names are the
    /// `--json` field paths flattened with `_`.
    pub fn parse(s: &str) -> Option<MetricSel> {
        Some(match s {
            "count" => MetricSel::Count,
            "latency_p50_ns" => MetricSel::LatencyP50,
            "latency_p90_ns" => MetricSel::LatencyP90,
            "latency_p99_ns" => MetricSel::LatencyP99,
            "latency_p999_ns" => MetricSel::LatencyP999,
            "latency_min_ns" => MetricSel::LatencyMin,
            "latency_max_ns" => MetricSel::LatencyMax,
            "residency_p50_ns" => MetricSel::ResidencyP50,
            "residency_p90_ns" => MetricSel::ResidencyP90,
            "residency_p99_ns" => MetricSel::ResidencyP99,
            "residency_p999_ns" => MetricSel::ResidencyP999,
            "residency_min_ns" => MetricSel::ResidencyMin,
            "residency_max_ns" => MetricSel::ResidencyMax,
            _ => return None,
        })
    }

    /// The canonical spelling (inverse of [`MetricSel::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            MetricSel::Count => "count",
            MetricSel::LatencyP50 => "latency_p50_ns",
            MetricSel::LatencyP90 => "latency_p90_ns",
            MetricSel::LatencyP99 => "latency_p99_ns",
            MetricSel::LatencyP999 => "latency_p999_ns",
            MetricSel::LatencyMin => "latency_min_ns",
            MetricSel::LatencyMax => "latency_max_ns",
            MetricSel::ResidencyP50 => "residency_p50_ns",
            MetricSel::ResidencyP90 => "residency_p90_ns",
            MetricSel::ResidencyP99 => "residency_p99_ns",
            MetricSel::ResidencyP999 => "residency_p999_ns",
            MetricSel::ResidencyMin => "residency_min_ns",
            MetricSel::ResidencyMax => "residency_max_ns",
        }
    }

    /// Every accepted name, for schema error messages.
    pub fn all_labels() -> &'static [&'static str] {
        &[
            "count",
            "latency_p50_ns",
            "latency_p90_ns",
            "latency_p99_ns",
            "latency_p999_ns",
            "latency_min_ns",
            "latency_max_ns",
            "residency_p50_ns",
            "residency_p90_ns",
            "residency_p99_ns",
            "residency_p999_ns",
            "residency_min_ns",
            "residency_max_ns",
        ]
    }

    /// Evaluate this selector against a class's histogram pair.
    pub fn read(self, hists: &ClassHists) -> u64 {
        let (h, q) = match self {
            MetricSel::Count => return hists.count,
            MetricSel::LatencyP50 => (&hists.dispatch, (50, 100)),
            MetricSel::LatencyP90 => (&hists.dispatch, (90, 100)),
            MetricSel::LatencyP99 => (&hists.dispatch, (99, 100)),
            MetricSel::LatencyP999 => (&hists.dispatch, (999, 1000)),
            MetricSel::LatencyMin => return hists.dispatch.min(),
            MetricSel::LatencyMax => return hists.dispatch.max(),
            MetricSel::ResidencyP50 => (&hists.residency, (50, 100)),
            MetricSel::ResidencyP90 => (&hists.residency, (90, 100)),
            MetricSel::ResidencyP99 => (&hists.residency, (99, 100)),
            MetricSel::ResidencyP999 => (&hists.residency, (999, 1000)),
            MetricSel::ResidencyMin => return hists.residency.min(),
            MetricSel::ResidencyMax => return hists.residency.max(),
        };
        h.quantile(q.0, q.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket; each power of two opens a new one.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 1..=64usize {
            // Every bucket's bounds round-trip through bucket_of.
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
        }
        assert_eq!(Histogram::bucket_hi(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.p50(), h.p99(), h.p999()), (0, 0, 0));
        assert_eq!((h.min(), h.max()), (0, 0));
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        // The exact min/max clamp collapses the bucket's range to the
        // one recorded value.
        for v in [0u64, 1, 7, 600, 1_000_000, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for (n, d) in [(1, 100), (50, 100), (99, 100), (999, 1000), (1, 1)] {
                assert_eq!(h.quantile(n, d), v, "q{n}/{d} of single sample {v}");
            }
            assert_eq!((h.min(), h.max()), (v, v));
        }
    }

    #[test]
    fn saturated_bucket_interpolates_within_clamped_range() {
        // 1000 samples all in bucket [512, 1023], clamped to [600, 1000]:
        // quantiles spread linearly over the clamped span and stay inside.
        let mut h = Histogram::new();
        h.record(600);
        h.record(1000);
        for _ in 0..998 {
            h.record(800);
        }
        let (p50, p99) = (h.p50(), h.p99());
        assert!((600..=1000).contains(&p50), "p50 = {p50}");
        assert!((600..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 < p99, "interpolation is monotone: {p50} vs {p99}");
        assert_eq!(h.quantile(1, 1), 1000, "top rank reaches the exact max");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 600, 600, 601, 4096, 100_000] {
            h.record(v);
        }
        let qs: Vec<u64> = [(1, 100), (25, 100), (50, 100), (90, 100), (99, 100)]
            .iter()
            .map(|&(n, d)| h.quantile(n, d))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "monotone: {qs:?}");
        }
        assert!(qs[0] >= h.min() && qs[4] <= h.max());
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        // The shard-merge contract in miniature: recording a stream into
        // two halves and merging equals recording it all into one.
        let stream: Vec<u64> = (0..500).map(|i| (i * 37) % 10_000).collect();
        let mut whole = Histogram::new();
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in stream.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&b); // merge order must not matter
        merged.merge(&a);
        assert_eq!(merged, whole);
    }

    #[test]
    fn digest_tracks_content() {
        let mut m1 = Metrics::default();
        let mut m2 = Metrics::default();
        let mut hists = ClassHists::default();
        hists.dispatch.record(600);
        hists.residency.record(0);
        m1.classes.push(ClassMetrics {
            switch: 1,
            event: "pkt".into(),
            hists: hists.clone(),
        });
        m2.classes.push(ClassMetrics {
            switch: 1,
            event: "pkt".into(),
            hists: hists.clone(),
        });
        assert_eq!(m1.digest(), m2.digest());
        m2.classes[0].hists.dispatch.record(600);
        assert_ne!(m1.digest(), m2.digest());
        m2.classes[0].switch = 2;
        assert_ne!(m1.digest(), m2.digest());
    }

    #[test]
    fn metric_selectors_round_trip_and_read() {
        for label in MetricSel::all_labels() {
            let sel = MetricSel::parse(label).expect("every listed label parses");
            assert_eq!(sel.label(), *label);
        }
        assert_eq!(MetricSel::parse("p99"), None);
        let mut hists = ClassHists::default();
        for v in [100u64, 200, 300] {
            hists.count += 1;
            hists.dispatch.record(v);
            hists.residency.record(v * 2);
        }
        assert_eq!(MetricSel::Count.read(&hists), 3);
        assert_eq!(MetricSel::LatencyMin.read(&hists), 100);
        assert_eq!(MetricSel::LatencyMax.read(&hists), 300);
        assert_eq!(MetricSel::ResidencyMax.read(&hists), 600);
        assert!(MetricSel::LatencyP50.read(&hists) <= MetricSel::LatencyP999.read(&hists));
    }
}
