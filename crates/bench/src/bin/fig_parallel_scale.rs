//! Worker-count scaling of the sharded engine (not a paper figure — it
//! benchmarks this reproduction's parallel interpreter core).
//!
//! Sweeps the sharded/bytecode engine across worker counts on a
//! 16-switch generator-driven mesh and compares every point — state
//! digest, metrics digest, statistics, and per-generator counts —
//! against a sequential-bytecode baseline. Correctness gates first: all
//! runs must be bit-identical and the dispatch-latency p50 must be
//! non-zero (the workload injects causal chains precisely so the tail
//! is meaningful). Then the floor: at one worker the engine runs
//! barrier-free, so sharded must match sequential (>= 1.0x with noise
//! headroom) — parallel machinery may not cost anything when it buys
//! nothing. Scaling above one worker is recorded but only flagged
//! (`monotone`), because on a single-core host every extra worker is
//! pure overhead; CI tracks the curve through `BENCH_PR.json`.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let target = if mode.smoke { 60_000u64 } else { 1_000_000u64 };
    let workers = [1usize, 2, 4, 8];
    // Workers=1 runs the whole stream in one barrier-free round; the
    // floor leaves ~15% for wall-clock noise on a shared box while still
    // catching any real per-dispatch regression in the sharded path.
    let floor_w1 = 0.85;
    let t = lucid_bench::parallel_scale(16, target, &workers);
    assert!(
        t.identical,
        "sequential baseline and sharded worker counts disagree on \
         state/metrics/stats/generator counts — determinism bug"
    );
    assert!(
        t.tail.lat_p50_ns > 0,
        "dispatch-latency p50 is zero — the workload no longer generates causal chains"
    );
    assert!(
        t.speedup_w1 >= floor_w1,
        "sharded at one worker is only {:.2}x sequential (floor {:.2}x)",
        t.speedup_w1,
        floor_w1
    );

    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("workers", r.workers.to_string()),
                    ("events_processed", r.events_processed.to_string()),
                    ("wall_ms", jsonout::f(r.wall_ms)),
                    ("events_per_sec", jsonout::f(r.events_per_sec)),
                    ("speedup", jsonout::f(r.speedup)),
                    (
                        "state_digest",
                        jsonout::s(&format!("{:016x}", r.state_digest)),
                    ),
                ])
            })
            .collect();
        let doc = format!(
            "{{\"figure\":\"fig_parallel_scale\",\"switches\":{},\"target_events\":{},\
             \"identical\":{},\"sequential_events_per_sec\":{},\"speedup_w1\":{},\
             \"monotone\":{},\"available_parallelism\":{},\"latency_tail\":{},\"rows\":[{}]}}",
            t.switches,
            t.target_events,
            t.identical,
            jsonout::f(t.sequential_events_per_sec),
            jsonout::f(t.speedup_w1),
            t.monotone,
            t.available_parallelism,
            t.tail.to_json(),
            rows.join(",")
        );
        println!("{doc}");
        return;
    }

    println!(
        "Parallel scaling — {} switches, {} generator-sourced events per run\n",
        t.switches, t.target_events
    );
    println!(
        "sequential/bytecode baseline: {:.0} events/sec\n",
        t.sequential_events_per_sec
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.events_processed.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &["workers", "events", "wall ms", "events/sec", "speedup"],
            &rows
        )
    );
    println!(
        "\nstate/metrics/stats/generator counts identical across all runs: {}",
        t.identical
    );
    println!("{}", t.tail.render());
    println!(
        "workers=1 over sequential: {:.2}x (gate: >= {:.2}x); \
         monotone above one worker: {} (host available_parallelism: {})",
        t.speedup_w1, floor_w1, t.monotone, t.available_parallelism
    );
}
