//! Simulation throughput: the sequential reference engine vs the sharded
//! epoch-barrier engine on a cross-traffic-heavy switch mesh (not a paper
//! figure — it benchmarks this reproduction's own `lucidc sim` subsystem).
//!
//! Correctness gate first: the two engines must produce byte-identical
//! final array state. Then events/sec. The speedup column reflects the
//! host: with one core the sharded engine only pays barrier overhead;
//! with many it spreads per-switch handler work across the worker pool.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let (switches, injected, ttl) = if mode.smoke { (8, 40, 3) } else { (16, 400, 4) };
    let t = lucid_bench::sim_throughput(switches, injected, ttl, 0);
    assert!(
        t.identical,
        "engines disagree on final array state — determinism bug"
    );

    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("engine", jsonout::s(r.engine)),
                    ("events_processed", r.events_processed.to_string()),
                    ("wall_ms", jsonout::f(r.wall_ms)),
                    ("events_per_sec", jsonout::f(r.events_per_sec)),
                ])
            })
            .collect();
        let doc = format!(
            "{{\"figure\":\"fig_sim_throughput\",\"switches\":{},\"injected_per_switch\":{},\
             \"workers\":{},\"identical\":{},\"speedup\":{},\"rows\":[{}]}}",
            t.switches,
            t.injected_per_switch,
            t.workers,
            t.identical,
            jsonout::f(t.speedup),
            rows.join(",")
        );
        println!("{doc}");
        return;
    }

    println!(
        "Simulation throughput — {} switches, {} injected events/switch, {} workers\n",
        t.switches, t.injected_per_switch, t.workers
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                r.events_processed.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(&["engine", "events", "wall ms", "events/sec"], &rows)
    );
    println!(
        "\nfinal array state identical across engines: {}",
        t.identical
    );
    println!(
        "sharded speedup: {:.2}x ({} worker threads; expect ~1x on single-core hosts)",
        t.speedup, t.workers
    );
}
