//! Simulation throughput: the engine x executor matrix on a
//! cross-traffic-heavy 16-switch mesh (not a paper figure — it
//! benchmarks this reproduction's own `lucidc sim` subsystem).
//!
//! Correctness gate first: all four combinations (sequential/sharded
//! engine x AST-walker/bytecode executor) must produce byte-identical
//! final array state, statistics, traces, printf output, and
//! per-event-class latency metrics. Then
//! events/sec. Two speedups are reported: sharded-over-sequential
//! reflects the host's core count (~1x on single-core boxes), while
//! bytecode-over-AST is the flat-dispatch payoff and must be >= 2x
//! everywhere — CI runs this binary in smoke mode and this assertion is
//! the gate.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let (switches, injected, ttl) = if mode.smoke {
        (16, 100, 3)
    } else {
        (16, 400, 4)
    };
    let t = lucid_bench::sim_throughput(switches, injected, ttl, 0);
    assert!(
        t.identical,
        "engine x exec combinations disagree on state/stats/trace/output/metrics — determinism bug"
    );
    assert!(
        t.bytecode_speedup >= 2.0,
        "bytecode must be at least 2x the AST walker, got {:.2}x",
        t.bytecode_speedup
    );

    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("engine", jsonout::s(r.engine)),
                    ("exec", jsonout::s(r.exec)),
                    ("events_processed", r.events_processed.to_string()),
                    ("wall_ms", jsonout::f(r.wall_ms)),
                    ("events_per_sec", jsonout::f(r.events_per_sec)),
                ])
            })
            .collect();
        let doc = format!(
            "{{\"figure\":\"fig_sim_throughput\",\"switches\":{},\"injected_per_switch\":{},\
             \"workers\":{},\"identical\":{},\"speedup\":{},\"bytecode_speedup\":{},\
             \"latency_tail\":{},\"rows\":[{}]}}",
            t.switches,
            t.injected_per_switch,
            t.workers,
            t.identical,
            jsonout::f(t.speedup),
            jsonout::f(t.bytecode_speedup),
            t.tail.to_json(),
            rows.join(",")
        );
        println!("{doc}");
        return;
    }

    println!(
        "Simulation throughput — {} switches, {} injected events/switch, {} workers\n",
        t.switches, t.injected_per_switch, t.workers
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                r.exec.to_string(),
                r.events_processed.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &["engine", "exec", "events", "wall ms", "events/sec"],
            &rows
        )
    );
    println!(
        "\nstate/stats/trace/printf/metrics identical across the matrix: {}",
        t.identical
    );
    println!("{}", t.tail.render());
    println!(
        "bytecode speedup over the AST walker: {:.2}x (sequential engine)",
        t.bytecode_speedup
    );
    println!(
        "sharded speedup: {:.2}x ({} worker threads; expect ~1x on single-core hosts)",
        t.speedup, t.workers
    );
}
