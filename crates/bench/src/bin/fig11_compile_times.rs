//! Figure 11 stand-in. The paper's Figure 11 is a human study (time for a
//! student without Tofino experience to write each app); developer time
//! cannot be simulated. We print the paper's numbers for reference and
//! report compile+check wall time — the iteration-loop latency a
//! developer actually feels.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure11();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("app", jsonout::s(r.key)),
                    ("compile_time_us", jsonout::f(r.compile_time_us)),
                    (
                        "paper_dev_time",
                        r.paper_dev_time
                            .map_or_else(|| "null".to_string(), jsonout::s),
                    ),
                ])
            })
            .collect();
        jsonout::emit("fig11", &rows);
        return;
    }
    println!("Figure 11 — development time (paper, human study) and compile time (ours)\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                r.paper_dev_time.unwrap_or("-").to_string(),
                format!("{:.1} ms", r.compile_time_us / 1_000.0),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(&["app", "paper dev. time", "our compile+check time"], &rows)
    );
    println!("\nnote: the dev-time study is not reproducible in software (see EXPERIMENTS.md).");
}
