//! Regenerates Figure 13: ALU instructions the compiler mapped to each
//! pipeline stage (mean and max over occupied stages) — the measure of
//! how much instruction-level parallelism the merge/rearrange passes find.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure13();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("app", jsonout::s(r.key)),
                    ("mean_alu_per_stage", jsonout::f(r.mean_alu_per_stage)),
                    ("max_alu_per_stage", r.max_alu_per_stage.to_string()),
                ])
            })
            .collect();
        jsonout::emit("fig13", &rows);
        return;
    }
    println!("Figure 13 — ALU instructions per stage in optimized code\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                format!("{:.1}", r.mean_alu_per_stage),
                r.max_alu_per_stage.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(&["app", "mean ALU/stage", "max ALU/stage"], &rows)
    );
    println!("\npaper: 2-13 statements per stage across the suite.");
}
