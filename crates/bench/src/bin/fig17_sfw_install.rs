//! Regenerates Figure 17: the CDF of stateful-firewall flow installation
//! time, data-plane integrated control (measured in the interpreter, 1000
//! trials, 2048-slot table, load factor 0.3125) vs the remote-control
//! baseline (Mantis latency model).

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let trials = mode.trials(1000, 100);
    let f = lucid_bench::figure17(trials, 2021);
    if mode.json {
        use lucid_bench::jsonout;
        let row = jsonout::obj(&[
            ("trials", trials.to_string()),
            ("integrated_mean_ns", jsonout::f(f.integrated_mean_ns)),
            ("remote_mean_ns", jsonout::f(f.remote_mean_ns)),
            ("speedup", jsonout::f(f.speedup)),
            ("frac_inline", jsonout::f(f.frac_inline)),
        ]);
        jsonout::emit("fig17", &[row]);
        return;
    }
    println!("Figure 17 — SFW flow installation times ({trials} trials)\n");

    println!("integrated control (Lucid):");
    print_cdf(&f.integrated);
    println!("\nremote control (baseline):");
    print_cdf(&f.remote);

    println!("\ninline installs (0 ns): {:.1}%", f.frac_inline * 100.0);
    println!(
        "mean integrated: {:.0} ns   mean remote: {:.0} ns",
        f.integrated_mean_ns, f.remote_mean_ns
    );
    println!(
        "speedup: {:.0}x  (paper: 49 ns vs 17.5 us — over 300x)",
        f.speedup
    );
}

/// Print a compact CDF: the probability at a fixed set of quantile knots.
fn print_cdf(cdf: &[(f64, f64)]) {
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00] {
        let idx = ((cdf.len() as f64 * q).ceil() as usize).min(cdf.len()) - 1;
        println!("  p{:<4} {:>10.0} ns", (q * 100.0) as u32, cdf[idx].0);
    }
}
