//! Regenerates Figure 16: modeled worst-case recirculation overhead for
//! the stateful firewall (N = 2^16 entries, i = 100 ms scan interval) on
//! the idealized PISA processor of §7.3.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure16();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("flow_rate", jsonout::f(r.flow_rate)),
                    ("recirc_rate_pps", jsonout::f(r.recirc_rate_pps)),
                    ("pipeline_utilization", jsonout::f(r.pipeline_utilization)),
                    ("min_pkt_size_bytes", jsonout::f(r.min_pkt_size_bytes)),
                ])
            })
            .collect();
        jsonout::emit("fig16", &rows);
        return;
    }
    println!("Figure 16 — modeled worst-case SFW recirculation overhead");
    println!("(N = 2^16, i = 100 ms; r = N/i + f*log2(N))\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.0}K flows/s", r.flow_rate / 1_000.0),
                format!("{:.0}K pkts/s", r.recirc_rate_pps / 1_000.0),
                format!("{:.2}%", r.pipeline_utilization * 100.0),
                format!("{:.2} B", r.min_pkt_size_bytes),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "flow rate (f)",
                "recirc. rate",
                "pipeline utilization",
                "min. pkt. size"
            ],
            &rows
        )
    );
    println!("\npaper row check: 10K flows/s -> 815K pkts/s, 0.08%, ~125.3 B.");
}
