//! Regenerates Figure 14: recirculation bandwidth and relative timing
//! error of delayed events, continuous recirculation (baseline) vs the
//! PFC-pausable delay queue, for 0..90 concurrent 64 B events on a
//! 100 Gb/s recirculation port.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure14();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|p| {
                jsonout::obj(&[
                    ("events", p.concurrent_events.to_string()),
                    ("baseline_gbps", jsonout::f(p.baseline_gbps)),
                    ("delay_queue_gbps", jsonout::f(p.delay_queue_gbps)),
                    ("baseline_rel_err", jsonout::f(p.baseline_rel_err)),
                    ("delay_queue_rel_err", jsonout::f(p.delay_queue_rel_err)),
                ])
            })
            .collect();
        jsonout::emit("fig14", &rows);
        return;
    }
    println!("Figure 14 — pausable queue overhead and accuracy\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|p| {
            vec![
                p.concurrent_events.to_string(),
                format!("{:.2}", p.baseline_gbps),
                format!("{:.2}", p.delay_queue_gbps),
                format!("{:.4}", p.baseline_rel_err),
                format!("{:.4}", p.delay_queue_rel_err),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "events",
                "baseline Gb/s",
                "delay-queue Gb/s",
                "baseline rel.err",
                "delay-queue rel.err"
            ],
            &rows
        )
    );
    println!("\npaper: baseline saturates (>95 Gb/s at 90 events); delay queue ~5.5 Gb/s —");
    println!("a ~20x bandwidth reduction bought with bounded timing error.");
}
