//! Regenerates the paper's Figure 9: the application table with Lucid
//! LoC, (generated) P4 LoC, and Tofino pipeline stages.

fn main() {
    println!("Figure 9 — applications with data-plane integrated control\n");
    let rows: Vec<Vec<String>> = lucid_bench::figure09()
        .into_iter()
        .map(|r| {
            vec![
                r.app.name.to_string(),
                r.app.control_role.to_string(),
                r.lucid_loc.to_string(),
                r.p4_loc.to_string(),
                r.stages.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "Application",
                "Role of control events",
                "Lucid LoC",
                "P4 LoC",
                "Stages"
            ],
            &rows
        )
    );
    println!("\npaper: Lucid 41-215 LoC, P4 707-2267 LoC, 5-12 stages;");
    println!("the P4 column counts our compiler's output (within ~15% of hand-written P4, §7.1).");
}
