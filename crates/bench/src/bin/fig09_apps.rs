//! Regenerates the paper's Figure 9: the application table with Lucid
//! LoC, (generated) P4 LoC, and Tofino pipeline stages.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure09();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("app", jsonout::s(r.app.key)),
                    ("lucid_loc", r.lucid_loc.to_string()),
                    ("p4_loc", r.p4_loc.to_string()),
                    ("stages", r.stages.to_string()),
                ])
            })
            .collect();
        jsonout::emit("fig09", &rows);
        return;
    }
    println!("Figure 9 — applications with data-plane integrated control\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.app.name.to_string(),
                r.app.control_role.to_string(),
                r.lucid_loc.to_string(),
                r.p4_loc.to_string(),
                r.stages.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "Application",
                "Role of control events",
                "Lucid LoC",
                "P4 LoC",
                "Stages"
            ],
            &rows
        )
    );
    println!("\npaper: Lucid 41-215 LoC, P4 707-2267 LoC, 5-12 stages;");
    println!("the P4 column counts our compiler's output (within ~15% of hand-written P4, §7.1).");
}
