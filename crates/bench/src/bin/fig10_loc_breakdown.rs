//! Regenerates Figure 10: breakdown of the generated P4 by category
//! (actions, register actions, tables, headers, parsers) next to the
//! whole Lucid program's line count.

fn main() {
    println!("Figure 10 — breakdown of P4 code vs Lucid\n");
    let rows: Vec<Vec<String>> = lucid_bench::figure10()
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                r.p4.actions.to_string(),
                r.p4.reg_actions.to_string(),
                r.p4.tables.to_string(),
                r.p4.headers.to_string(),
                r.p4.parsers.to_string(),
                r.p4.control.to_string(),
                r.p4.total().to_string(),
                r.lucid_loc.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "app",
                "P4 Action",
                "P4 RegActions",
                "P4 Tables",
                "P4 Headers",
                "P4 Parsers",
                "P4 Other",
                "P4 Total",
                "Lucid"
            ],
            &rows
        )
    );
    println!("\npaper observation to check: for most apps the whole Lucid program is");
    println!("shorter than the P4 register actions alone (memops are reusable; P4");
    println!("RegisterActions are copied per register).");
}
