//! Regenerates Figure 10: breakdown of the generated P4 by category
//! (actions, register actions, tables, headers, parsers) next to the
//! whole Lucid program's line count.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure10();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("app", jsonout::s(r.key)),
                    ("actions", r.p4.actions.to_string()),
                    ("reg_actions", r.p4.reg_actions.to_string()),
                    ("tables", r.p4.tables.to_string()),
                    ("headers", r.p4.headers.to_string()),
                    ("parsers", r.p4.parsers.to_string()),
                    ("other", r.p4.control.to_string()),
                    ("total", r.p4.total().to_string()),
                    ("lucid_loc", r.lucid_loc.to_string()),
                ])
            })
            .collect();
        jsonout::emit("fig10", &rows);
        return;
    }
    println!("Figure 10 — breakdown of P4 code vs Lucid\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                r.p4.actions.to_string(),
                r.p4.reg_actions.to_string(),
                r.p4.tables.to_string(),
                r.p4.headers.to_string(),
                r.p4.parsers.to_string(),
                r.p4.control.to_string(),
                r.p4.total().to_string(),
                r.lucid_loc.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "app",
                "P4 Action",
                "P4 RegActions",
                "P4 Tables",
                "P4 Headers",
                "P4 Parsers",
                "P4 Other",
                "P4 Total",
                "Lucid"
            ],
            &rows
        )
    );
    println!("\npaper observation to check: for most apps the whole Lucid program is");
    println!("shorter than the P4 register actions alone (memops are reusable; P4");
    println!("RegisterActions are copied per register).");
}
