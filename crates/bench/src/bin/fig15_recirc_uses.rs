//! Regenerates Figure 15: how each application uses recirculation, with
//! the asymptotic recirculation rate per class.

fn main() {
    println!("Figure 15 — recirculation uses in the Figure 9 applications\n");
    let rows: Vec<Vec<String>> = lucid_bench::figure15()
        .into_iter()
        .map(|(class, apps)| {
            vec![
                class.label().to_string(),
                class.rate().to_string(),
                apps.join(", "),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(&["Recirc. use", "Recirc. rate", "Applications"], &rows)
    );
}
