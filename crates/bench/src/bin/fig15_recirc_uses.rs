//! Regenerates Figure 15: how each application uses recirculation, with
//! the asymptotic recirculation rate per class.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure15();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|(class, apps)| {
                let app_list: Vec<String> = apps.iter().map(|a| jsonout::s(a)).collect();
                jsonout::obj(&[
                    ("class", jsonout::s(class.label())),
                    ("rate", jsonout::s(class.rate())),
                    ("apps", format!("[{}]", app_list.join(","))),
                ])
            })
            .collect();
        jsonout::emit("fig15", &rows);
        return;
    }
    println!("Figure 15 — recirculation uses in the Figure 9 applications\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|(class, apps)| {
            vec![
                class.label().to_string(),
                class.rate().to_string(),
                apps.join(", "),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(&["Recirc. use", "Recirc. rate", "Applications"], &rows)
    );
}
