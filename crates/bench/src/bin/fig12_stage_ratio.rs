//! Regenerates Figure 12: optimized vs unoptimized stage count per app
//! (unoptimized = atomic tables on the longest control path, branch
//! tables included), plus the rearrangement ablation.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    let data = lucid_bench::figure12();
    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = data
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("app", jsonout::s(r.key)),
                    ("unoptimized", r.unoptimized_stages.to_string()),
                    ("optimized", r.optimized_stages.to_string()),
                    ("ratio", jsonout::f(r.ratio)),
                    (
                        "no_rearrange",
                        r.no_rearrange_stages
                            .map_or_else(|| "null".to_string(), |n| n.to_string()),
                    ),
                ])
            })
            .collect();
        jsonout::emit("fig12", &rows);
        return;
    }
    println!("Figure 12 — optimized stage count vs unoptimized\n");
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                r.unoptimized_stages.to_string(),
                r.optimized_stages.to_string(),
                format!("{:.2}", r.ratio),
                r.no_rearrange_stages
                    .map_or_else(|| "-".into(), |n| n.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "app",
                "unoptimized",
                "optimized",
                "ratio",
                "no-rearrange (ablation)"
            ],
            &rows
        )
    );
    println!("\npaper: ratios of 1.5-4x, larger for complex apps (*Flow, DNS).");
}
