//! Regenerates Figure 12: optimized vs unoptimized stage count per app
//! (unoptimized = atomic tables on the longest control path, branch
//! tables included), plus the rearrangement ablation.

fn main() {
    println!("Figure 12 — optimized stage count vs unoptimized\n");
    let rows: Vec<Vec<String>> = lucid_bench::figure12()
        .into_iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                r.unoptimized_stages.to_string(),
                r.optimized_stages.to_string(),
                format!("{:.2}", r.ratio),
                r.no_rearrange_stages
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &[
                "app",
                "unoptimized",
                "optimized",
                "ratio",
                "no-rearrange (ablation)"
            ],
            &rows
        )
    );
    println!("\npaper: ratios of 1.5-4x, larger for complex apps (*Flow, DNS).");
}
