//! Serve-layer throughput gate (not a paper figure — it benchmarks this
//! reproduction's `lucidc serve` daemon path).
//!
//! A scripted client pushes events through a live session in batched
//! `ingest` request lines, advancing the engine after every batch, then
//! drains. The measured rate is the full daemon-side cost per event:
//! request JSON parsing, scheduling, simulation, and reply rendering.
//! Correctness gates first: the drained report must be byte-identical
//! (wall-clock fields aside) to a one-shot `sim` run of the same events
//! authored into a scenario — the serve path is not allowed to compute a
//! different run, only to deliver the same one incrementally. CI runs
//! `--smoke` and records the JSON in `BENCH_PR.json`.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    // Floors hold with ~2x headroom on a single-core container; the
    // batched protocol path is dominated by request parsing, so the
    // sustained rate sits well below the raw engine's events/sec.
    let (target, floor_eps) = if mode.smoke {
        (60_000u64, 20_000.0)
    } else {
        (400_000u64, 40_000.0)
    };
    let t = lucid_bench::serve_ingest(4, target, 1_000);
    assert!(
        t.identical,
        "served session diverged from the one-shot run — determinism bug"
    );
    assert!(
        t.events_per_sec >= floor_eps,
        "serve path sustained only {:.0} events/sec (floor {:.0})",
        t.events_per_sec,
        floor_eps
    );

    if mode.json {
        use lucid_bench::jsonout;
        println!(
            "{{\"figure\":\"fig_serve_ingest\",\"switches\":{},\"target_events\":{},\
             \"batch\":{},\"requests\":{},\"identical\":{},\"wall_ms\":{},\
             \"events_per_sec\":{},\"state_digest\":{}}}",
            t.switches,
            t.target_events,
            t.batch,
            t.requests,
            t.identical,
            jsonout::f(t.wall_ms),
            jsonout::f(t.events_per_sec),
            jsonout::s(&format!("{:016x}", t.state_digest)),
        );
        return;
    }

    println!(
        "Serve ingest — {} switches, {} events in batches of {} ({} request lines)\n",
        t.switches, t.target_events, t.batch, t.requests
    );
    println!("served report identical to one-shot sim: {}", t.identical);
    println!(
        "sustained: {:.0} served events/sec ({:.1} wall-ms; gate: >= {:.0})",
        t.events_per_sec, t.wall_ms, floor_eps
    );
}
