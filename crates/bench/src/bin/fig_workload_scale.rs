//! Workload-generator scale gate and bytecode perf-trajectory gate (not
//! a paper figure — it benchmarks this reproduction's streaming
//! generator subsystem and the interpreter's optimizer pipeline).
//!
//! Three seeded sources (zipf flows, uniform background, a 10x attack
//! burst) feed an 8-switch telemetry mesh through the pull-based
//! `EventSource` path, so the full event list is never materialized.
//! Correctness gates first: the engine x executor x opt-level matrix
//! must agree on the final state digest, statistics, and per-generator
//! injection counts (the bytecode rows sweep `--opt=0|1|2`, so an
//! optimizer miscompile cannot hide behind an equally-wrong lowering).
//! Then scale: the full run injects >= 1M events and the slowest
//! combination must sustain a floor of events/sec. Then the trajectory:
//! fully-optimized bytecode must be at least 10x the AST walker — the
//! paper-era interpreter-speed multiplier this repo targets. CI runs
//! `--smoke` and records the JSON (with both speedups) in
//! `BENCH_PR.json`.

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    // Floors hold with ~2x headroom on a single-core container (measured
    // slowest: ~170k eps smoke, ~130k eps full — sharded/ast, where the
    // worker pool is pure overhead without real cores).
    let (target, floor_eps) = if mode.smoke {
        (60_000u64, 20_000.0)
    } else {
        (1_200_000u64, 60_000.0)
    };
    // Measured ~11-13x on a single-core dev container (opt level 2,
    // superinstructions + regalloc, benchmark rows running with trace
    // retention off); the floor leaves noise headroom while still
    // catching any real regression toward the ~5.7x the unoptimized
    // bytecode sits at.
    let floor_speedup = 10.0;
    let t = lucid_bench::workload_scale(8, target, 0);
    assert!(
        t.identical,
        "engine x exec x opt combinations disagree on generator workload state — determinism bug"
    );
    for r in &t.rows {
        assert_eq!(
            r.injected, t.target_events,
            "{}/{}/o{}: expected {} injections, got {}",
            r.engine, r.exec, r.opt, t.target_events, r.injected
        );
    }
    assert!(
        t.tail.lat_p50_ns > 0,
        "dispatch-latency p50 is zero — generator roots must spawn causal \
         chains (ttl > 0) or the recorded latency_tail is meaningless"
    );
    assert!(
        t.min_events_per_sec >= floor_eps,
        "slowest combination sustained only {:.0} events/sec (floor {:.0})",
        t.min_events_per_sec,
        floor_eps
    );
    assert!(
        t.bytecode_speedup >= floor_speedup,
        "optimized bytecode is only {:.2}x the AST walker (floor {:.1}x)",
        t.bytecode_speedup,
        floor_speedup
    );

    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("engine", jsonout::s(r.engine)),
                    ("exec", jsonout::s(r.exec)),
                    // Bare number, matching SimReport::to_json's "opt"
                    // so the recorded artifact stays one type per field.
                    ("opt", r.opt.to_string()),
                    ("events_processed", r.events_processed.to_string()),
                    ("injected", r.injected.to_string()),
                    ("wall_ms", jsonout::f(r.wall_ms)),
                    ("events_per_sec", jsonout::f(r.events_per_sec)),
                    (
                        "state_digest",
                        jsonout::s(&format!("{:016x}", r.state_digest)),
                    ),
                ])
            })
            .collect();
        let doc = format!(
            "{{\"figure\":\"fig_workload_scale\",\"switches\":{},\"target_events\":{},\
             \"identical\":{},\"min_events_per_sec\":{},\"bytecode_speedup\":{},\
             \"opt_speedup\":{},\"latency_tail\":{},\"rows\":[{}]}}",
            t.switches,
            t.target_events,
            t.identical,
            jsonout::f(t.min_events_per_sec),
            jsonout::f(t.bytecode_speedup),
            jsonout::f(t.opt_speedup),
            t.tail.to_json(),
            rows.join(",")
        );
        println!("{doc}");
        return;
    }

    println!(
        "Workload scale — {} switches, {} generator-sourced events per run\n",
        t.switches, t.target_events
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                r.exec.to_string(),
                r.opt.to_string(),
                r.events_processed.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &["engine", "exec", "opt", "events", "wall ms", "events/sec"],
            &rows
        )
    );
    println!(
        "\nstate digest, metrics digest, stats, and per-generator counts identical: {}",
        t.identical
    );
    println!("{}", t.tail.render());
    println!(
        "slowest combination: {:.0} events/sec (gate: >= {:.0})",
        t.min_events_per_sec, floor_eps
    );
    println!(
        "optimized bytecode over the AST walker: {:.2}x (gate: >= {:.1}x); \
         optimizer's own contribution over raw lowering: {:.2}x",
        t.bytecode_speedup, floor_speedup, t.opt_speedup
    );
}
