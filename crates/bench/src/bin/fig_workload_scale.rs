//! Workload-generator scale gate (not a paper figure — it benchmarks
//! this reproduction's streaming generator subsystem).
//!
//! Three seeded sources (zipf flows, uniform background, a 10x attack
//! burst) feed an 8-switch telemetry mesh through the pull-based
//! `EventSource` path, so the full event list is never materialized.
//! Correctness gates first: every engine x executor combination must
//! agree on the final state digest, statistics, and per-generator
//! injection counts. Then scale: the full run injects >= 1M events and
//! the slowest combination must sustain a floor of events/sec. CI runs
//! `--smoke` (a small event count, a proportionally lower floor).

fn main() {
    let mode = lucid_bench::BenchMode::from_args();
    // Floors hold with ~2x headroom on a single-core container (measured
    // slowest: ~170k eps smoke, ~130k eps full — sharded/ast, where the
    // worker pool is pure overhead without real cores).
    let (target, floor_eps) = if mode.smoke {
        (60_000u64, 20_000.0)
    } else {
        (1_200_000u64, 60_000.0)
    };
    let t = lucid_bench::workload_scale(8, target, 0);
    assert!(
        t.identical,
        "engine x exec combinations disagree on generator workload state — determinism bug"
    );
    for r in &t.rows {
        assert_eq!(
            r.injected, t.target_events,
            "{}/{}: expected {} injections, got {}",
            r.engine, r.exec, t.target_events, r.injected
        );
    }
    assert!(
        t.min_events_per_sec >= floor_eps,
        "slowest combination sustained only {:.0} events/sec (floor {:.0})",
        t.min_events_per_sec,
        floor_eps
    );

    if mode.json {
        use lucid_bench::jsonout;
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                jsonout::obj(&[
                    ("engine", jsonout::s(r.engine)),
                    ("exec", jsonout::s(r.exec)),
                    ("events_processed", r.events_processed.to_string()),
                    ("injected", r.injected.to_string()),
                    ("wall_ms", jsonout::f(r.wall_ms)),
                    ("events_per_sec", jsonout::f(r.events_per_sec)),
                    (
                        "state_digest",
                        jsonout::s(&format!("{:016x}", r.state_digest)),
                    ),
                ])
            })
            .collect();
        let doc = format!(
            "{{\"figure\":\"fig_workload_scale\",\"switches\":{},\"target_events\":{},\
             \"identical\":{},\"min_events_per_sec\":{},\"rows\":[{}]}}",
            t.switches,
            t.target_events,
            t.identical,
            jsonout::f(t.min_events_per_sec),
            rows.join(",")
        );
        println!("{doc}");
        return;
    }

    println!(
        "Workload scale — {} switches, {} generator-sourced events per run\n",
        t.switches, t.target_events
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                r.exec.to_string(),
                r.events_processed.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    print!(
        "{}",
        lucid_bench::render_table(
            &["engine", "exec", "events", "wall ms", "events/sec"],
            &rows
        )
    );
    println!(
        "\nstate digest, stats, and per-generator counts identical: {}",
        t.identical
    );
    println!(
        "slowest combination: {:.0} events/sec (gate: >= {:.0})",
        t.min_events_per_sec, floor_eps
    );
}
