//! # lucid-bench
//!
//! The evaluation harness: one function per table/figure in the paper's
//! §7, each returning structured rows that the `fig*` binaries print and
//! the integration tests assert against. Criterion benches in `benches/`
//! measure the compiler and simulators themselves.
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Figure 9 (app table) | [`figure09`] | `fig09_apps` |
//! | Figure 10 (P4 LoC breakdown) | [`figure10`] | `fig10_loc_breakdown` |
//! | Figure 11 (dev time — see note) | [`figure11`] | `fig11_compile_times` |
//! | Figure 12 (stage ratio) | [`figure12`] | `fig12_stage_ratio` |
//! | Figure 13 (ALUs per stage) | [`figure13`] | `fig13_parallelism` |
//! | Figure 14 (delay queue) | [`figure14`] | `fig14_delay_queue` |
//! | Figure 15 (recirc uses) | [`figure15`] | `fig15_recirc_uses` |
//! | Figure 16 (SFW recirc model) | [`figure16`] | `fig16_sfw_model` |
//! | Figure 17 (install time CDF) | [`figure17`] | `fig17_sfw_install` |

#![forbid(unsafe_code)]

use lucid_apps::AppInfo;
use lucid_backend::P4Loc;
use lucid_core::{
    Build, Compiler, Engine, ExecMode, Interp, LayoutOptions, NetConfig, PipelineSpec,
};
use lucid_tofino::{ecdf, figure16_rows, DelayQueue, RecircPort, RemoteControlModel, SfwModelRow};
use std::time::Instant;

/// Shared command-line switches of the `fig*` binaries: `--smoke` shrinks
/// trial counts so CI can afford every binary, `--json` swaps the table
/// for one machine-parseable JSON line (see [`jsonout`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchMode {
    pub smoke: bool,
    pub json: bool,
}

impl BenchMode {
    /// Parse the process arguments, ignoring anything unrecognized (the
    /// binaries have no other flags).
    pub fn from_args() -> BenchMode {
        let mut mode = BenchMode::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--smoke" => mode.smoke = true,
                "--json" => mode.json = true,
                _ => {}
            }
        }
        mode
    }

    /// `full` normally, `quick` under `--smoke`.
    pub fn trials(&self, full: usize, quick: usize) -> usize {
        if self.smoke {
            quick
        } else {
            full
        }
    }
}

/// Just enough JSON writing for `fig* --json` (the workspace builds
/// offline, without serde). Each binary emits one line:
/// `{"figure": "...", "rows": [...]}`.
pub mod jsonout {
    /// Quote and escape a string value.
    pub fn s(v: &str) -> String {
        format!("\"{}\"", lucid_core::json_escape(v))
    }

    /// A float value JSON accepts (`NaN`/`inf` degrade to `null`).
    pub fn f(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "null".to_string()
        }
    }

    /// `{"k": v, ...}` from already-encoded values.
    pub fn obj(pairs: &[(&str, String)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{}:{}", s(k), v))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Print the standard one-line document for a figure binary.
    pub fn emit(figure: &str, rows: &[String]) {
        println!("{{\"figure\":{},\"rows\":[{}]}}", s(figure), rows.join(","));
    }
}

/// Open a default-target build session for a bundled app.
fn session(app: &AppInfo) -> Build {
    Compiler::new().build(app.key, app.source)
}

/// Drive a session to P4, panicking with rendered diagnostics on failure
/// (the bundled apps must always compile).
fn compiled(app: &AppInfo) -> Build {
    let mut build = session(app);
    if build.p4().is_err() {
        panic!("{} must compile:\n{}", app.name, build.render_diagnostics());
    }
    build
}

/// Drive a session to layout only — the figures that never read the P4
/// text skip code generation entirely.
fn laid_out(app: &AppInfo) -> Build {
    let mut build = session(app);
    if build.layout().is_err() {
        panic!("{} must place:\n{}", app.name, build.render_diagnostics());
    }
    build
}

/// One row of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig09Row {
    pub app: AppInfo,
    pub lucid_loc: usize,
    pub p4_loc: usize,
    pub stages: usize,
}

/// Compile every bundled app and report the Figure 9 columns.
pub fn figure09() -> Vec<Fig09Row> {
    lucid_apps::all()
        .into_iter()
        .map(|app| {
            let mut build = compiled(&app);
            Fig09Row {
                lucid_loc: app.lucid_loc(),
                p4_loc: build.p4().expect("compiled").loc.total(),
                stages: build.layout().expect("compiled").total_stages,
                app,
            }
        })
        .collect()
}

/// One bar of Figure 10: the generated P4's line breakdown vs Lucid LoC.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub key: &'static str,
    pub name: &'static str,
    pub lucid_loc: usize,
    pub p4: P4Loc,
}

pub fn figure10() -> Vec<Fig10Row> {
    lucid_apps::all()
        .into_iter()
        .map(|app| {
            let mut build = compiled(&app);
            Fig10Row {
                key: app.key,
                name: app.name,
                lucid_loc: app.lucid_loc(),
                p4: build.p4().expect("compiled").loc.clone(),
            }
        })
        .collect()
}

/// Figure 11 is a human developer-time study and cannot be reproduced in
/// software; we report compile+check wall time per app as the closest
/// measurable proxy, alongside the paper's reported numbers.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub key: &'static str,
    pub name: &'static str,
    pub compile_time_us: f64,
    /// The paper's reported development time, where given.
    pub paper_dev_time: Option<&'static str>,
}

pub fn figure11() -> Vec<Fig11Row> {
    lucid_apps::all()
        .into_iter()
        .map(|app| {
            let t0 = Instant::now();
            let mut build = session(&app);
            assert!(build.p4().is_ok(), "{} compiles", app.key);
            let dt = t0.elapsed().as_secs_f64() * 1e6;
            let paper = match app.key {
                "nat" => Some("25m"),
                "rip" => Some("40m"),
                "dfw" => Some("25m"),
                "dfw_aging" => Some("25m + 30m"),
                _ => None,
            };
            Fig11Row {
                key: app.key,
                name: app.name,
                compile_time_us: dt,
                paper_dev_time: paper,
            }
        })
        .collect()
}

/// One bar of Figure 12 (and the ablation columns from DESIGN.md §4).
#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub key: &'static str,
    pub name: &'static str,
    pub unoptimized_stages: usize,
    pub optimized_stages: usize,
    pub ratio: f64,
    /// Stages with the rearrangement pass disabled (ablation).
    pub no_rearrange_stages: Option<usize>,
}

pub fn figure12() -> Vec<Fig12Row> {
    lucid_apps::all()
        .into_iter()
        .map(|app| {
            // One session per app: the default-target layout, then the
            // ablation re-runs only the backend (the parse and check are
            // reused across targets).
            let mut build = laid_out(&app);
            let opt = build.layout().expect("placed").clone();
            // Ablation: no rearrangement. May exceed the pipeline; report
            // with a taller hypothetical pipeline so the cost is visible.
            let tall = PipelineSpec {
                stages: 256,
                ..PipelineSpec::tofino()
            };
            build.reconfigure(&Compiler::new().target(tall).layout(LayoutOptions {
                rearrange: false,
                ..LayoutOptions::default()
            }));
            let no_rearrange = build.layout().ok().map(|l| l.total_stages);
            Fig12Row {
                key: app.key,
                name: app.name,
                unoptimized_stages: opt.unoptimized_stages,
                optimized_stages: opt.total_stages,
                ratio: opt.stage_ratio(),
                no_rearrange_stages: no_rearrange,
            }
        })
        .collect()
}

/// One bar of Figure 13: ALU instructions mapped per stage.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    pub key: &'static str,
    pub name: &'static str,
    pub mean_alu_per_stage: f64,
    pub max_alu_per_stage: usize,
}

pub fn figure13() -> Vec<Fig13Row> {
    lucid_apps::all()
        .into_iter()
        .map(|app| {
            let mut build = laid_out(&app);
            let layout = build.layout().expect("placed");
            Fig13Row {
                key: app.key,
                name: app.name,
                mean_alu_per_stage: layout.mean_alu_per_stage(),
                max_alu_per_stage: layout.max_alu_per_stage(),
            }
        })
        .collect()
}

/// One point of Figure 14: delaying `n` concurrent 64 B events.
#[derive(Debug, Clone)]
pub struct Fig14Point {
    pub concurrent_events: usize,
    pub baseline_gbps: f64,
    pub delay_queue_gbps: f64,
    pub baseline_rel_err: f64,
    pub delay_queue_rel_err: f64,
}

/// Sweep 0..=90 concurrent delayed events, reproducing both panels of
/// Figure 14 (bandwidth and relative timing error).
pub fn figure14() -> Vec<Fig14Point> {
    let port = RecircPort::default();
    let queue = DelayQueue::default();
    (0..=90)
        .step_by(10)
        .map(|n| {
            // Requested delays spread around 1 ms, like the paper's
            // indefinitely-delayed event pool.
            let delays: Vec<u64> = (0..n)
                .map(|i| 800_000 + (i as u64 * 37_013) % 400_000)
                .collect();
            let base = port.delay_baseline(64, &delays);
            let dq = queue.delay_events(64, &delays);
            let steady = queue.steady_state_bandwidth_bps(64, n);
            Fig14Point {
                concurrent_events: n,
                baseline_gbps: base.bandwidth_bps / 1e9,
                delay_queue_gbps: steady.max(dq.bandwidth_bps.min(steady)) / 1e9,
                baseline_rel_err: base.mean_relative_error,
                delay_queue_rel_err: dq.mean_relative_error,
            }
        })
        .collect()
}

/// Figure 15 rows: recirculation-use classes and which apps exhibit them.
pub fn figure15() -> Vec<(lucid_apps::RecircUse, Vec<&'static str>)> {
    use lucid_apps::RecircUse::*;
    [Maintenance, FlowSetup, StateSync]
        .into_iter()
        .map(|class| {
            let apps: Vec<&'static str> = lucid_apps::all()
                .into_iter()
                .filter(|a| a.recirc_uses.contains(&class))
                .map(|a| a.key)
                .collect();
            (class, apps)
        })
        .collect()
}

/// Figure 16: the worst-case SFW recirculation model on the idealized
/// PISA processor.
pub fn figure16() -> Vec<SfwModelRow> {
    figure16_rows(&PipelineSpec::idealized_pisa())
}

/// Figure 17: empirical CDFs of flow-installation time, integrated
/// (interpreter-measured) vs remote control (Mantis model).
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// (install time ns, cumulative probability) — integrated control.
    pub integrated: Vec<(f64, f64)>,
    /// Same for the remote-control baseline.
    pub remote: Vec<(f64, f64)>,
    pub integrated_mean_ns: f64,
    pub remote_mean_ns: f64,
    pub speedup: f64,
    pub frac_inline: f64,
}

pub fn figure17(trials: usize, seed: u64) -> Fig17 {
    let bench = lucid_apps::sfw::install_benchmark(trials, 0.3125, seed);
    let remote = RemoteControlModel::default().sample(trials, seed);
    let integrated_mean = bench.times_ns.iter().sum::<f64>() / bench.times_ns.len().max(1) as f64;
    let remote_mean = remote.iter().sum::<f64>() / remote.len().max(1) as f64;
    Fig17 {
        integrated: ecdf(&bench.times_ns),
        remote: ecdf(&remote),
        integrated_mean_ns: integrated_mean,
        remote_mean_ns: remote_mean,
        speedup: remote_mean / integrated_mean.max(1.0),
        frac_inline: bench.frac_inline,
    }
}

/// The mesh workload of the `fig_sim_throughput` benchmark: every packet
/// updates a per-switch sketch, recirculates a decremented copy, and
/// forwards a mixed copy to a hash-picked neighbor — cross-traffic heavy
/// enough that the sharded engine's epoch barriers actually matter.
fn mesh_workload(switches: u64) -> String {
    assert!(
        switches.is_power_of_two(),
        "mesh size must be a power of two"
    );
    format!(
        r#"
        global cnt = new Array<<32>>(1024);
        global mix = new Array<<32>>(1024);
        memop plus(int m, int x) {{ return m + x; }}
        event pkt(int a, int b, int ttl);
        handle pkt(int a, int b, int ttl) {{
            auto i = hash<<10>>(1, a, b);
            int c = Array.update(cnt, i, plus, 1, plus, 1);
            auto j = hash<<10>>(2, c, a);
            Array.setm(mix, j, plus, b);
            if (ttl > 0) {{
                generate pkt(a + 1, b, ttl - 1);
                generate Event.locate(pkt(a, b + c, ttl - 1), ((a + b) & {mask}) + 1);
            }}
        }}
        "#,
        mask = switches - 1
    )
}

/// The run's overall latency tail (every event class merged into one
/// histogram pair), recorded into `BENCH_PR.json` beside the throughput
/// rows so the CI perf trajectory tracks tails, not just means. Virtual
/// nanoseconds, so the numbers are deterministic — a changed tail means
/// the simulation's timing behavior changed, not that the host was busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTail {
    /// [`lucid_core::Metrics::digest`] of the full per-class metrics;
    /// joined into each bench's identity check, so every combination
    /// must agree on every histogram bit.
    pub metrics_digest: u64,
    pub lat_p50_ns: u64,
    pub lat_p90_ns: u64,
    pub lat_p99_ns: u64,
    pub lat_p999_ns: u64,
    pub lat_max_ns: u64,
    pub res_p99_ns: u64,
    pub res_max_ns: u64,
}

impl LatencyTail {
    pub fn of(metrics: &lucid_core::Metrics) -> LatencyTail {
        let all = metrics.overall().unwrap_or_default();
        LatencyTail {
            metrics_digest: metrics.digest(),
            lat_p50_ns: all.dispatch.p50(),
            lat_p90_ns: all.dispatch.p90(),
            lat_p99_ns: all.dispatch.p99(),
            lat_p999_ns: all.dispatch.p999(),
            lat_max_ns: all.dispatch.max(),
            res_p99_ns: all.residency.p99(),
            res_max_ns: all.residency.max(),
        }
    }

    /// The `"latency_tail"` object both figure binaries embed.
    pub fn to_json(&self) -> String {
        jsonout::obj(&[
            (
                "metrics_digest",
                jsonout::s(&format!("{:016x}", self.metrics_digest)),
            ),
            ("lat_p50_ns", self.lat_p50_ns.to_string()),
            ("lat_p90_ns", self.lat_p90_ns.to_string()),
            ("lat_p99_ns", self.lat_p99_ns.to_string()),
            ("lat_p999_ns", self.lat_p999_ns.to_string()),
            ("lat_max_ns", self.lat_max_ns.to_string()),
            ("res_p99_ns", self.res_p99_ns.to_string()),
            ("res_max_ns", self.res_max_ns.to_string()),
        ])
    }

    /// One human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "latency tail (virtual ns): p50 {} / p90 {} / p99 {} / p999 {} / max {}; \
             residency p99 {} / max {}; metrics digest {:016x}",
            self.lat_p50_ns,
            self.lat_p90_ns,
            self.lat_p99_ns,
            self.lat_p999_ns,
            self.lat_max_ns,
            self.res_p99_ns,
            self.res_max_ns,
            self.metrics_digest
        )
    }
}

/// One engine x executor combination's measurement on the mesh workload.
#[derive(Debug, Clone)]
pub struct SimThroughputRow {
    pub engine: &'static str,
    pub exec: &'static str,
    pub events_processed: u64,
    pub wall_ms: f64,
    pub events_per_sec: f64,
}

/// The engine x executor comparison `fig_sim_throughput` prints.
#[derive(Debug, Clone)]
pub struct SimThroughput {
    pub switches: u64,
    pub injected_per_switch: u64,
    pub workers: usize,
    /// One row per engine x exec combination, sequential/ast first.
    pub rows: Vec<SimThroughputRow>,
    /// Final array state, statistics, trace, and printf output were
    /// byte-identical across every combination (the correctness gate
    /// for the comparison).
    pub identical: bool,
    /// Sharded events/sec over sequential events/sec (AST executor).
    pub speedup: f64,
    /// Bytecode events/sec over AST events/sec (sequential engine) —
    /// the flat-dispatch payoff; CI requires >= 2x.
    pub bytecode_speedup: f64,
    /// The workload's overall latency tail; the metrics digest inside it
    /// is part of the cross-combination identity check.
    pub tail: LatencyTail,
}

/// Run the mesh workload under every engine x executor combination and
/// compare. `workers == 0` means one per core. Deterministic: all four
/// combinations must produce identical final array state, statistics,
/// traces, and printf output.
pub fn sim_throughput(
    switches: u64,
    injected_per_switch: u64,
    ttl: u64,
    workers: usize,
) -> SimThroughput {
    let src = mesh_workload(switches);
    let prog = lucid_core::check::parse_and_check(&src).expect("workload checks");
    let combos = [
        ("sequential", Engine::Sequential, ExecMode::Ast),
        ("sequential", Engine::Sequential, ExecMode::Bytecode),
        (
            "sharded",
            Engine::Sharded {
                workers,
                epoch_ns: 0,
            },
            ExecMode::Ast,
        ),
        (
            "sharded",
            Engine::Sharded {
                workers,
                epoch_ns: 0,
            },
            ExecMode::Bytecode,
        ),
    ];
    /// Everything a combination's run leaves observable.
    type Observed = (
        Vec<Vec<u64>>,
        lucid_core::interp::Stats,
        Vec<lucid_core::interp::Handled>,
        Vec<String>,
        lucid_core::Metrics,
    );
    let mut rows = Vec::new();
    let mut tail: Option<LatencyTail> = None;
    // Only the first trial's snapshot is retained; every later one is
    // compared against it and dropped (full mode holds ~100k trace
    // entries per snapshot — keeping all eight alive at once would be
    // most of the bench's memory).
    let mut reference: Option<Observed> = None;
    let mut identical = true;
    for (label, engine, exec) in combos {
        // Best of two trials per combination: wall-clock throughput on a
        // shared box is noisy, and the CI perf gate floors ratios of
        // these rows. Both trials must also observe identical results —
        // a free same-config determinism check.
        let mut best: Option<SimThroughputRow> = None;
        for _ in 0..2 {
            let mut cfg = NetConfig::mesh(switches);
            cfg.engine = engine;
            cfg.exec = exec;
            let mut sim = Interp::new(&prog, cfg);
            for s in 1..=switches {
                for k in 0..injected_per_switch {
                    sim.schedule(s, k * 2_000, "pkt", &[s * 1_000 + k, k, ttl])
                        .expect("workload event");
                }
            }
            let t0 = Instant::now();
            sim.run(u64::MAX, u64::MAX).expect("workload quiesces");
            let wall = t0.elapsed().as_secs_f64();
            let row = SimThroughputRow {
                engine: label,
                exec: exec.label(),
                events_processed: sim.stats.processed,
                wall_ms: wall * 1e3,
                events_per_sec: if wall > 0.0 {
                    sim.stats.processed as f64 / wall
                } else {
                    0.0
                },
            };
            if best
                .as_ref()
                .is_none_or(|b| row.events_per_sec > b.events_per_sec)
            {
                best = Some(row);
            }
            let metrics = sim.metrics();
            tail.get_or_insert_with(|| LatencyTail::of(&metrics));
            let observed: Observed = (
                (1..=switches)
                    .flat_map(|s| [sim.array(s, "cnt").to_vec(), sim.array(s, "mix").to_vec()])
                    .collect(),
                sim.stats.clone(),
                sim.trace.clone(),
                sim.output.clone(),
                metrics,
            );
            match &reference {
                None => reference = Some(observed),
                Some(r) => identical &= *r == observed,
            }
        }
        rows.push(best.expect("at least one trial"));
    }
    let actual_workers = if workers == 0 {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(switches as usize)
    } else {
        workers
    };
    SimThroughput {
        switches,
        injected_per_switch,
        workers: actual_workers,
        speedup: rows[2].events_per_sec / rows[0].events_per_sec.max(1.0),
        bytecode_speedup: rows[1].events_per_sec / rows[0].events_per_sec.max(1.0),
        rows,
        identical,
        tail: tail.expect("at least one trial ran"),
    }
}

/// One engine x executor x opt-level measurement on the generator-driven
/// workload.
#[derive(Debug, Clone)]
pub struct WorkloadScaleRow {
    pub engine: &'static str,
    pub exec: &'static str,
    /// Bytecode optimization level (`"0"`/`"1"`/`"2"`; the AST walker
    /// ignores it).
    pub opt: &'static str,
    pub events_processed: u64,
    pub injected: u64,
    pub wall_ms: f64,
    pub events_per_sec: f64,
    pub state_digest: u64,
}

/// The `fig_workload_scale` result: the engine x exec x opt matrix
/// driven by streaming generators (zipf keys, a uniform background, and
/// an attack burst) — the scale gate for the workload-generator
/// subsystem and the perf-trajectory gate for the bytecode optimizer.
#[derive(Debug, Clone)]
pub struct WorkloadScale {
    pub switches: u64,
    /// Total generator-sourced injections per run.
    pub target_events: u64,
    /// One row per combination, sequential/ast first; the bytecode rows
    /// sweep opt levels 0, 1, 2 under the sequential engine.
    pub rows: Vec<WorkloadScaleRow>,
    /// State digest, metrics digest, statistics, and per-generator
    /// counts agreed across every combination.
    pub identical: bool,
    /// Slowest combination's sustained events/sec — what the scale gate
    /// checks.
    pub min_events_per_sec: f64,
    /// Fully-optimized bytecode events/sec over the AST walker's, both
    /// under the sequential engine — the optimizer pipeline's headline
    /// number (CI records and floors it via `BENCH_PR.json`).
    pub bytecode_speedup: f64,
    /// Optimized (O2) over unoptimized (O0) bytecode events/sec — what
    /// the superinstruction + regalloc passes themselves buy.
    pub opt_speedup: f64,
    /// The workload's overall latency tail; its metrics digest is part
    /// of the cross-combination identity check.
    pub tail: LatencyTail,
}

/// The generator scenario behind `fig_workload_scale` and
/// `fig_parallel_scale`: a telemetry-sketch mesh fed by three seeded
/// sources. The event list is never materialized — the engines pull the
/// stream lazily, so `target_events` can be millions without a matching
/// allocation. Every injection carries `ttl = 1`, so each root spawns a
/// recirculated and a remote child: the derived events are what the
/// dispatch-latency histograms sample (roots are their own cause and
/// contribute no latency), keeping the recorded `latency_tail` non-zero,
/// and the remote copies put real cross-shard traffic on the sharded
/// engine's mailboxes.
fn workload_scale_scenario(switches: u64, target_events: u64) -> lucid_core::Scenario {
    // Thirds: steady zipf flows, uniform background, and a burst window
    // at 10x rate (phases) — diverse enough to exercise every
    // distribution kind at scale.
    let per = target_events / 3;
    let burst = target_events - 2 * per;
    let doc = format!(
        r#"{{
        "name": "workload_scale",
        "net": {{"switches": {switches}}},
        "seed": 42,
        "limits": {{"max_events": {budget}}},
        "generators": [
          {{"name": "flows", "event": "pkt", "switches": [{all}],
            "rate_eps": 2000000, "jitter_ns": 120, "count": {per},
            "args": [{{"zipf": {{"n": 65536, "s": 1.1}}}},
                     {{"uniform": [0, 1023]}}, 1]}},
          {{"name": "background", "event": "pkt", "switches": [{all}],
            "rate_eps": 1000000, "count": {per},
            "args": [{{"uniform": [0, 1048575]}}, {{"seq": 4096}}, 1]}},
          {{"name": "burst", "event": "pkt", "switch": 1,
            "rate_eps": 500000, "start_ns": 200000, "count": {burst},
            "phases": [{{"at_ns": 400000, "rate_eps": 5000000}}],
            "args": [{{"zipf": {{"n": 64, "s": 1.3}}}}, 7, 1]}}
        ]
      }}"#,
        // Each ttl=1 root processes itself plus two ttl=0 children.
        budget = target_events * 4 + 1_000,
        all = (1..=switches)
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    lucid_core::Scenario::from_json(&doc).expect("workload scenario parses")
}

/// Run the generator workload under the engine x executor x opt matrix.
/// Deterministic: every combination must agree on the state digest,
/// statistics, and per-generator injection counts — an optimizer
/// miscompile cannot hide behind an equally-wrong lowering because the
/// bytecode rows run at every level.
pub fn workload_scale(switches: u64, target_events: u64, workers: usize) -> WorkloadScale {
    use lucid_core::{OptLevel, SimOptions};
    let src = mesh_workload(switches);
    let prog = lucid_core::check::parse_and_check(&src).expect("workload checks");
    let sc = workload_scale_scenario(switches, target_events);
    let sharded = Engine::Sharded {
        workers,
        epoch_ns: 0,
    };
    let combos = [
        (Engine::Sequential, ExecMode::Ast, OptLevel::O2),
        (Engine::Sequential, ExecMode::Bytecode, OptLevel::O0),
        (Engine::Sequential, ExecMode::Bytecode, OptLevel::O1),
        (Engine::Sequential, ExecMode::Bytecode, OptLevel::O2),
        (sharded, ExecMode::Ast, OptLevel::O2),
        (sharded, ExecMode::Bytecode, OptLevel::O2),
    ];
    /// Everything a combination's run must agree on.
    type Observed = (u64, u64, lucid_core::interp::Stats, Vec<(String, u64)>);
    // Best of three trials per combination (the CI perf gate floors
    // ratios of these rows against a hard >=8x bar; single wall-clock
    // samples on a shared box are too noisy, and a co-tenant burst
    // during one trial must not fail the gate). Trials are interleaved
    // round-robin across the combinations rather than run back-to-back:
    // a burst that outlasts one combination's whole consecutive trial
    // window would poison all of its samples at once and skew every
    // ratio built on that row, whereas under interleaving the burst
    // lands on one round of every combination and best-of keeps a clean
    // round for each. Every trial's digest and stats join the identity
    // check — a free same-config determinism proof.
    let mut best: Vec<Option<WorkloadScaleRow>> = vec![None; combos.len()];
    let mut observed: Vec<Observed> = Vec::new();
    let mut tail: Option<LatencyTail> = None;
    for _round in 0..3 {
        for (slot, &(engine, exec, opt)) in combos.iter().enumerate() {
            let ov = SimOptions {
                engine: Some(engine),
                exec: Some(exec),
                opt: Some(opt),
                // The identity check here runs on digests/stats/counts,
                // never the trace — don't make every row pay to retain
                // one (the walker and bytecode rows both shed the same
                // per-event cost, so the ratios stay honest).
                record_trace: Some(false),
                ..SimOptions::default()
            };
            let report =
                lucid_core::run_scenario_with(&prog, &sc, &ov).expect("workload scenario runs");
            let row = WorkloadScaleRow {
                engine: engine.label(),
                exec: exec.label(),
                opt: opt.label(),
                events_processed: report.stats.processed,
                injected: report.gens.iter().map(|(_, n)| n).sum(),
                wall_ms: report.wall_ms,
                events_per_sec: report.events_per_sec,
                state_digest: report.state_digest,
            };
            if best[slot]
                .as_ref()
                .is_none_or(|b| row.events_per_sec > b.events_per_sec)
            {
                best[slot] = Some(row);
            }
            tail.get_or_insert_with(|| LatencyTail::of(&report.metrics));
            observed.push((
                report.state_digest,
                report.metrics.digest(),
                report.stats,
                report.gens,
            ));
        }
    }
    let rows: Vec<WorkloadScaleRow> = best
        .into_iter()
        .map(|b| b.expect("every combination ran"))
        .collect();
    let identical = observed.iter().all(|o| *o == observed[0]);
    let min_events_per_sec = rows
        .iter()
        .map(|r| r.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    // Row order is fixed above: [0] seq/ast, [1] seq/bc/O0, [3] seq/bc/O2.
    let bytecode_speedup = rows[3].events_per_sec / rows[0].events_per_sec.max(1.0);
    let opt_speedup = rows[3].events_per_sec / rows[1].events_per_sec.max(1.0);
    WorkloadScale {
        switches,
        target_events,
        rows,
        identical,
        min_events_per_sec,
        bytecode_speedup,
        opt_speedup,
        tail: tail.expect("at least one trial ran"),
    }
}

/// One worker-count measurement of the `fig_parallel_scale` sweep.
#[derive(Debug, Clone)]
pub struct ParallelScaleRow {
    pub workers: usize,
    pub events_processed: u64,
    pub wall_ms: f64,
    pub events_per_sec: f64,
    /// This row over the sequential-bytecode baseline: the best
    /// per-round throughput ratio (shared-host contention is strictly
    /// one-sided, so the cleanest of the interleaved rounds is the
    /// least contaminated comparison).
    pub speedup: f64,
    pub state_digest: u64,
}

/// The `fig_parallel_scale` result: the sharded engine's worker-count
/// scaling curve against a sequential baseline, all under the bytecode
/// executor at O2 on the generator-driven mesh workload.
#[derive(Debug, Clone)]
pub struct ParallelScale {
    pub switches: u64,
    /// Total generator-sourced injections per run.
    pub target_events: u64,
    /// The sequential-bytecode baseline's events/sec.
    pub sequential_events_per_sec: f64,
    /// One row per swept worker count, ascending.
    pub rows: Vec<ParallelScaleRow>,
    /// State digest, metrics digest, statistics, and per-generator
    /// counts agreed between the baseline and every worker count.
    pub identical: bool,
    /// Sharded at one worker over sequential — CI floors this at 0.93
    /// (parity less wall-clock measurement tolerance): with a single
    /// worker the engine runs barrier-free through the same scheduling
    /// core as the sequential driver, so the parallel machinery must
    /// cost nothing when it buys nothing.
    pub speedup_w1: f64,
    /// Whether throughput never dropped more than 5% from one worker
    /// count to the next. Not a hard gate — on a single-core host every
    /// extra worker is pure overhead — but recorded into `BENCH_PR.json`
    /// so multi-core regressions show up in the perf trajectory.
    pub monotone: bool,
    /// The host's `std::thread::available_parallelism()` at measurement
    /// time. Recorded next to `monotone` because the flag is only
    /// interpretable against it: on a 1-core host a non-monotone curve
    /// is expected (every extra worker is pure overhead), on an 8-core
    /// host it is a regression.
    pub available_parallelism: usize,
    /// The workload's overall latency tail; its metrics digest is part
    /// of the cross-run identity check.
    pub tail: LatencyTail,
}

/// Sweep the sharded engine across `worker_counts` on the generator
/// mesh workload and compare every run — digest for digest — against a
/// sequential-bytecode baseline. Deterministic: the scaling curve is
/// only meaningful if every point computes the same run.
pub fn parallel_scale(switches: u64, target_events: u64, worker_counts: &[usize]) -> ParallelScale {
    use lucid_core::{OptLevel, SimOptions};
    let src = mesh_workload(switches);
    let prog = lucid_core::check::parse_and_check(&src).expect("workload checks");
    let sc = workload_scale_scenario(switches, target_events);
    /// Everything a run must agree on.
    type Observed = (u64, u64, lucid_core::interp::Stats, Vec<(String, u64)>);
    let mut observed: Vec<Observed> = Vec::new();
    let mut tail: Option<LatencyTail> = None;
    // Best of four trials per configuration, interleaved round-robin
    // across the sequential baseline and every worker count (like
    // `workload_scale`): the headline `speedup_w1` is a ratio of two
    // wall-clock samples gated near parity, and running each
    // configuration's trials back-to-back would let one co-tenant burst
    // poison a whole configuration — and with it the ratio. One more
    // round than the other benches because a ratio floor this close to
    // 1.0 needs both sides' best-of to converge. Every trial still
    // joins the identity check.
    let configs: Vec<Option<usize>> = std::iter::once(None)
        .chain(worker_counts.iter().copied().map(Some))
        .collect();
    let mut best: Vec<Option<(u64, f64, f64, u64)>> = vec![None; configs.len()];
    // Per-round events/sec, for the speedup estimator below.
    let mut eps_rounds: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    // Round -1 is an untimed warmup: the process's very first run pays
    // page faults and lazy initialization that no later run repays, and
    // it always lands on the sequential baseline — a per-round ratio
    // against a cold round-0 baseline would read far above truth. The
    // warmup run still joins the identity check.
    for round in -1i32..4 {
        for (slot, cfg) in configs.iter().enumerate() {
            let engine = match cfg {
                None => Engine::Sequential,
                Some(workers) => Engine::Sharded {
                    workers: *workers,
                    epoch_ns: 0,
                },
            };
            let ov = SimOptions {
                engine: Some(engine),
                exec: Some(ExecMode::Bytecode),
                opt: Some(OptLevel::O2),
                // Identity here is digest/stats/counts-based; skip
                // retaining a trace nobody reads (uniform across all
                // worker counts).
                record_trace: Some(false),
                ..SimOptions::default()
            };
            let report =
                lucid_core::run_scenario_with(&prog, &sc, &ov).expect("workload scenario runs");
            if round >= 0 {
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| report.events_per_sec > b.2)
                {
                    best[slot] = Some((
                        report.stats.processed,
                        report.wall_ms,
                        report.events_per_sec,
                        report.state_digest,
                    ));
                }
                eps_rounds[slot].push(report.events_per_sec);
            }
            tail.get_or_insert_with(|| LatencyTail::of(&report.metrics));
            observed.push((
                report.state_digest,
                report.metrics.digest(),
                report.stats,
                report.gens,
            ));
        }
    }
    // Speedups are the best per-round ratio. Contention on a shared
    // host is strictly one-sided — a co-tenant can only slow a sample
    // down, never speed it up — so of the four sequential/sharded pairs
    // the round with the highest ratio is the comparison least
    // contaminated on the sharded side, and floors gated near parity
    // need that robustness (a ratio of two independently-noisy samples
    // spreads +-10% here, which would swamp the gate). Throughput
    // columns still report best-of per configuration.
    let ratio_best = |slot: usize| -> f64 {
        eps_rounds[slot]
            .iter()
            .zip(&eps_rounds[0])
            .map(|(e, s)| e / s.max(1.0))
            .fold(0.0, f64::max)
    };
    let mut picks = best.into_iter().map(|b| b.expect("every config ran"));
    let (_, _, seq_eps, _) = picks.next().expect("sequential baseline ran");
    let rows: Vec<ParallelScaleRow> = worker_counts
        .iter()
        .zip(picks)
        .enumerate()
        .map(
            |(i, (&workers, (processed, wall_ms, eps, digest)))| ParallelScaleRow {
                workers,
                events_processed: processed,
                wall_ms,
                events_per_sec: eps,
                speedup: ratio_best(i + 1),
                state_digest: digest,
            },
        )
        .collect();
    let identical = observed.iter().all(|o| *o == observed[0]);
    let monotone = rows
        .windows(2)
        .all(|w| w[1].events_per_sec >= w[0].events_per_sec * 0.95);
    ParallelScale {
        switches,
        target_events,
        sequential_events_per_sec: seq_eps,
        speedup_w1: rows.first().map_or(0.0, |r| r.speedup),
        rows,
        identical,
        monotone,
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        tail: tail.expect("at least one trial ran"),
    }
}

// -------------------------------------------------------- serve ingest

/// One serve-ingest trial's numbers (`fig_serve_ingest`).
#[derive(Debug, Clone)]
pub struct ServeIngest {
    pub switches: u64,
    pub target_events: u64,
    /// Events per `ingest` request line.
    pub batch: u64,
    /// Request lines served (open + ingest/advance pairs + drain).
    pub requests: u64,
    pub wall_ms: f64,
    /// Sustained served events/sec through the protocol layer (best of
    /// the interleaved trials).
    pub events_per_sec: f64,
    pub state_digest: u64,
    /// The served session's final report (less the two wall-clock
    /// fields) is byte-identical to the equivalent one-shot `sim` run.
    pub identical: bool,
}

/// Push `target_events` through a live `serve` session in `batch`-sized
/// `ingest` request lines, advancing the session after every batch, and
/// compare the drained report — byte for byte, wall-clock fields aside —
/// against a one-shot run of the same events authored into a scenario.
/// The measured rate includes the full daemon-side cost: request JSON
/// parsing, scheduling, simulation, and reply rendering.
pub fn serve_ingest(switches: u64, target_events: u64, batch: u64) -> ServeIngest {
    use lucid_core::{handle_line, CheckHost, Scenario, ServeState, SimOptions};
    let src = r#"
        global cts = new Array<<32>>(256);
        memop plus(int m, int x) { return m + x; }
        event pkt(int idx);
        handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
    "#;
    let header = format!(
        "{{\"name\": \"serve-ingest\", \"net\": {{\"switches\": {switches}}}, \
         \"exec\": \"bytecode\""
    );
    let event = |i: u64| {
        format!(
            "{{\"time_ns\":{},\"switch\":{},\"event\":\"pkt\",\"args\":[{}]}}",
            100 * (i + 1),
            1 + i % switches,
            i % 256
        )
    };

    // The client side — request lines — is built up front so the timed
    // loop holds only served work.
    let mut requests: Vec<String> = vec![format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
        jsonout::s(src),
        jsonout::s(&format!("{header}}}"))
    )];
    let mut i = 0;
    while i < target_events {
        let n = batch.min(target_events - i);
        let evs: Vec<String> = (i..i + n).map(event).collect();
        requests.push(format!(
            "{{\"op\":\"ingest\",\"session\":1,\"events\":[{}]}}",
            evs.join(",")
        ));
        requests.push(format!(
            "{{\"op\":\"advance\",\"session\":1,\"to_ns\":{}}}",
            100 * (i + n)
        ));
        i += n;
    }
    requests.push("{\"op\":\"drain\",\"session\":1}".to_string());

    // The reference: the same events authored into the scenario and run
    // one-shot.
    let evs: Vec<String> = (0..target_events).map(event).collect();
    let sc_full = format!("{header}, \"events\": [{}]}}", evs.join(","));
    let sc_full = Scenario::from_json(&sc_full).expect("one-shot scenario parses");
    let prog = lucid_core::check::parse_and_check(src).expect("program checks");
    let oneshot = lucid_core::run_scenario_with(&prog, &sc_full, &SimOptions::default())
        .expect("one-shot runs");
    // Wall-clock fields are the report's only nondeterminism.
    let stable = |report: &str| -> String {
        report
            .split(',')
            .filter(|f| !f.contains("\"wall_ms\"") && !f.contains("\"events_per_sec\""))
            .collect::<Vec<_>>()
            .join(",")
    };
    let want = stable(&oneshot.to_json());

    let mut best_eps = 0.0f64;
    let mut best_wall = 0.0f64;
    let mut identical = true;
    for _trial in 0..3 {
        let mut state = ServeState::new();
        let mut host = CheckHost;
        let start = Instant::now();
        let mut last = String::new();
        for line in &requests {
            last = handle_line(&mut state, &mut host, line).reply().to_string();
            assert!(last.starts_with("{\"ok\":true"), "request failed: {last}");
        }
        let wall = start.elapsed().as_secs_f64();
        // The drain reply is `{"ok":true,...,"report":{...}}`: the
        // embedded report keeps its own closing brace, only the reply's
        // outer one goes.
        let report = last
            .split_once("\"report\":")
            .and_then(|(_, r)| r.strip_suffix('}'))
            .expect("drain reply embeds the report");
        identical &= stable(report) == want;
        let eps = if wall > 0.0 {
            target_events as f64 / wall
        } else {
            0.0
        };
        if eps > best_eps {
            best_eps = eps;
            best_wall = wall;
        }
    }
    ServeIngest {
        switches,
        target_events,
        batch,
        requests: requests.len() as u64,
        wall_ms: best_wall * 1e3,
        events_per_sec: best_eps,
        state_digest: oneshot.state_digest,
        identical,
    }
}

/// Render a plain-text table (all figure binaries share this).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(ToString::to_string).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure09_has_ten_rows_within_pipeline() {
        let rows = figure09();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.stages <= 12, "{}: {} stages", r.app.name, r.stages);
            assert!(r.p4_loc > r.lucid_loc, "{}: P4 must be longer", r.app.name);
        }
    }

    #[test]
    fn figure10_categories_sum_to_total() {
        for r in figure10() {
            assert_eq!(
                r.p4.total(),
                r.p4.headers
                    + r.p4.parsers
                    + r.p4.actions
                    + r.p4.reg_actions
                    + r.p4.tables
                    + r.p4.control
            );
        }
    }

    #[test]
    fn figure12_optimizations_never_hurt() {
        for r in figure12() {
            if let Some(nr) = r.no_rearrange_stages {
                assert!(
                    nr >= r.optimized_stages,
                    "{}: rearrangement should help",
                    r.name
                );
            }
        }
    }

    #[test]
    fn figure14_shapes_match_paper() {
        let pts = figure14();
        let last = pts.last().unwrap();
        // Baseline saturates the port; delay queue stays single-digit.
        assert!(last.baseline_gbps > 90.0, "{}", last.baseline_gbps);
        assert!(last.delay_queue_gbps < 10.0, "{}", last.delay_queue_gbps);
        // Delay queue trades timing accuracy.
        assert!(last.delay_queue_rel_err > last.baseline_rel_err);
    }

    #[test]
    fn figure16_matches_paper_rows() {
        let rows = figure16();
        assert_eq!(rows[0].recirc_rate_pps, 815_360.0);
        assert!(rows[2].pipeline_utilization < 0.02);
    }

    #[test]
    fn figure17_speedup_is_two_orders() {
        let f = figure17(200, 99);
        assert!(f.speedup > 50.0, "speedup {}", f.speedup);
        assert!(f.frac_inline > 0.8);
        assert!(f.remote_mean_ns > 12_000.0);
    }

    #[test]
    fn sim_throughput_matrix_agrees_on_state() {
        let t = sim_throughput(4, 10, 2, 2);
        assert!(t.identical, "every engine x exec combination must agree");
        assert_eq!(t.rows.len(), 4);
        assert_eq!(
            (t.rows[0].engine, t.rows[0].exec),
            ("sequential", "ast"),
            "row order is the reference first"
        );
        // 40 injected events, each spawning a 2^3 - 1 = 7-event tree.
        for row in &t.rows {
            assert_eq!(row.events_processed, 40 * 7, "{}/{}", row.engine, row.exec);
        }
    }

    #[test]
    fn jsonout_escapes_and_nests() {
        let row = jsonout::obj(&[
            ("name", jsonout::s("a\"b\\c")),
            ("n", 7.to_string()),
            ("x", jsonout::f(1.5)),
        ]);
        assert_eq!(row, r#"{"name":"a\"b\\c","n":7,"x":1.5000}"#);
        assert_eq!(jsonout::f(f64::NAN), "null");
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(t.contains("a     bbbb"), "{t}");
    }
}
