//! Criterion benches for the event-driven interpreter: raw event
//! throughput on a counter program, the stateful firewall's per-packet
//! cost, and the Cuckoo install chain (the data path behind Figure 17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lucid_interp::{Interp, NetConfig};

fn bench_event_throughput(c: &mut Criterion) {
    let prog = lucid_check::parse_and_check(
        r#"
        global cts = new Array<<32>>(256);
        memop plus(int m, int x) { return m + x; }
        event pkt(int idx);
        handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
        "#,
    )
    .expect("checks");
    let mut g = c.benchmark_group("interp");
    for n in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("counter_events", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Interp::single(&prog);
                for i in 0..n {
                    sim.schedule(1, i, "pkt", &[i % 256]).expect("scheduled");
                }
                sim.run_to_quiescence().expect("runs");
                sim.stats.handled
            });
        });
    }
    g.finish();
}

fn bench_sfw_packets(c: &mut Criterion) {
    let app = lucid_apps::by_key("sfw").expect("bundled");
    let prog = app.checked();
    let mut g = c.benchmark_group("sfw");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("pkt_out_x1000", |b| {
        b.iter(|| {
            let mut sim = Interp::single(&prog);
            for i in 0..1_000u64 {
                sim.schedule(1, 1_000_000 + i * 1_000, "pkt_out", &[i + 1, i + 7])
                    .expect("scheduled");
            }
            sim.run_to_quiescence().expect("runs");
            sim.stats.handled
        });
    });
    g.bench_function("install_benchmark_100", |b| {
        b.iter(|| lucid_apps::sfw::install_benchmark(100, 0.3125, 5));
    });
    g.finish();
}

fn bench_multiswitch(c: &mut Criterion) {
    let app = lucid_apps::by_key("sro").expect("bundled");
    let prog = app.checked();
    let mut g = c.benchmark_group("multiswitch");
    g.throughput(Throughput::Elements(300));
    g.bench_function("sro_writes_x100_3replicas", |b| {
        b.iter(|| {
            let mut sim = Interp::new(&prog, NetConfig::mesh(3));
            for i in 0..100u64 {
                sim.schedule(2, i * 10_000, "write_req", &[i % 64, i])
                    .expect("scheduled");
            }
            sim.run_to_quiescence().expect("runs");
            sim.stats.handled
        });
    });
    g.finish();
}

fn quick() -> Criterion {
    // Keep the full suite to a few minutes: these are comparative
    // microbenchmarks, not absolute-precision measurements.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_event_throughput, bench_sfw_packets, bench_multiswitch
}
criterion_main!(benches);
