//! Criterion benches for the Tofino-model simulators behind Figures 14,
//! 16 and 17: the recirculation baseline, the PFC-pausable delay queue
//! (including the release-interval ablation from DESIGN.md §4), and the
//! analytic recirculation model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lucid_tofino::{
    sfw_recirc_model, DelayQueue, PipelineSpec, RecircPort, RemoteControlModel, SfwModelParams,
};

fn bench_delay_mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay");
    let delays: Vec<u64> = (0..90).map(|i| 800_000 + i * 3_733).collect();
    g.bench_function("baseline_90_events", |b| {
        let port = RecircPort::default();
        b.iter(|| port.delay_baseline(64, &delays));
    });
    g.bench_function("pausable_queue_90_events", |b| {
        let q = DelayQueue::default();
        b.iter(|| q.delay_events(64, &delays));
    });
    // Ablation: release interval vs simulation cost (the accuracy trade is
    // asserted in tests; this measures the simulator).
    for interval_us in [10u64, 50, 100, 1000] {
        g.bench_with_input(
            BenchmarkId::new("queue_release_interval_us", interval_us),
            &interval_us,
            |b, &iv| {
                let q = DelayQueue {
                    release_interval_ns: iv * 1_000,
                    ..DelayQueue::default()
                };
                b.iter(|| q.delay_events(64, &delays));
            },
        );
    }
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    let spec = PipelineSpec::idealized_pisa();
    g.bench_function("sfw_recirc_model", |b| {
        b.iter(|| {
            sfw_recirc_model(
                &spec,
                SfwModelParams {
                    table_size: 1 << 16,
                    check_interval_s: 0.1,
                    flow_rate: 1_000_000.0,
                },
            );
        });
    });
    g.bench_function("remote_control_1000_samples", |b| {
        let m = RemoteControlModel::default();
        b.iter(|| m.sample(1_000, 42));
    });
    g.finish();
}

fn quick() -> Criterion {
    // Keep the full suite to a few minutes: these are comparative
    // microbenchmarks, not absolute-precision measurements.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_delay_mechanisms, bench_models
}
criterion_main!(benches);
