//! Criterion benches for the compiler itself: per-pass throughput on the
//! bundled applications, plus the optimization ablations from DESIGN.md §4
//! (branch-inlining is structural in this implementation; rearrangement and
//! the merge key budget are measured here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lucid_backend::{elaborate, place, LayoutOptions};
use lucid_tofino::PipelineSpec;

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for app in lucid_apps::all() {
        g.bench_with_input(BenchmarkId::new("parse", app.key), &app, |b, app| {
            b.iter(|| lucid_frontend::parse_program(app.source).expect("parses"));
        });
        g.bench_with_input(BenchmarkId::new("check", app.key), &app, |b, app| {
            let program = lucid_frontend::parse_program(app.source).expect("parses");
            b.iter(|| lucid_check::check(program.clone()).expect("checks"));
        });
    }
    g.finish();
}

fn bench_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    for app in lucid_apps::all() {
        let prog = app.checked();
        g.bench_with_input(BenchmarkId::new("elaborate", app.key), &prog, |b, prog| {
            b.iter(|| elaborate(prog).expect("elaborates"));
        });
        let handlers = elaborate(&prog).expect("elaborates");
        g.bench_with_input(
            BenchmarkId::new("place", app.key),
            &(&prog, &handlers),
            |b, (prog, handlers)| {
                b.iter(|| {
                    place(
                        prog,
                        handlers,
                        &PipelineSpec::tofino(),
                        LayoutOptions::default(),
                    )
                    .expect("places");
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("full_compile", app.key), &app, |b, app| {
            // The whole session: parse → check → elaborate → place → P4.
            b.iter(|| {
                let mut build = lucid_core::Compiler::new().build(app.key, app.source);
                build.p4().expect("compiles").loc.total()
            });
        });
    }
    g.finish();
}

/// Ablation: how much work the rearrangement pass does, and how sensitive
/// placement time is to the merge key budget.
fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    let app = lucid_apps::by_key("sfw").expect("bundled");
    let prog = app.checked();
    let handlers = elaborate(&prog).expect("elaborates");
    let tall = PipelineSpec {
        stages: 256,
        ..PipelineSpec::tofino()
    };
    g.bench_function("place_rearranged", |b| {
        b.iter(|| place(&prog, &handlers, &tall, LayoutOptions::default()).expect("places"));
    });
    g.bench_function("place_serialized", |b| {
        b.iter(|| {
            place(
                &prog,
                &handlers,
                &tall,
                LayoutOptions {
                    rearrange: false,
                    ..LayoutOptions::default()
                },
            )
            .expect("places");
        });
    });
    for budget in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("merge_key_budget", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    place(
                        &prog,
                        &handlers,
                        &tall,
                        LayoutOptions {
                            merge_key_budget: budget,
                            ..LayoutOptions::default()
                        },
                    )
                    .expect("places");
                });
            },
        );
    }
    g.finish();
}

fn quick() -> Criterion {
    // Keep the full suite to a few minutes: these are comparative
    // microbenchmarks, not absolute-precision measurements.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_frontend, bench_backend, bench_ablations
}
criterion_main!(benches);
