//! Source locations and spans.
//!
//! Every AST node produced by the parser carries a [`Span`] so that later
//! pipeline phases (the memop validator, the ordered type-and-effect system,
//! the backend) can report errors that point at the exact source text that
//! caused them. Actionable, source-level feedback is one of the paper's core
//! claims (§4, §5), so spans are threaded through the entire compiler.

use std::fmt;

/// A half-open byte range `[start, end)` into a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes (e.g. code the
    /// compiler inserts during elaboration).
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Create a span from byte offsets.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} after end {end}");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers no characters.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A human-readable position: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets in a source file back to lines and columns, and lets
/// diagnostics extract the offending line of text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Display name of the file (e.g. `stateful_firewall.lucid`).
    pub name: String,
    /// The complete source text.
    pub src: String,
    /// Byte offset of the start of each line. `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Build a source map for `src`.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            src,
            line_starts,
        }
    }

    /// Translate a byte offset to a 1-based line/column pair.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line_idx];
        LineCol {
            line: line_idx as u32 + 1,
            col: col + 1,
        }
    }

    /// The text of the (1-based) line number, without its trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line - 1) as usize;
        let start = self.line_starts[idx] as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.src.len(), |&e| e as usize);
        self.src[start..end].trim_end_matches('\n')
    }

    /// The source text covered by `span`.
    pub fn snippet(&self, span: Span) -> &str {
        &self.src[span.start as usize..span.end as usize]
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefers_extremes() {
        let a = Span::new(4, 8);
        let b = Span::new(6, 12);
        assert_eq!(a.merge(b), Span::new(4, 12));
        assert_eq!(b.merge(a), Span::new(4, 12));
    }

    #[test]
    fn merge_with_dummy_is_identity() {
        let a = Span::new(4, 8);
        assert_eq!(a.merge(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.merge(a), a);
    }

    #[test]
    fn line_col_basic() {
        let sm = SourceMap::new("t", "ab\ncd\nef");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_text_strips_newline() {
        let sm = SourceMap::new("t", "ab\ncd\n");
        assert_eq!(sm.line_text(1), "ab");
        assert_eq!(sm.line_text(2), "cd");
    }

    #[test]
    fn snippet_roundtrip() {
        let sm = SourceMap::new("t", "hello world");
        assert_eq!(sm.snippet(Span::new(6, 11)), "world");
    }

    #[test]
    fn line_count_counts_final_partial_line() {
        let sm = SourceMap::new("t", "a\nb\nc");
        assert_eq!(sm.line_count(), 3);
    }
}
