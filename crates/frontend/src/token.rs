//! Tokens produced by the Lucid lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers -------------------------------------------
    /// Integer literal, already parsed to a value. Widths larger than 64
    /// bits are not representable in the surface language.
    Int(u64),
    /// `true`
    True,
    /// `false`
    False,
    /// An identifier or dotted builtin path such as `Array.get`.
    Ident(String),
    /// A string literal (used by `printf`).
    Str(String),

    // Keywords ------------------------------------------------------------
    KwConst,
    KwGlobal,
    KwEvent,
    KwHandle,
    KwFun,
    KwMemop,
    KwIf,
    KwElse,
    KwReturn,
    KwGenerate,
    KwMGenerate,
    KwPrintf,
    KwNew,
    KwInt,
    KwBool,
    KwVoid,
    KwGroup,
    KwAuto,

    // Punctuation ----------------------------------------------------------
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    /// `<<` in type position doubles as shift-left in expression position;
    /// the parser disambiguates.
    Shl,
    Shr,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AndAnd,
    OrOr,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in "expected X, found Y"
    /// parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Int(n) => format!("integer `{n}`"),
            True => "`true`".into(),
            False => "`false`".into(),
            Ident(s) => format!("identifier `{s}`"),
            Str(_) => "string literal".into(),
            KwConst => "`const`".into(),
            KwGlobal => "`global`".into(),
            KwEvent => "`event`".into(),
            KwHandle => "`handle`".into(),
            KwFun => "`fun`".into(),
            KwMemop => "`memop`".into(),
            KwIf => "`if`".into(),
            KwElse => "`else`".into(),
            KwReturn => "`return`".into(),
            KwGenerate => "`generate`".into(),
            KwMGenerate => "`mgenerate`".into(),
            KwPrintf => "`printf`".into(),
            KwNew => "`new`".into(),
            KwInt => "`int`".into(),
            KwBool => "`bool`".into(),
            KwVoid => "`void`".into(),
            KwGroup => "`group`".into(),
            KwAuto => "`auto`".into(),
            LParen => "`(`".into(),
            RParen => "`)`".into(),
            LBrace => "`{`".into(),
            RBrace => "`}`".into(),
            LBracket => "`[`".into(),
            RBracket => "`]`".into(),
            Comma => "`,`".into(),
            Semi => "`;`".into(),
            Assign => "`=`".into(),
            Shl => "`<<`".into(),
            Shr => "`>>`".into(),
            Plus => "`+`".into(),
            Minus => "`-`".into(),
            Star => "`*`".into(),
            Slash => "`/`".into(),
            Percent => "`%`".into(),
            Amp => "`&`".into(),
            Pipe => "`|`".into(),
            Caret => "`^`".into(),
            Tilde => "`~`".into(),
            Bang => "`!`".into(),
            AndAnd => "`&&`".into(),
            OrOr => "`||`".into(),
            EqEq => "`==`".into(),
            NotEq => "`!=`".into(),
            Lt => "`<`".into(),
            Gt => "`>`".into(),
            Le => "`<=`".into(),
            Ge => "`>=`".into(),
            Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Look up the keyword for an identifier-shaped lexeme, if any.
pub fn keyword(word: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match word {
        "const" => KwConst,
        "global" => KwGlobal,
        "event" => KwEvent,
        "handle" => KwHandle,
        "fun" => KwFun,
        "memop" => KwMemop,
        "if" => KwIf,
        "else" => KwElse,
        "return" => KwReturn,
        "generate" => KwGenerate,
        "mgenerate" => KwMGenerate,
        "printf" => KwPrintf,
        "new" => KwNew,
        "int" => KwInt,
        "bool" => KwBool,
        "void" => KwVoid,
        "group" => KwGroup,
        "auto" => KwAuto,
        "true" => True,
        "false" => False,
        _ => return None,
    })
}
