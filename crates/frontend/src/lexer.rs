//! Hand-written lexer for Lucid source text.
//!
//! The lexer is a straightforward byte scanner. It supports `//` line
//! comments and `/* ... */` block comments, decimal and hexadecimal integer
//! literals, string literals for `printf`, and dotted identifiers such as
//! `Array.get` (which are lexed as a single [`TokenKind::Ident`] so that the
//! parser can treat builtin module calls uniformly).

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{keyword, Token, TokenKind};

/// Lex `src` completely, returning either the token stream (terminated by a
/// single [`TokenKind::Eof`]) or the first lexical error.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start as u32, self.pos as u32)
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            if self.pos >= self.src.len() {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: self.span_from(start),
                });
                return Ok(out);
            }
            let kind = self.token()?;
            out.push(Token {
                kind,
                span: self.span_from(start),
            });
        }
    }

    /// Skip whitespace and comments.
    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Diagnostic::error(
                                "unterminated block comment",
                                self.span_from(start),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn token(&mut self) -> Result<TokenKind, Diagnostic> {
        use TokenKind::*;
        let start = self.pos;
        let b = self.bump();
        Ok(match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semi,
            b'+' => Plus,
            b'-' => Minus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'^' => Caret,
            b'~' => Tilde,
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AndAnd
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    OrOr
                } else {
                    Pipe
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    NotEq
                } else {
                    Bang
                }
            }
            b'<' => match self.peek() {
                b'<' => {
                    self.bump();
                    Shl
                }
                b'=' => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.bump();
                    Shr
                }
                b'=' => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            b'"' => {
                // Accumulate raw bytes so multi-byte UTF-8 sequences pass
                // through intact; the source is valid UTF-8 and escapes
                // are ASCII, so the result always re-validates.
                let mut bytes = Vec::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(Diagnostic::error(
                            "unterminated string literal",
                            self.span_from(start),
                        ));
                    }
                    match self.bump() {
                        b'"' => break,
                        b'\\' => {
                            let esc = self.bump();
                            bytes.push(match esc {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'\\' => b'\\',
                                b'"' => b'"',
                                other => {
                                    return Err(Diagnostic::error(
                                        format!("unknown escape `\\{}`", other as char),
                                        self.span_from(start),
                                    ))
                                }
                            });
                        }
                        other => bytes.push(other),
                    }
                }
                Str(String::from_utf8(bytes).expect("source is valid UTF-8"))
            }
            b'0'..=b'9' => {
                self.pos -= 1;
                self.number()?
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                self.pos -= 1;
                self.ident()
            }
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start),
                ))
            }
        })
    }

    fn number(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        let radix = if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            16
        } else {
            10
        };
        let digits_start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text: String = std::str::from_utf8(&self.src[digits_start..self.pos])
            .expect("source is valid UTF-8")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        match u64::from_str_radix(&text, radix) {
            Ok(n) => Ok(TokenKind::Int(n)),
            Err(_) => Err(Diagnostic::error(
                format!("invalid integer literal `{}`", &self.text_from(start)),
                self.span_from(start),
            )),
        }
    }

    /// Lex an identifier, keyword, or dotted path (`Array.get`, `Event.delay`,
    /// `Sys.time`). Dotted segments are only consumed when the next segment
    /// starts with an identifier character, so `x.` followed by punctuation
    /// is an error at parse time, not lex time.
    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        // Dotted builtin path: keep consuming `.segment`.
        while self.peek() == b'.' && (self.peek2().is_ascii_alphabetic() || self.peek2() == b'_') {
            self.bump();
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
        }
        let text = self.text_from(start);
        if !text.contains('.') {
            if let Some(kw) = keyword(&text) {
                return kw;
            }
        }
        TokenKind::Ident(text)
    }

    fn text_from(&self, start: usize) -> String {
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("source is valid UTF-8")
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("const int SIZE = 16;"),
            vec![
                KwConst,
                KwInt,
                Ident("SIZE".into()),
                Assign,
                Int(16),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_dotted_builtins() {
        assert_eq!(
            kinds("Array.get(a, 0)"),
            vec![
                Ident("Array.get".into()),
                LParen,
                Ident("a".into()),
                Comma,
                Int(0),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a << 2 >> b <= c >= d == e != f && g || h"),
            vec![
                Ident("a".into()),
                Shl,
                Int(2),
                Shr,
                Ident("b".into()),
                Le,
                Ident("c".into()),
                Ge,
                Ident("d".into()),
                EqEq,
                Ident("e".into()),
                NotEq,
                Ident("f".into()),
                AndAnd,
                Ident("g".into()),
                OrOr,
                Ident("h".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_hex_and_underscores() {
        assert_eq!(kinds("0xFF 1_000"), vec![Int(255), Int(1000), Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // line\n/* block\n comment */ 2"),
            vec![Int(1), Int(2), Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\nb\"c""#), vec![Str("a\nb\"c".into()), Eof]);
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unknown_char_is_error() {
        let err = lex("int @x;").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn keywords_not_matched_inside_dotted_paths() {
        // `if.x` should stay a dotted identifier, not keyword `if`.
        assert_eq!(kinds("ifx"), vec![Ident("ifx".into()), Eof]);
    }
}
