//! # lucid-frontend
//!
//! Front end for the Lucid data-plane programming language — the lexer,
//! parser, AST, and diagnostics infrastructure for this Rust reproduction of
//! *Lucid: A Language for Control in the Data Plane* (SIGCOMM 2021).
//!
//! The surface language covers the constructs the paper uses:
//!
//! * `const` / `const group` declarations,
//! * `global name = new Array<<w>>(n);` persistent arrays,
//! * `event` declarations and `handle`rs,
//! * `fun`ctions and `memop`s,
//! * `generate` / `mgenerate` with the `Event.delay` / `Event.locate`
//!   combinators,
//! * integer types of explicit bit width, `hash<<w>>(..)`, and casts.
//!
//! Parsing stops at the first error and reports it with a source span; the
//! [`diag`] module renders rustc-style excerpts. Semantic analysis (memop
//! validation and the ordered type-and-effect system) lives in the
//! `lucid-check` crate.

#![forbid(unsafe_code)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{
    Block, Builtin, Decl, DeclKind, Expr, ExprKind, Ident, Param, Program, Stmt, StmtKind, Ty,
};
pub use diag::{Diagnostic, Diagnostics, Level};
pub use parser::{parse_expr, parse_program};
pub use span::{LineCol, SourceMap, Span};

/// Convenience: parse `src` named `name`, returning the program together
/// with a [`SourceMap`] for rendering later-phase diagnostics.
pub fn parse_named(name: &str, src: &str) -> Result<(Program, SourceMap), Diagnostic> {
    let program = parser::parse_program(src)?;
    Ok((program, SourceMap::new(name, src)))
}
