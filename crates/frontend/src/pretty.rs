//! Pretty-printer for Lucid ASTs.
//!
//! Produces valid Lucid source text: `parse(pretty(parse(src)))` equals
//! `parse(src)` up to spans. This is exercised by property tests and is also
//! used by the CLI's `fmt`-style dump and by error messages that quote
//! rewritten code.

use crate::ast::*;
use std::fmt::Write;

/// Pretty-print a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        decl(&mut out, d);
        out.push('\n');
    }
    out
}

/// Pretty-print one declaration.
pub fn decl(out: &mut String, d: &Decl) {
    match &d.kind {
        DeclKind::Const { ty, name, value } => {
            let _ = writeln!(out, "const {ty} {name} = {};", expr_str(value));
        }
        DeclKind::Group { name, members } => {
            let ms: Vec<_> = members.iter().map(expr_str).collect();
            let _ = writeln!(out, "const group {name} = {{{}}};", ms.join(", "));
        }
        DeclKind::GlobalArray {
            name,
            cell_width,
            size,
        } => {
            let _ = writeln!(
                out,
                "global {name} = new Array<<{cell_width}>>({});",
                expr_str(size)
            );
        }
        DeclKind::Event { name, params } => {
            let _ = writeln!(out, "event {name}({});", params_str(params));
        }
        DeclKind::Handler { name, params, body } => {
            let _ = write!(out, "handle {name}({}) ", params_str(params));
            block(out, body, 0);
            out.push('\n');
        }
        DeclKind::Fun {
            ret_ty,
            name,
            params,
            body,
        } => {
            let _ = write!(out, "fun {ret_ty} {name}({}) ", params_str(params));
            block(out, body, 0);
            out.push('\n');
        }
        DeclKind::Memop { name, params, body } => {
            let _ = write!(out, "memop {name}({}) ", params_str(params));
            block(out, body, 0);
            out.push('\n');
        }
    }
}

fn params_str(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

/// Pretty-print a block at the given indentation depth.
pub fn block(out: &mut String, b: &Block, depth: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

/// Pretty-print one statement.
pub fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match &s.kind {
        StmtKind::Local { ty, name, init } => {
            match ty {
                Some(t) => {
                    let _ = writeln!(out, "{t} {name} = {};", expr_str(init));
                }
                None => {
                    let _ = writeln!(out, "auto {name} = {};", expr_str(init));
                }
            };
        }
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", expr_str(value));
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = write!(out, "if ({}) ", expr_str(cond));
            block(out, then_blk, depth);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                block(out, e, depth);
            }
            out.push('\n');
        }
        StmtKind::Generate(e) => {
            let _ = writeln!(out, "generate {};", expr_str(e));
        }
        StmtKind::MGenerate(e) => {
            let _ = writeln!(out, "mgenerate {};", expr_str(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_str(e));
        }
        StmtKind::Printf { fmt, args } => {
            let escaped = fmt
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            if args.is_empty() {
                let _ = writeln!(out, "printf(\"{escaped}\");");
            } else {
                let a: Vec<_> = args.iter().map(expr_str).collect();
                let _ = writeln!(out, "printf(\"{escaped}\", {});", a.join(", "));
            }
        }
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr_str(e));
        }
    }
}

/// Render an expression, parenthesizing conservatively: any nested binary or
/// unary expression is wrapped, which keeps the printer simple and always
/// correct with respect to precedence.
pub fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int { value, width: None } => format!("{value}"),
        ExprKind::Int {
            value,
            width: Some(w),
        } => format!("(int<<{w}>>) {value}"),
        ExprKind::Bool(b) => format!("{b}"),
        ExprKind::Var(id) => id.name.clone(),
        ExprKind::Unary { op, arg } => format!("{}{}", op.symbol(), atom(arg)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("{} {} {}", atom(lhs), op.symbol(), atom(rhs))
        }
        ExprKind::Call { callee, args } => {
            let a: Vec<_> = args.iter().map(expr_str).collect();
            format!("{}({})", callee.name, a.join(", "))
        }
        ExprKind::BuiltinCall { builtin, args, .. } => {
            let a: Vec<_> = args.iter().map(expr_str).collect();
            format!("{}({})", builtin.path(), a.join(", "))
        }
        ExprKind::Hash { width, args } => {
            let a: Vec<_> = args.iter().map(expr_str).collect();
            format!("hash<<{width}>>({})", a.join(", "))
        }
        ExprKind::Cast { width, arg } => format!("(int<<{width}>>) {}", atom(arg)),
    }
}

/// Like [`expr_str`] but parenthesizes compound expressions.
fn atom(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Binary { .. } | ExprKind::Unary { .. } | ExprKind::Cast { .. } => {
            format!("({})", expr_str(e))
        }
        _ => expr_str(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Strip spans by re-parsing: two programs are structurally equal if
    /// their pretty forms match.
    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(program(&p2), printed, "pretty printing is not a fixpoint");
    }

    #[test]
    fn roundtrip_paper_example() {
        roundtrip(
            r#"
            const int SIZE = 16;
            global arr1 = new Array<<32>>(SIZE);
            global arr2 = new Array<<32>>(SIZE);
            handle setArr1(int idx, int data) {
                int x = Array.get(arr2, idx);
                Array.set(arr1, idx, x);
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_operators_and_casts() {
        roundtrip(
            r#"
            handle h(int a, int b) {
                int c = ((a + b) * 2) >> 1;
                int d = (int<<16>>) c;
                bool e = (a == b) || (!(a < b) && (b != 0));
                if (e) { generate h(c, d); }
            }
            event hh(int a, int b);
            "#,
        );
    }

    #[test]
    fn expr_parenthesization_preserves_structure() {
        let e1 = parse_expr("1 + 2 * 3").unwrap();
        let printed = expr_str(&e1);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(expr_str(&e2), printed);
        assert_eq!(printed, "1 + (2 * 3)");
    }

    #[test]
    fn printf_escaping() {
        roundtrip(r#"handle h(int x) { printf("a\"b\nc %d", x); }"#);
    }
}
