//! Recursive-descent parser for Lucid.
//!
//! The grammar follows the paper's surface syntax (§3–§5):
//!
//! ```text
//! program  := decl*
//! decl     := 'const' 'group' ID '=' '{' expr,* '}' ';'
//!           | 'const' ty ID '=' expr ';'
//!           | 'global' ID '=' 'new' 'Array' '<<' INT '>>' '(' expr ')' ';'
//!           | 'event' ID '(' params ')' ';'
//!           | 'handle' ID '(' params ')' block
//!           | 'fun' ty ID '(' params ')' block
//!           | 'memop' ID '(' params ')' block
//! stmt     := ty ID '=' expr ';'            (local)
//!           | ID '=' expr ';'               (assignment)
//!           | 'if' '(' expr ')' block ('else' (block | if))?
//!           | 'generate' expr ';' | 'mgenerate' expr ';'
//!           | 'return' expr? ';'
//!           | 'printf' '(' STR (',' expr)* ')' ';'
//!           | expr ';'
//! ```
//!
//! Expressions use standard C precedence. Three constructs reuse the `<<`
//! token in type position: `int<<w>>`, `Array<<w>>`, and `hash<<w>>(..)`;
//! the parser disambiguates with one token of lookahead.

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a complete program. On failure, returns the first diagnostic
/// (code `E0100`: parsing stops at the first syntax error by design).
pub fn parse_program(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src).map_err(|d| d.or_code("E0100"))?;
    Parser { tokens, pos: 0 }
        .program()
        .map_err(|d| d.or_code("E0100"))
}

/// Parse a single expression (used by tests and the REPL-style tools).
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, context: &str) -> Diagnostic {
        Diagnostic::error(
            format!("{context}, found {}", self.peek_kind().describe()),
            self.peek().span,
        )
    }

    fn ident(&mut self) -> Result<Ident, Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                if name.contains('.') {
                    return Err(Diagnostic::error(
                        format!("expected a plain identifier, found dotted path `{name}`"),
                        t.span,
                    ));
                }
                Ok(Ident::new(name, t.span))
            }
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    // ---------------------------------------------------------------- decls

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut decls = Vec::new();
        while !self.at(&TokenKind::Eof) {
            decls.push(self.decl()?);
        }
        Ok(Program { decls })
    }

    fn decl(&mut self) -> Result<Decl, Diagnostic> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::KwConst => {
                self.bump();
                if self.at(&TokenKind::KwGroup) {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(TokenKind::Assign)?;
                    self.expect(TokenKind::LBrace)?;
                    let mut members = Vec::new();
                    if !self.at(&TokenKind::RBrace) {
                        loop {
                            members.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                    let end = self.expect(TokenKind::Semi)?.span;
                    Ok(Decl {
                        kind: DeclKind::Group { name, members },
                        span: start.merge(end),
                    })
                } else {
                    let ty = self.ty()?;
                    let name = self.ident()?;
                    self.expect(TokenKind::Assign)?;
                    let value = self.expr()?;
                    let end = self.expect(TokenKind::Semi)?.span;
                    Ok(Decl {
                        kind: DeclKind::Const { ty, name, value },
                        span: start.merge(end),
                    })
                }
            }
            TokenKind::KwGlobal => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                self.expect(TokenKind::KwNew)?;
                match self.peek_kind().clone() {
                    TokenKind::Ident(s) if s == "Array" => {
                        self.bump();
                    }
                    _ => return Err(self.unexpected("expected `Array` after `new`")),
                }
                self.expect(TokenKind::Shl)?;
                let cell_width = self.int_width()?;
                self.expect(TokenKind::Shr)?;
                self.expect(TokenKind::LParen)?;
                let size = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Decl {
                    kind: DeclKind::GlobalArray {
                        name,
                        cell_width,
                        size,
                    },
                    span: start.merge(end),
                })
            }
            TokenKind::KwEvent => {
                self.bump();
                let name = self.ident()?;
                let params = self.params()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Decl {
                    kind: DeclKind::Event { name, params },
                    span: start.merge(end),
                })
            }
            TokenKind::KwHandle => {
                self.bump();
                let name = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Ok(Decl {
                    kind: DeclKind::Handler { name, params, body },
                    span,
                })
            }
            TokenKind::KwFun => {
                self.bump();
                let ret_ty = self.ty()?;
                let name = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Ok(Decl {
                    kind: DeclKind::Fun {
                        ret_ty,
                        name,
                        params,
                        body,
                    },
                    span,
                })
            }
            TokenKind::KwMemop => {
                self.bump();
                let name = self.ident()?;
                let params = self.params()?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Ok(Decl {
                    kind: DeclKind::Memop { name, params, body },
                    span,
                })
            }
            _ => Err(self.unexpected(
                "expected a declaration (`const`, `global`, `event`, `handle`, `fun`, or `memop`)",
            )),
        }
    }

    fn params(&mut self) -> Result<Vec<Param>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let start = self.peek().span;
                let ty = self.ty()?;
                let name = self.ident()?;
                let span = start.merge(name.span);
                params.push(Param { ty, name, span });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(params)
    }

    // ---------------------------------------------------------------- types

    /// Parse a type. `Array` is recognized as an identifier-shaped keyword.
    fn ty(&mut self) -> Result<Ty, Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::KwInt => {
                self.bump();
                if self.eat(&TokenKind::Shl) {
                    let w = self.int_width()?;
                    self.expect(TokenKind::Shr)?;
                    Ok(Ty::Int(w))
                } else {
                    Ok(Ty::Int(32))
                }
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(Ty::Bool)
            }
            TokenKind::KwVoid => {
                self.bump();
                Ok(Ty::Void)
            }
            TokenKind::KwEvent => {
                self.bump();
                Ok(Ty::Event)
            }
            TokenKind::KwGroup => {
                self.bump();
                Ok(Ty::Group)
            }
            TokenKind::Ident(s) if s == "Array" => {
                self.bump();
                self.expect(TokenKind::Shl)?;
                let w = self.int_width()?;
                self.expect(TokenKind::Shr)?;
                Ok(Ty::Array(w))
            }
            _ => Err(self.unexpected("expected a type")),
        }
    }

    /// True if the current token starts a type (used to distinguish local
    /// declarations from assignments/expression statements).
    fn at_type(&self) -> bool {
        match self.peek_kind() {
            TokenKind::KwInt | TokenKind::KwBool | TokenKind::KwAuto => true,
            // `event e = ..;` local binding of an event value.
            TokenKind::KwEvent => matches!(self.peek2_kind(), TokenKind::Ident(_)),
            TokenKind::Ident(s) if s == "Array" => matches!(self.peek2_kind(), TokenKind::Shl),
            _ => false,
        }
    }

    fn int_width(&mut self) -> Result<u32, Diagnostic> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(n) if (1..=64).contains(&n) => Ok(n as u32),
            TokenKind::Int(n) => Err(Diagnostic::error(
                format!("bit width must be between 1 and 64, got {n}"),
                t.span,
            )),
            other => Err(Diagnostic::error(
                format!("expected a bit width, found {}", other.describe()),
                t.span,
            )),
        }
    }

    // ----------------------------------------------------------- statements

    fn block(&mut self) -> Result<Block, Diagnostic> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block::new(stmts, start.merge(end)))
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_blk = self.block()?;
                let mut span = start.merge(then_blk.span);
                let else_blk = if self.eat(&TokenKind::KwElse) {
                    let blk = if self.at(&TokenKind::KwIf) {
                        // `else if` sugar: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        let nspan = nested.span;
                        Block::new(vec![nested], nspan)
                    } else {
                        self.block()?
                    };
                    span = span.merge(blk.span);
                    Some(blk)
                } else {
                    None
                };
                Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span,
                })
            }
            TokenKind::KwGenerate => {
                self.bump();
                let e = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Generate(e),
                    span: start.merge(end),
                })
            }
            TokenKind::KwMGenerate => {
                self.bump();
                let e = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::MGenerate(e),
                    span: start.merge(end),
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Return(e),
                    span: start.merge(end),
                })
            }
            TokenKind::KwPrintf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let fmt = match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    _ => return Err(self.unexpected("expected a format string")),
                };
                let mut args = Vec::new();
                while self.eat(&TokenKind::Comma) {
                    args.push(self.expr()?);
                }
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Printf { fmt, args },
                    span: start.merge(end),
                })
            }
            TokenKind::KwAuto => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Local {
                        ty: None,
                        name,
                        init,
                    },
                    span: start.merge(end),
                })
            }
            _ if self.at_type() => {
                let ty = self.ty()?;
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Local {
                        ty: Some(ty),
                        name,
                        init,
                    },
                    span: start.merge(end),
                })
            }
            TokenKind::Ident(name)
                if !name.contains('.') && matches!(self.peek2_kind(), TokenKind::Assign) =>
            {
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Assign { name, value },
                    span: start.merge(end),
                })
            }
            _ => {
                let e = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Expr(e),
                    span: start.merge(end),
                })
            }
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary(0)
    }

    /// Precedence-climbing binary expression parser. `min_prec` is the
    /// lowest binding power this call may consume.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek_kind() {
                TokenKind::OrOr => (BinOp::Or, 1),
                TokenKind::AndAnd => (BinOp::And, 2),
                TokenKind::EqEq => (BinOp::Eq, 3),
                TokenKind::NotEq => (BinOp::Neq, 3),
                TokenKind::Lt => (BinOp::Lt, 4),
                TokenKind::Gt => (BinOp::Gt, 4),
                TokenKind::Le => (BinOp::Le, 4),
                TokenKind::Ge => (BinOp::Ge, 4),
                TokenKind::Pipe => (BinOp::BitOr, 5),
                TokenKind::Caret => (BinOp::BitXor, 6),
                TokenKind::Amp => (BinOp::BitAnd, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            let span = start.merge(arg.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    arg: Box::new(arg),
                },
                span,
            ));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int { value, width: None }, start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), start))
            }
            TokenKind::LParen => {
                self.bump();
                // Cast: `(int<<w>>) e` / `(int) e`.
                if self.at(&TokenKind::KwInt) {
                    self.bump();
                    let width = if self.eat(&TokenKind::Shl) {
                        let w = self.int_width()?;
                        self.expect(TokenKind::Shr)?;
                        w
                    } else {
                        32
                    };
                    self.expect(TokenKind::RParen)?;
                    let arg = self.unary()?;
                    let span = start.merge(arg.span);
                    return Ok(Expr::new(
                        ExprKind::Cast {
                            width,
                            arg: Box::new(arg),
                        },
                        span,
                    ));
                }
                let e = self.expr()?;
                let end = self.expect(TokenKind::RParen)?.span;
                Ok(Expr::new(e.kind, start.merge(end)))
            }
            TokenKind::Ident(name) if name == "hash" => {
                self.bump();
                self.expect(TokenKind::Shl)?;
                let width = self.int_width()?;
                self.expect(TokenKind::Shr)?;
                let (args, end) = self.call_args()?;
                if args.is_empty() {
                    return Err(Diagnostic::error(
                        "hash requires at least a seed argument",
                        start.merge(end),
                    ));
                }
                Ok(Expr::new(ExprKind::Hash { width, args }, start.merge(end)))
            }
            TokenKind::Ident(name) if name.contains('.') => {
                let t = self.bump();
                let builtin = Builtin::from_path(&name).ok_or_else(|| {
                    Diagnostic::error(format!("unknown builtin `{name}`"), t.span).with_help(
                        "available modules: Array.{get,getm,set,setm,update}, \
                         Event.{delay,locate,mlocate}, Sys.{time,self,port}",
                    )
                })?;
                let (args, end) = self.call_args()?;
                let span = start.merge(end);
                // The paper overloads Array.get/set with memop arguments;
                // normalize the long forms onto getm/setm.
                let builtin = match (builtin, args.len()) {
                    (Builtin::ArrayGet, 4) => Builtin::ArrayGetm,
                    (Builtin::ArraySet, 4) => Builtin::ArraySetm,
                    (b, _) => b,
                };
                Ok(Expr::new(
                    ExprKind::BuiltinCall {
                        builtin,
                        args,
                        span_path: t.span,
                    },
                    span,
                ))
            }
            TokenKind::Ident(name) => {
                let id = self.ident()?;
                if self.at(&TokenKind::LParen) {
                    let (args, end) = self.call_args()?;
                    let span = start.merge(end);
                    Ok(Expr::new(ExprKind::Call { callee: id, args }, span))
                } else {
                    let _ = name;
                    Ok(Expr::new(ExprKind::Var(id), start))
                }
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }

    fn call_args(&mut self) -> Result<(Vec<Expr>, Span), Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Ok((args, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse_program(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}\nsource: {src}"),
        }
    }

    #[test]
    fn parses_paper_route_query_handler() {
        let src = r#"
            const int SELF_ID = 1;
            global pathlens = new Array<<32>>(1024);
            memop incr(int stored, int added) { return stored + added; }
            fun int get_pathlen(int dst) {
                return Array.get(pathlens, dst, incr, 0);
            }
            event route_reply(int sender_id, int dst, int pathlen);
            event route_query(int sender_id, int dst);
            handle route_query(int sender_id, int dst) {
                int pathlen = get_pathlen(dst);
                event reply = route_reply(SELF_ID, dst, pathlen);
                generate Event.locate(reply, sender_id);
            }
        "#;
        let p = parse_ok(src);
        assert_eq!(p.decls.len(), 7);
        assert!(p.find("route_query").is_some());
    }

    #[test]
    fn four_arg_array_get_normalizes_to_getm() {
        let e = parse_expr("Array.get(a, i, m, 1)").unwrap();
        match e.kind {
            ExprKind::BuiltinCall { builtin, args, .. } => {
                assert_eq!(builtin, Builtin::ArrayGetm);
                assert_eq!(args.len(), 4);
            }
            other => panic!("expected builtin call, got {other:?}"),
        }
    }

    #[test]
    fn two_arg_array_get_stays_get() {
        let e = parse_expr("Array.get(a, i)").unwrap();
        match e.kind {
            ExprKind::BuiltinCall { builtin, .. } => assert_eq!(builtin, Builtin::ArrayGet),
            other => panic!("expected builtin call, got {other:?}"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        // ((1 + (2*3)) == 7) && true
        match e.kind {
            ExprKind::Binary {
                op: BinOp::And,
                lhs,
                ..
            } => match lhs.kind {
                ExprKind::Binary { op: BinOp::Eq, .. } => {}
                other => panic!("expected ==, got {other:?}"),
            },
            other => panic!("expected &&, got {other:?}"),
        }
    }

    #[test]
    fn hash_expression() {
        let e = parse_expr("hash<<16>>(7, src, dst)").unwrap();
        match e.kind {
            ExprKind::Hash { width, args } => {
                assert_eq!(width, 16);
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected hash, got {other:?}"),
        }
    }

    #[test]
    fn cast_expression() {
        let e = parse_expr("(int<<16>>) x + 1").unwrap();
        // Cast binds tighter than +.
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                lhs,
                ..
            } => match lhs.kind {
                ExprKind::Cast { width: 16, .. } => {}
                other => panic!("expected cast, got {other:?}"),
            },
            other => panic!("expected +, got {other:?}"),
        }
    }

    #[test]
    fn shift_still_parses_in_expressions() {
        let e = parse_expr("x << 2").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Shl, .. }));
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            handle h(int x) {
                if (x == 0) { generate foo(); }
                else if (x == 1) { generate bar(); }
                else { generate baz(); }
            }
        "#;
        let p = parse_ok(src);
        let (_, _, body) = p.handlers().next().unwrap();
        match &body.stmts[0].kind {
            StmtKind::If {
                else_blk: Some(e), ..
            } => {
                assert!(matches!(e.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn group_declaration() {
        let p = parse_ok("const group NEIGHBORS = {2, 3, 4};");
        match &p.decls[0].kind {
            DeclKind::Group { members, .. } => assert_eq!(members.len(), 3),
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn printf_statement() {
        let p = parse_ok(r#"handle h(int x) { printf("x=%d", x); }"#);
        let (_, _, body) = p.handlers().next().unwrap();
        assert!(matches!(body.stmts[0].kind, StmtKind::Printf { .. }));
    }

    #[test]
    fn unknown_builtin_is_friendly_error() {
        let err = parse_program("handle h(int x) { Array.pop(a); }").unwrap_err();
        assert!(err.message.contains("Array.pop"), "{err}");
    }

    #[test]
    fn event_local_binding() {
        let p = parse_ok("event e(int a); handle h(int x) { event ev = e(x); generate ev; }");
        let (_, _, body) = p.handlers().next().unwrap();
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Local {
                ty: Some(Ty::Event),
                ..
            }
        ));
    }

    #[test]
    fn auto_local_binding() {
        let p = parse_ok("handle h(int x) { auto y = x + 1; }");
        let (_, _, body) = p.handlers().next().unwrap();
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Local { ty: None, .. }
        ));
    }

    #[test]
    fn width_out_of_range_rejected() {
        assert!(parse_program("global a = new Array<<65>>(8);").is_err());
        assert!(parse_program("global a = new Array<<0>>(8);").is_err());
    }

    #[test]
    fn mgenerate_statement() {
        let src =
            "const group G = {2,3}; event c(); handle h() { mgenerate Event.mlocate(c(), G); }";
        let p = parse_ok(src);
        let (_, _, body) = p.handlers().next().unwrap();
        assert!(matches!(body.stmts[0].kind, StmtKind::MGenerate(_)));
    }

    #[test]
    fn missing_semi_points_at_next_token() {
        let err = parse_program("const int A = 3").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }
}
